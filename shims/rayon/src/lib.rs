//! Sequential, dependency-free stand-in for the subset of the [rayon]
//! API the blazr workspace uses.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the same *names and signatures* the real crate would, backed
//! by plain sequential `std` iterators. Swapping in the real rayon is a
//! one-line change in the workspace manifest (point the `rayon` workspace
//! dependency at the registry instead of `shims/rayon`); no source file
//! needs to change because every call site compiles against this exact
//! surface:
//!
//! * `par_iter` / `par_iter_mut` / `par_chunks` / `par_chunks_mut` on
//!   slices (returning the corresponding `std::slice` iterators),
//! * `into_par_iter` on ranges and vectors,
//! * the `for_each_init` consumer from rayon's `ParallelIterator`,
//! * `ThreadPoolBuilder` / `ThreadPool::install`.
//!
//! [rayon]: https://docs.rs/rayon
#![forbid(unsafe_code)]

/// Iterator adaptors and the `for_each_init` consumer.
pub mod iter {
    /// Sequential stand-in for rayon's `ParallelIterator` extension
    /// methods that have no `std::iter::Iterator` equivalent.
    ///
    /// Blanket-implemented for every iterator, so chains like
    /// `slice.par_iter_mut().zip(..).enumerate().for_each_init(..)`
    /// resolve exactly as they would with the real crate.
    pub trait ParallelIterator: Iterator + Sized {
        /// Runs `op` on every item with a per-"thread" scratch value
        /// created by `init` (one scratch total in this sequential shim).
        fn for_each_init<T, INIT, OP>(self, init: INIT, mut op: OP)
        where
            INIT: FnMut() -> T,
            OP: FnMut(&mut T, Self::Item),
        {
            let mut init = init;
            let mut scratch = init();
            for item in self {
                op(&mut scratch, item);
            }
        }

        /// Length hint; a no-op sequentially.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Length hint; a no-op sequentially.
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    /// `into_par_iter` for owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Converts `self` into a (sequential) "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Iter = std::ops::Range<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Slice-level parallel views (sequential here).
pub mod slice {
    /// Matches `rayon::slice::Chunks`; sequentially it *is* the std type.
    pub type Chunks<'a, T> = std::slice::Chunks<'a, T>;
    /// Matches `rayon::slice::ChunksMut`.
    pub type ChunksMut<'a, T> = std::slice::ChunksMut<'a, T>;
    /// Matches `rayon::slice::Iter`.
    pub type Iter<'a, T> = std::slice::Iter<'a, T>;
    /// Matches `rayon::slice::IterMut`.
    pub type IterMut<'a, T> = std::slice::IterMut<'a, T>;

    /// `par_iter`/`par_chunks` on shared slices.
    pub trait ParallelSlice<T> {
        /// Per-element iterator.
        fn par_iter(&self) -> Iter<'_, T>;
        /// Fixed-size chunk iterator.
        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Per-element mutable iterator.
        fn par_iter_mut(&mut self) -> IterMut<'_, T>;
        /// Fixed-size mutable chunk iterator.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Everything call sites import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in sequential shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder matching `rayon::ThreadPoolBuilder`; all settings are recorded
/// but ignored, since work runs on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (ignored) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a thread count; `0` means "all cores" in real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (degenerate, current-thread) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _num_threads: self.num_threads,
        })
    }
}

/// A "pool" that executes closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` inside the pool — sequentially, right here.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn for_each_init_threads_scratch() {
        let mut out = vec![0usize; 6];
        out.par_chunks_mut(2).enumerate().for_each_init(
            || 10usize,
            |scratch, (i, chunk)| {
                *scratch += 1;
                for c in chunk {
                    *c = *scratch * 100 + i;
                }
            },
        );
        assert_eq!(out, vec![1100, 1100, 1201, 1201, 1302, 1302]);
    }

    #[test]
    fn pool_installs_on_calling_thread() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 21 * 2), 42);
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let a: Vec<usize> = (0..5usize).into_par_iter().collect();
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        let b: usize = vec![1usize, 2, 3].into_par_iter().sum();
        assert_eq!(b, 6);
    }
}
