//! Dependency-free, genuinely parallel stand-in for the subset of the
//! [rayon] API the blazr workspace uses.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the same *names and signatures* the real crate would — but
//! unlike the original sequential stand-in, work is now actually
//! distributed across OS threads (`std::thread::scope`) with chunked work
//! splitting. Swapping in the real rayon remains a one-line change in the
//! workspace manifest; every call site compiles against this exact
//! surface:
//!
//! * `par_iter` / `par_iter_mut` / `par_chunks` / `par_chunks_mut` on
//!   slices,
//! * `into_par_iter` on ranges and vectors,
//! * the `map` / `zip` / `enumerate` / `with_min_len` adaptors and the
//!   `for_each` / `for_each_init` / `sum` / `reduce` / `collect`
//!   consumers from rayon's `ParallelIterator`,
//! * `ThreadPoolBuilder` / `ThreadPool::install` /
//!   [`current_num_threads`].
//!
//! # Threading model
//!
//! Every consumer splits its input into **pieces** and executes them on a
//! scoped thread team: the calling thread plus up to
//! `current_num_threads() − 1` workers pulling piece indices from a shared
//! queue. The team size comes from, in decreasing precedence:
//!
//! 1. an enclosing [`ThreadPool::install`] scope (thread-local),
//! 2. the `BLAZR_NUM_THREADS` environment variable (read once),
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallel calls inside a worker run inline on that worker — the
//! team never recursively multiplies.
//!
//! # Determinism contract
//!
//! Piece boundaries are a pure function of the iterator **length** (and
//! any `with_min_len` hint) — never of the thread count or scheduling.
//! Order-sensitive consumers (`sum`, `reduce`, `collect`) combine their
//! per-piece partial results *in piece order* on the calling thread, so
//! every consumer returns **bit-identical results at any thread count**,
//! including floating-point reductions. This is the fixed-shape
//! tree-combining contract `tests/parallel_determinism.rs` locks in; keep
//! it when extending the shim.
//!
//! # Telemetry
//!
//! The engine reports `rayon.parallel_calls`, `rayon.tasks` (pieces),
//! and `rayon.steals` (pieces claimed by spawned workers) through
//! [`blazr_telemetry`], plus a `rayon.piece_ns` histogram when spans are
//! enabled. Observation only: piece shape and claim order are never
//! affected, so the determinism contract holds with telemetry on or off.
//!
//! [rayon]: https://docs.rs/rayon
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count resolution and the execution engine.

thread_local! {
    /// Thread count forced by an enclosing `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on team worker threads (and on the calling thread while it
    /// works through pieces): nested parallel calls then run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Default team size: `BLAZR_NUM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. Read once per process.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("BLAZR_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// The thread count parallel consumers will use right now: an enclosing
/// [`ThreadPool::install`] scope's count, else the process default.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

/// Restores a thread-local `Cell` value on drop (panic-safe).
struct CellRestore<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> CellRestore<T> {
    fn set(cell: &'static std::thread::LocalKey<Cell<T>>, value: T) -> Self {
        let prev = cell.with(|c| c.replace(value));
        Self { cell, prev }
    }
}

impl<T: Copy + 'static> Drop for CellRestore<T> {
    fn drop(&mut self) {
        let prev = self.prev;
        self.cell.with(|c| c.set(prev));
    }
}

/// Execution engine shared by all consumers.
mod engine {
    use super::iter::ParallelIterator;
    use super::*;

    /// Upper bound on pieces per consumer call. Piece shape is a function
    /// of length only (never thread count) — see the determinism contract
    /// in the crate docs.
    pub(crate) const MAX_PIECES: usize = 64;

    /// Number of pieces a `len`-item iterator splits into.
    pub(crate) fn piece_count(len: usize, min_piece_len: usize) -> usize {
        if len == 0 {
            return 1;
        }
        len.min(MAX_PIECES).min((len / min_piece_len.max(1)).max(1))
    }

    /// True when a consumer would execute on the calling thread anyway
    /// (team of one, or already inside a worker). *Order-insensitive*
    /// consumers (`for_each`, `for_each_init`, `collect`) use this to
    /// skip piece splitting entirely — their output is independent of
    /// piece shape, so the fast path is bit-identical by construction.
    /// Order-sensitive consumers (`sum`, `reduce`) must NOT: their piece
    /// shape fixes the floating-point combining tree, which has to match
    /// between sequential and parallel runs.
    pub(crate) fn sequential() -> bool {
        current_num_threads() <= 1 || IN_WORKER.with(Cell::get)
    }

    /// Splits `producer` into deterministic pieces, runs `f` on every
    /// piece (in parallel when the current team has more than one thread),
    /// and returns the per-piece results **in piece order**.
    pub(crate) fn run<P, R, F>(producer: P, f: &F) -> Vec<R>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P) -> R + Sync,
    {
        let len = producer.len();
        let n_pieces = piece_count(len, producer.min_piece_len());
        blazr_telemetry::count!("rayon.parallel_calls", 1);
        blazr_telemetry::count!("rayon.tasks", n_pieces as u64);
        if n_pieces <= 1 {
            return vec![f(producer)];
        }

        // Fixed-shape split: piece i covers [i·len/n, (i+1)·len/n).
        let mut pieces = Vec::with_capacity(n_pieces);
        let mut rest = producer;
        let mut start = 0;
        for i in 1..n_pieces {
            let cut = i * len / n_pieces;
            let (head, tail) = rest.split_at(cut - start);
            pieces.push(head);
            rest = tail;
            start = cut;
        }
        pieces.push(rest);

        let threads = current_num_threads().min(n_pieces);
        if threads <= 1 || IN_WORKER.with(Cell::get) {
            return pieces.into_iter().map(f).collect();
        }

        // Work queue: each slot holds one piece; workers claim indices
        // from `next` and store results by index, so scheduling order
        // never affects the combined output.
        let slots: Vec<Mutex<Option<P>>> =
            pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 1..threads {
                // Best-effort: if the OS refuses a thread, the remaining
                // team (at least the calling thread) still drains the
                // queue.
                let _ = std::thread::Builder::new()
                    .name("blazr-rayon-worker".into())
                    .spawn_scoped(scope, || {
                        let _guard = CellRestore::set(&IN_WORKER, true);
                        drain(&slots, &results, &next, f, true);
                    });
            }
            let _guard = CellRestore::set(&IN_WORKER, true);
            drain(&slots, &results, &next, f, false);
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("worker panics propagate before results are read")
                    .expect("every piece is executed exactly once")
            })
            .collect()
    }

    /// Claims and executes pieces until the queue is empty. `stolen`
    /// marks spawned workers: pieces they claim came off the calling
    /// thread's queue, which is what `rayon.steals` counts. Telemetry
    /// never influences which piece a thread claims, only observes it.
    fn drain<P, R, F>(
        slots: &[Mutex<Option<P>>],
        results: &[Mutex<Option<R>>],
        next: &AtomicUsize,
        f: &F,
        stolen: bool,
    ) where
        F: Fn(P) -> R,
    {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= slots.len() {
                return;
            }
            if stolen {
                blazr_telemetry::count!("rayon.steals", 1);
            }
            let piece = slots[i]
                .lock()
                .expect("piece slot lock")
                .take()
                .expect("each piece slot is claimed exactly once");
            let started = blazr_telemetry::spans_enabled().then(std::time::Instant::now);
            let r = f(piece);
            if let Some(t0) = started {
                blazr_telemetry::histogram!("rayon.piece_ns").record_duration(t0.elapsed());
            }
            *results[i].lock().expect("result slot lock") = Some(r);
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait, adaptors, and consumers.

/// Iterator adaptors and consumers.
pub mod iter {
    use super::engine;

    /// A splittable, length-aware parallel iterator.
    ///
    /// Unlike the `std` iterator trait this is a *producer* model: the
    /// engine splits `self` into pieces ([`ParallelIterator::split_at`]),
    /// hands the pieces to a thread team, and each piece drains
    /// sequentially through [`ParallelIterator::into_seq`]. See the crate
    /// docs for the determinism contract.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;
        /// The sequential iterator a piece drains through.
        type SeqIter: Iterator<Item = Self::Item>;

        /// Exact number of remaining items.
        fn len(&self) -> usize;

        /// True if no items remain.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Splits into `[0, index)` and `[index, len)`.
        fn split_at(self, index: usize) -> (Self, Self);

        /// Converts this piece into a sequential iterator.
        fn into_seq(self) -> Self::SeqIter;

        /// Minimum items per piece (set by [`ParallelIterator::with_min_len`]).
        fn min_piece_len(&self) -> usize {
            1
        }

        // ----- adaptors ---------------------------------------------------

        /// Maps every item through `f`.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Clone + Send,
        {
            Map { base: self, f }
        }

        /// Pairs items with another parallel iterator, stopping at the
        /// shorter of the two.
        fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
            Zip { a: self, b: other }
        }

        /// Pairs every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate {
                base: self,
                offset: 0,
            }
        }

        /// Requests at least `min` items per piece. Affects piece shape
        /// (deterministically — length-derived, not thread-derived).
        fn with_min_len(self, min: usize) -> MinLen<Self> {
            MinLen {
                base: self,
                min: min.max(1),
            }
        }

        /// Maximum-length hint; accepted and ignored (piece shape is
        /// already bounded by the engine).
        fn with_max_len(self, _max: usize) -> Self {
            self
        }

        // ----- consumers --------------------------------------------------

        /// Runs `op` on every item, in parallel.
        fn for_each<OP>(self, op: OP)
        where
            OP: Fn(Self::Item) + Sync,
        {
            if engine::sequential() {
                for item in self.into_seq() {
                    op(item);
                }
                return;
            }
            engine::run(self, &|piece: Self| {
                for item in piece.into_seq() {
                    op(item);
                }
            });
        }

        /// Runs `op` on every item with a scratch value created by `init`
        /// once per piece (per-"thread" in rayon's terms). As in real
        /// rayon, `op` must not carry state between items through the
        /// scratch — how often `init` runs is unspecified.
        fn for_each_init<T, INIT, OP>(self, init: INIT, op: OP)
        where
            INIT: Fn() -> T + Sync,
            OP: Fn(&mut T, Self::Item) + Sync,
        {
            if engine::sequential() {
                let mut scratch = init();
                for item in self.into_seq() {
                    op(&mut scratch, item);
                }
                return;
            }
            engine::run(self, &|piece: Self| {
                let mut scratch = init();
                for item in piece.into_seq() {
                    op(&mut scratch, item);
                }
            });
        }

        /// Sums the items. Per-piece partial sums are combined in piece
        /// order, so the result is identical at any thread count.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
        {
            engine::run(self, &|piece: Self| piece.into_seq().sum::<S>())
                .into_iter()
                .sum()
        }

        /// Reduces with `op` starting from `identity`. Piece partials are
        /// folded left-to-right in piece order (fixed-shape combining).
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        {
            engine::run(self, &|piece: Self| piece.into_seq().fold(identity(), &op))
                .into_iter()
                .fold(identity(), &op)
        }

        /// Collects into `C`, preserving item order.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Collection types constructible from a parallel iterator.
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Builds `Self`, preserving the iterator's item order.
        fn from_par_iter<P>(par_iter: P) -> Self
        where
            P: ParallelIterator<Item = T>;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<P>(par_iter: P) -> Self
        where
            P: ParallelIterator<Item = T>,
        {
            // Collect preserves item order whatever the piece shape, so
            // the sequential fast path is bit-identical to the
            // piece-then-concatenate parallel path.
            if engine::sequential() {
                return par_iter.into_seq().collect();
            }
            let parts = engine::run(par_iter, &|piece: P| piece.into_seq().collect::<Vec<T>>());
            let total = parts.iter().map(Vec::len).sum();
            let mut out = Vec::with_capacity(total);
            for part in parts {
                out.extend(part);
            }
            out
        }
    }

    /// `into_par_iter` for owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The parallel iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Item type.
        type Item: Send;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = crate::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            crate::vec::IntoIter { vec: self }
        }
    }

    macro_rules! range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Iter = crate::range::Iter<$t>;
                type Item = $t;
                fn into_par_iter(self) -> Self::Iter {
                    crate::range::Iter { range: self }
                }
            }
        )*};
    }
    range_into_par_iter!(usize, u32, u64, i32, i64);

    // ----- adaptor types --------------------------------------------------

    /// See [`ParallelIterator::map`].
    #[derive(Debug, Clone)]
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Clone + Send,
    {
        type Item = R;
        type SeqIter = std::iter::Map<P::SeqIter, F>;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(index);
            (
                Map {
                    base: l,
                    f: self.f.clone(),
                },
                Map { base: r, f: self.f },
            )
        }

        fn into_seq(self) -> Self::SeqIter {
            self.base.into_seq().map(self.f)
        }

        fn min_piece_len(&self) -> usize {
            self.base.min_piece_len()
        }
    }

    /// See [`ParallelIterator::zip`].
    #[derive(Debug, Clone)]
    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> ParallelIterator for Zip<A, B>
    where
        A: ParallelIterator,
        B: ParallelIterator,
    {
        type Item = (A::Item, B::Item);
        type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

        fn len(&self) -> usize {
            self.a.len().min(self.b.len())
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (al, ar) = self.a.split_at(index);
            let (bl, br) = self.b.split_at(index);
            (Zip { a: al, b: bl }, Zip { a: ar, b: br })
        }

        fn into_seq(self) -> Self::SeqIter {
            self.a.into_seq().zip(self.b.into_seq())
        }

        fn min_piece_len(&self) -> usize {
            self.a.min_piece_len().max(self.b.min_piece_len())
        }
    }

    /// See [`ParallelIterator::enumerate`].
    #[derive(Debug, Clone)]
    pub struct Enumerate<P> {
        base: P,
        offset: usize,
    }

    impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
        type Item = (usize, P::Item);
        type SeqIter = std::iter::Zip<std::ops::Range<usize>, P::SeqIter>;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(index);
            (
                Enumerate {
                    base: l,
                    offset: self.offset,
                },
                Enumerate {
                    base: r,
                    offset: self.offset + index,
                },
            )
        }

        fn into_seq(self) -> Self::SeqIter {
            let end = self.offset + self.base.len();
            (self.offset..end).zip(self.base.into_seq())
        }

        fn min_piece_len(&self) -> usize {
            self.base.min_piece_len()
        }
    }

    /// See [`ParallelIterator::with_min_len`].
    #[derive(Debug, Clone)]
    pub struct MinLen<P> {
        base: P,
        min: usize,
    }

    impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
        type Item = P::Item;
        type SeqIter = P::SeqIter;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(index);
            (
                MinLen {
                    base: l,
                    min: self.min,
                },
                MinLen {
                    base: r,
                    min: self.min,
                },
            )
        }

        fn into_seq(self) -> Self::SeqIter {
            self.base.into_seq()
        }

        fn min_piece_len(&self) -> usize {
            self.base.min_piece_len().max(self.min)
        }
    }
}

/// Parallel iterators over ranges (`(a..b).into_par_iter()`).
pub mod range {
    use super::iter::ParallelIterator;

    /// Parallel iterator over a primitive integer range.
    #[derive(Debug, Clone)]
    pub struct Iter<T> {
        pub(crate) range: std::ops::Range<T>,
    }

    macro_rules! range_par_iter {
        ($($t:ty),*) => {$(
            impl ParallelIterator for Iter<$t> {
                type Item = $t;
                type SeqIter = std::ops::Range<$t>;

                fn len(&self) -> usize {
                    if self.range.end <= self.range.start {
                        0
                    } else {
                        (self.range.end - self.range.start) as usize
                    }
                }

                fn split_at(self, index: usize) -> (Self, Self) {
                    let mid = self.range.start + index as $t;
                    (
                        Iter { range: self.range.start..mid },
                        Iter { range: mid..self.range.end },
                    )
                }

                fn into_seq(self) -> Self::SeqIter {
                    self.range
                }
            }
        )*};
    }
    range_par_iter!(usize, u32, u64, i32, i64);
}

/// Parallel iterators over owned vectors.
pub mod vec {
    use super::iter::ParallelIterator;

    /// Parallel draining iterator over a `Vec`.
    #[derive(Debug, Clone)]
    pub struct IntoIter<T> {
        pub(crate) vec: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoIter<T> {
        type Item = T;
        type SeqIter = std::vec::IntoIter<T>;

        fn len(&self) -> usize {
            self.vec.len()
        }

        fn split_at(mut self, index: usize) -> (Self, Self) {
            let tail = self.vec.split_off(index);
            (self, IntoIter { vec: tail })
        }

        fn into_seq(self) -> Self::SeqIter {
            self.vec.into_iter()
        }
    }
}

/// Slice-level parallel views.
pub mod slice {
    use super::iter::ParallelIterator;

    /// Matches `rayon::slice::Iter`.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
        type Item = &'a T;
        type SeqIter = std::slice::Iter<'a, T>;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (l, r) = self.slice.split_at(index);
            (Iter { slice: l }, Iter { slice: r })
        }

        fn into_seq(self) -> Self::SeqIter {
            self.slice.iter()
        }
    }

    /// Matches `rayon::slice::IterMut`.
    #[derive(Debug)]
    pub struct IterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
        type Item = &'a mut T;
        type SeqIter = std::slice::IterMut<'a, T>;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (l, r) = self.slice.split_at_mut(index);
            (IterMut { slice: l }, IterMut { slice: r })
        }

        fn into_seq(self) -> Self::SeqIter {
            self.slice.iter_mut()
        }
    }

    /// Matches `rayon::slice::Chunks`.
    #[derive(Debug)]
    pub struct Chunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
        type Item = &'a [T];
        type SeqIter = std::slice::Chunks<'a, T>;

        fn len(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let elems = (index * self.chunk_size).min(self.slice.len());
            let (l, r) = self.slice.split_at(elems);
            (
                Chunks {
                    slice: l,
                    chunk_size: self.chunk_size,
                },
                Chunks {
                    slice: r,
                    chunk_size: self.chunk_size,
                },
            )
        }

        fn into_seq(self) -> Self::SeqIter {
            self.slice.chunks(self.chunk_size)
        }
    }

    /// Matches `rayon::slice::ChunksMut`.
    #[derive(Debug)]
    pub struct ChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
        type Item = &'a mut [T];
        type SeqIter = std::slice::ChunksMut<'a, T>;

        fn len(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let elems = (index * self.chunk_size).min(self.slice.len());
            let (l, r) = self.slice.split_at_mut(elems);
            (
                ChunksMut {
                    slice: l,
                    chunk_size: self.chunk_size,
                },
                ChunksMut {
                    slice: r,
                    chunk_size: self.chunk_size,
                },
            )
        }

        fn into_seq(self) -> Self::SeqIter {
            self.slice.chunks_mut(self.chunk_size)
        }
    }

    /// `par_iter`/`par_chunks` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Per-element parallel iterator.
        fn par_iter(&self) -> Iter<'_, T>;
        /// Fixed-size chunk parallel iterator (`chunk_size > 0`).
        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> Iter<'_, T> {
            Iter { slice: self }
        }

        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            Chunks {
                slice: self,
                chunk_size,
            }
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Per-element mutable parallel iterator.
        fn par_iter_mut(&mut self) -> IterMut<'_, T>;
        /// Fixed-size mutable chunk parallel iterator (`chunk_size > 0`).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> IterMut<'_, T> {
            IterMut { slice: self }
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

/// Everything call sites import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// Thread pools.

/// Error from [`ThreadPoolBuilder::build`]; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in this shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a thread count; `0` (the default) means "use the process
    /// default" — `BLAZR_NUM_THREADS` if set, else all cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, resolving the team size now.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped team-size override. Threads are not held persistently: every
/// parallel consumer inside [`ThreadPool::install`] spawns a scoped team
/// of this pool's size.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The team size this pool installs.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// consumer it calls (restored afterwards, panic-safe).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = CellRestore::set(&INSTALLED_THREADS, Some(self.num_threads));
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(op)
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let out: Vec<u64> = with_threads(threads, || v.par_iter().map(|&x| x * 2).collect());
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn work_actually_crosses_threads() {
        // With a multi-thread install, pieces should be executed by more
        // than one OS thread (the pieces outnumber the team, and every
        // worker records its id).
        let ids = Mutex::new(HashSet::new());
        with_threads(4, || {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        let seen = ids.lock().unwrap().len();
        assert!(seen > 1, "expected multiple worker threads, saw {seen}");
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // The determinism contract: piece shape depends on length only,
        // partials combine in piece order.
        let v: Vec<f64> = (0..10_007).map(|i| (i as f64).sin() * 1e-3).collect();
        let reference: f64 = with_threads(1, || v.par_iter().map(|&x| x * x).sum());
        for threads in [2, 3, 4, 8] {
            let s: f64 = with_threads(threads, || v.par_iter().map(|&x| x * x).sum());
            assert_eq!(s.to_bits(), reference.to_bits(), "threads {threads}");
        }
    }

    #[test]
    fn reduce_is_deterministic_and_correct() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let a = with_threads(1, || v.par_iter().map(|&x| x).reduce(|| 0.0, |x, y| x + y));
        let b = with_threads(8, || v.par_iter().map(|&x| x).reduce(|| 0.0, |x, y| x + y));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a, 5050.0);
    }

    #[test]
    fn for_each_init_scratch_is_per_piece() {
        // Scratch values must never be shared across pieces: seed each
        // piece's scratch from its first item and check every item in the
        // piece agrees (pieces are contiguous ranges).
        let mut out = vec![0usize; 200];
        with_threads(4, || {
            out.par_iter_mut().enumerate().for_each_init(
                || usize::MAX,
                |first_idx, (i, slot)| {
                    if *first_idx == usize::MAX {
                        *first_idx = i;
                    }
                    *slot = *first_idx;
                },
            );
        });
        // Every slot records the first index of its piece; pieces are
        // contiguous, so values are nondecreasing and ≤ the index.
        for (i, &v) in out.iter().enumerate() {
            assert!(v <= i);
        }
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a = [10u64, 20, 30, 40, 50];
        let mut b = [0u64; 5];
        with_threads(4, || {
            b.par_iter_mut()
                .zip(a.par_iter())
                .enumerate()
                .for_each(|(i, (dst, &src))| *dst = src + i as u64);
        });
        assert_eq!(b, [10, 21, 32, 43, 54]);
    }

    #[test]
    fn par_chunks_mut_covers_exact_and_ragged_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 65, 1000] {
            let mut data = vec![0u32; len];
            with_threads(3, || {
                data.par_chunks_mut(8)
                    .enumerate()
                    .for_each(|(k, chunk)| chunk.fill(k as u32 + 1));
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, (i / 8) as u32 + 1, "len {len} index {i}");
            }
        }
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        // A parallel call inside a worker must not spawn its own team;
        // it should still produce correct results.
        let out: Vec<u64> = with_threads(4, || {
            (0..8u64)
                .into_par_iter()
                .map(|i| (0..100u64).into_par_iter().map(|j| i * 100 + j).sum())
                .collect()
        });
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..100).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn with_min_len_bounds_piece_shape() {
        assert_eq!(super::engine::piece_count(1000, 1), 64);
        assert_eq!(super::engine::piece_count(1000, 500), 2);
        assert_eq!(super::engine::piece_count(1000, 2000), 1);
        assert_eq!(super::engine::piece_count(10, 1), 10);
        assert_eq!(super::engine::piece_count(0, 1), 1);
        // Piece shape never depends on thread count: same inputs, same
        // answer, whatever pool is installed.
        with_threads(7, || {
            assert_eq!(super::engine::piece_count(1000, 1), 64);
        });
    }

    #[test]
    fn install_restores_previous_count_and_nests() {
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            inner.install(|| assert_eq!(super::current_num_threads(), 5));
            assert_eq!(super::current_num_threads(), 2);
        });
    }

    #[test]
    fn builder_zero_means_process_default() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(0)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), super::default_num_threads());
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let a: Vec<usize> = with_threads(4, || (0..5usize).into_par_iter().collect());
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        let b: usize = with_threads(4, || vec![1usize, 2, 3].into_par_iter().sum());
        assert_eq!(b, 6);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<f64> = Vec::new();
        let s: f64 = empty.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
        let collected: Vec<f64> = Vec::<f64>::new().into_par_iter().collect();
        assert!(collected.is_empty());
    }

    #[test]
    fn panics_in_workers_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..64usize)
                    .into_par_iter()
                    .for_each(|i| assert!(i != 40, "boom"));
            });
        });
        assert!(result.is_err());
    }
}
