//! Offline stand-in for the subset of the [criterion] benchmarking API the
//! blazr workspace uses.
//!
//! The build environment has no crates.io access, so this shim implements a
//! small but honest measurement harness behind criterion's names:
//! per-benchmark warmup, a configurable number of timed samples, and a
//! median-of-samples report printed as
//! `bench: <group>/<id> ... median <t> (<n> samples)`. Swapping in real
//! criterion is a one-line workspace-manifest change; call sites compile
//! against this exact surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`).
//!
//! Supported CLI flags (others are ignored so `cargo bench` passthrough
//! args never break): `--quick` (fewer samples, shorter warmup) and a
//! positional substring filter.
//!
//! [criterion]: https://docs.rs/criterion
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported name matches criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: an optional function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}/{}", self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Decoded bytes per iteration.
    BytesDecimal(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: usize,
    warmup: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median: Duration,
    samples: usize,
}

impl Bencher<'_> {
    /// Times `f`: warm up for the configured duration (at least one call),
    /// then record `samples` timed calls and keep the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        *self.result = Some(Sample {
            median: times[times.len() / 2],
            samples: times.len(),
        });
    }

    /// `iter_with_large_drop` has the same shape sequentially.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

/// Top-level benchmark driver (shim: prints a report per benchmark).
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            quick: false,
            filter: None,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (`--quick`, positional filter); unknown flags
    /// — including the `--bench` cargo passes through — are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => self.quick = true,
                // Value-less flags cargo/criterion pass through.
                "--bench" | "--test" => {}
                // Flags that take a value: consume it so it is not
                // mistaken for a positional benchmark filter.
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let samples = self.default_samples;
        self.run_one(&id.to_string(), samples, None, f);
    }

    fn run_one<F>(&mut self, full_id: &str, sample_size: usize, tp: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.quick {
            sample_size.clamp(1, 3)
        } else {
            sample_size.max(1)
        };
        let warmup = if self.quick {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(300)
        };
        let mut result = None;
        let mut bencher = Bencher {
            samples,
            warmup,
            result: &mut result,
        };
        f(&mut bencher);
        match result {
            Some(s) => {
                let per_iter = s.median.as_secs_f64();
                let rate = match tp {
                    Some(Throughput::Elements(n)) => {
                        format!("  thrpt: {:.3} Melem/s", n as f64 / per_iter / 1e6)
                    }
                    Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                        format!(
                            "  thrpt: {:.3} MiB/s",
                            n as f64 / per_iter / (1024.0 * 1024.0)
                        )
                    }
                    None => String::new(),
                };
                println!(
                    "bench: {full_id:<48} median {}{}  ({} samples)",
                    format_duration(s.median),
                    rate,
                    s.samples
                );
            }
            None => println!("bench: {full_id:<48} (no measurement recorded)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Measurement-time hint; accepted and ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        let tp = self.throughput;
        self.criterion.run_one(&full, samples, tp, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op beyond symmetry with criterion).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_median() {
        let mut c = Criterion {
            quick: true,
            filter: None,
            default_samples: 3,
        };
        c.bench_function("self-test", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            quick: true,
            filter: Some("nomatch".into()),
            default_samples: 3,
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |_b| ran = true);
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
