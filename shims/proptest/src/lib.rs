//! Offline stand-in for the subset of the [proptest] API the blazr
//! workspace uses.
//!
//! The build environment has no crates.io access, so this shim provides a
//! deterministic property-testing harness behind proptest's names: the
//! `proptest!` macro (with `#![proptest_config(..)]`), range/tuple/`Just`
//! strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   name, so failures reproduce exactly across runs and machines.
//!
//! Swapping in the real crate is a one-line workspace-manifest change;
//! every call site compiles against this exact surface.
//!
//! [proptest]: https://docs.rs/proptest
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, RNG, and the rejection error type.

    /// Mirrors `proptest::test_runner::Config` for the fields we use.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`-failed) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a generated case did not complete.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(&'static str),
    }

    /// Deterministic xorshift-family RNG (splitmix64 core) for generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test's name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then one splitmix64 scramble.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = Self { state: h };
            rng.next_u64();
            rng
        }

        /// Next raw 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo is biased by at most 2^-32 for our small test bounds.
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `generate`
    /// produces the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given alternatives; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to erase each arm's concrete type.
    pub fn erase<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Spans here always fit in u64 (test ranges are small).
                    let off = rng.below(span as u64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = rng.below(span as u64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            // `(end - start) * u` can round up to exactly `end - start`
            // even for u < 1; keep the exclusive-bound contract.
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            // 24 random bits so the unit value is exactly representable
            // (casting a 53-bit f64 fraction can round up to 1.0).
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            let v = self.start + (self.end - self.start) * u;
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ranges_stay_in_bounds() {
            let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
            for _ in 0..1000 {
                let v = (-300i32..300).generate(&mut rng);
                assert!((-300..300).contains(&v));
                let f = (0.1f64..100.0).generate(&mut rng);
                assert!((0.1..100.0).contains(&f));
                let u = (2usize..24).generate(&mut rng);
                assert!((2..24).contains(&u));
            }
        }

        #[test]
        fn flat_map_composes() {
            let s = (1usize..4)
                .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
            let mut rng = TestRng::deterministic("flat_map_composes");
            for _ in 0..100 {
                let (n, v) = s.generate(&mut rng);
                assert_eq!(v.len(), n);
            }
        }

        #[test]
        fn union_hits_every_arm() {
            let s = Union::new(vec![erase(Just(1u8)), erase(Just(2u8)), erase(Just(3u8))]);
            let mut rng = TestRng::deterministic("union_hits_every_arm");
            let mut seen = [false; 4];
            for _ in 0..200 {
                seen[s.generate(&mut rng) as usize] = true;
            }
            assert_eq!(&seen[1..], &[true, true, true]);
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag = 10f64.powi((rng.below(61) as i32) - 30);
            (rng.unit_f64() * 2.0 - 1.0) * mag
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f64::arbitrary_value(rng) as f32
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — an arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-lower, exclusive-upper length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size.into()` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything call sites import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "too many prop_assume! rejections ({rejected}) in {}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::erase($strategy)),+])
    };
}

/// Asserts within a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case (retried, not counted) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_respect_strategies(
            x in 1u8..10,
            v in crate::collection::vec(any::<u8>(), 0..16),
            f in -1.0f64..1.0,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 16);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("stable");
        let mut b = TestRng::deterministic("stable");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
