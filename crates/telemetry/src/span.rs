//! Tracing spans: RAII wall-time guards with a thread-local nesting
//! stack, plus the [`Stopwatch`] helper for intra-span stage laps.

use crate::Histogram;
use std::cell::RefCell;
use std::time::Instant;

std::thread_local! {
    /// Names of the spans currently open on this thread, outermost
    /// first. Only maintained while spans are enabled.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span's name on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// How many spans are open on this thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// An RAII span guard produced by [`span!`](crate::span): records the
/// elapsed wall time (nanoseconds) into its histogram when dropped.
/// Spans nest naturally — guards drop in LIFO order, and the
/// thread-local stack ([`current_span`], [`span_depth`]) tracks the
/// nesting while spans are enabled.
#[derive(Debug)]
#[must_use = "a span measures until dropped — bind it with `let _span = span!(..)`"]
pub struct Span {
    /// `None` when spans were disabled at entry: the drop is free and no
    /// clock was read.
    active: Option<(Instant, &'static Histogram)>,
}

impl Span {
    /// An enabled span: pushes onto the thread's span stack and starts
    /// the clock. Called by the [`span!`](crate::span) macro when spans
    /// are enabled.
    #[inline]
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Self {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Self {
            active: Some((Instant::now(), hist)),
        }
    }

    /// A no-op span (spans disabled): dropping it does nothing.
    #[inline]
    pub fn disabled() -> Self {
        Self { active: None }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((start, hist)) = self.active.take() {
            hist.record_duration(start.elapsed());
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// A lap timer for stage breakdowns inside a hot loop: reads the clock
/// only when spans are enabled, and each [`Stopwatch::lap`] records the
/// time since the previous lap (or start) into the given histogram.
///
/// ```
/// # blazr_telemetry::set_mode(blazr_telemetry::Mode::Spans);
/// let mut sw = blazr_telemetry::Stopwatch::start();
/// // ... stage one ...
/// sw.lap(blazr_telemetry::histogram!("doc.stage_one"));
/// // ... stage two ...
/// sw.lap(blazr_telemetry::histogram!("doc.stage_two"));
/// # blazr_telemetry::set_mode(blazr_telemetry::Mode::Off);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Starts the watch; a no-op (no clock read) when spans are off.
    #[inline]
    pub fn start() -> Self {
        Self {
            last: crate::spans_enabled().then(Instant::now),
        }
    }

    /// Records the time since the previous lap into `hist` and restarts
    /// the lap. Free when the watch was started with spans off.
    #[inline]
    pub fn lap(&mut self, hist: &'static Histogram) {
        if let Some(last) = self.last {
            let now = Instant::now();
            hist.record_duration(now - last);
            self.last = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{registry, set_mode, Mode};

    #[test]
    fn span_records_and_nests() {
        // Serialize against other tests that flip the global mode.
        let _guard = crate::export::tests::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Spans);
        let h = registry().histogram("test.span.outer");
        h.reset();
        registry().histogram("test.span.inner").reset();
        {
            let _outer = crate::span!("test.span.outer");
            assert_eq!(crate::current_span(), Some("test.span.outer"));
            assert_eq!(crate::span_depth(), 1);
            {
                let _inner = crate::span!("test.span.inner");
                assert_eq!(crate::current_span(), Some("test.span.inner"));
                assert_eq!(crate::span_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(crate::span_depth(), 1);
        }
        assert_eq!(crate::span_depth(), 0);
        assert_eq!(h.count(), 1);
        let inner = registry().histogram("test.span.inner");
        // The inner span slept ≥ 2 ms; the outer contains it.
        assert!(inner.min().unwrap() >= 1_000_000, "{:?}", inner.min());
        assert!(h.min().unwrap() >= inner.min().unwrap() / 2);
        set_mode(Mode::Off);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _guard = crate::export::tests::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Off);
        let h = registry().histogram("test.span.disabled");
        h.reset();
        {
            let _s = crate::span!("test.span.disabled");
            assert_eq!(crate::span_depth(), 0);
        }
        assert_eq!(h.count(), 0);

        // Counters mode still keeps spans free (no clock).
        set_mode(Mode::Counters);
        {
            let _s = crate::span!("test.span.disabled");
            assert_eq!(crate::span_depth(), 0);
        }
        assert_eq!(h.count(), 0);
        set_mode(Mode::Off);
    }
}
