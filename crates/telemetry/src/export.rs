//! Snapshot export: point-in-time aggregation of the registry, with
//! JSON and Prometheus text serializers (hand-rolled — this crate has no
//! dependencies).

use crate::{Histogram, Registry};

/// Aggregated state of one histogram at snapshot time. Span histograms
/// are in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (dot-separated taxonomy, e.g. `store.query`).
    pub name: String,
    /// Number of observations (exact).
    pub count: u64,
    /// Sum of observations (exact).
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (bucket-midpoint estimate, ≤ ~6% quantization error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    fn of(name: &str, h: &Histogram) -> Option<Self> {
        if h.count() == 0 {
            return None;
        }
        Some(Self {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.quantile(0.5).unwrap_or(0),
            p90: h.quantile(0.9).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
            p999: h.quantile(0.999).unwrap_or(0),
        })
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

/// A point-in-time aggregation of every registered metric, in name
/// order. Zero-valued counters and empty histograms are kept out of the
/// exports' way: counters always export (a zero is informative),
/// histograms export only once they hold at least one observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every registered histogram with ≥ 1 observation.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub(crate) fn collect(reg: &Registry) -> Self {
        let mut snap = Snapshot::default();
        reg.visit_counters(|name, v| snap.counters.push((name.to_string(), v)));
        reg.visit_gauges(|name, v| snap.gauges.push((name.to_string(), v)));
        reg.visit_histograms(|name, h| {
            if let Some(hs) = HistogramSnapshot::of(name, h) {
                snap.histograms.push(hs);
            }
        });
        snap
    }

    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshot of histogram `name`, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}`.
    /// Span histograms are nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                escape_json(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.p999,
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Serializes in the Prometheus text exposition format. Counters
    /// become `blazr_<name>_total`, gauges `blazr_<name>`, histograms
    /// summaries with `quantile` labels (values in nanoseconds for span
    /// histograms); dots in names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!(
                "# TYPE blazr_{n}_total counter\nblazr_{n}_total {v}\n"
            ));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE blazr_{n} gauge\nblazr_{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE blazr_{n} summary\n"));
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                out.push_str(&format!("blazr_{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("blazr_{n}_sum {}\n", h.sum));
            out.push_str(&format!("blazr_{n}_count {}\n", h.count));
        }
        out
    }
}

/// Escapes the two JSON-significant characters metric names could in
/// principle contain (names are `'static` identifiers, so this is
/// defense in depth, not a full escaper).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Maps a dotted metric name onto the Prometheus charset.
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use crate::{registry, set_mode, Mode};
    use std::sync::Mutex;

    /// Serializes tests (across this crate's modules) that mutate the
    /// global mode or registry.
    pub(crate) static TEST_MUTEX: Mutex<()> = Mutex::new(());

    #[test]
    fn snapshot_round_trip_and_formats() {
        let _guard = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Counters);
        registry().reset();
        registry().counter("test.export.requests").add(41);
        registry().counter("test.export.requests").inc();
        registry().gauge("test.export.depth").set(-7);
        let h = registry().histogram("test.export.latency");
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.export.requests"), Some(42));
        let hs = snap.histogram("test.export.latency").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1100);
        assert_eq!(hs.min, 10);
        assert!(hs.p999 >= hs.p50);

        let json = snap.to_json();
        assert!(json.contains("\"test.export.requests\": 42"), "{json}");
        assert!(json.contains("\"test.export.depth\": -7"), "{json}");
        assert!(json.contains("\"test.export.latency\""), "{json}");

        let prom = snap.to_prometheus();
        assert!(
            prom.contains("blazr_test_export_requests_total 42"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE blazr_test_export_depth gauge"),
            "{prom}"
        );
        assert!(
            prom.contains("blazr_test_export_latency{quantile=\"0.5\"}"),
            "{prom}"
        );
        assert!(prom.contains("blazr_test_export_latency_count 5"), "{prom}");

        registry().reset();
        let empty = registry().snapshot();
        // Counters still export at zero; empty histograms drop out.
        assert_eq!(empty.counter("test.export.requests"), Some(0));
        assert!(empty.histogram("test.export.latency").is_none());
        set_mode(Mode::Off);
    }
}
