//! # blazr-telemetry — offline observability shim
//!
//! A dependency-free metrics registry and tracing-span layer for the
//! blazr workspace, in the spirit of `shims/rayon`: no crates.io
//! dependencies, the same shape a production telemetry stack would have,
//! and near-zero cost when disabled.
//!
//! ## The three pieces
//!
//! 1. **Metrics registry** ([`registry`]): monotonic [`Counter`]s and
//!    [`Gauge`]s backed by per-thread atomic shards (no locks on the
//!    update path), and log-linear-bucket [`Histogram`]s (HDR-style,
//!    ≤ 1/16 relative bucket error — good enough for p50/p99/p999).
//!    Shards aggregate only at snapshot time.
//! 2. **Tracing spans** ([`span!`]): RAII guards that record wall time
//!    into a per-span histogram (in nanoseconds) and maintain a
//!    thread-local nesting stack.
//! 3. **Export** ([`Snapshot`]): a point-in-time aggregation of every
//!    registered metric, serializable as JSON ([`Snapshot::to_json`]) or
//!    Prometheus text format ([`Snapshot::to_prometheus`]).
//!
//! ## The mode toggle
//!
//! `BLAZR_TELEMETRY=off|counters|spans` (read once, overridable with
//! [`set_mode`]) gates everything:
//!
//! * `off` (default) — every instrumentation site reduces to **one
//!   relaxed atomic load** and a predictable branch; no clocks are read,
//!   no memory is written.
//! * `counters` — counters, gauges, and non-timer histograms record;
//!   spans stay free (no `Instant::now()`).
//! * `spans` — everything records, including span wall-time histograms.
//!
//! Telemetry never touches data paths: output bytes are bit-identical
//! with telemetry on or off at any thread count (locked in by
//! `tests/telemetry.rs`).
//!
//! ## Usage
//!
//! ```
//! use blazr_telemetry as tel;
//! tel::set_mode(tel::Mode::Spans);
//! {
//!     let _span = tel::span!("example.work");
//!     tel::count!("example.items", 3);
//! }
//! let snap = tel::registry().snapshot();
//! assert_eq!(snap.counter("example.items"), Some(3));
//! assert!(snap.histogram("example.work").is_some());
//! # tel::registry().reset();
//! # tel::set_mode(tel::Mode::Off);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod span;

pub use export::{HistogramSnapshot, Snapshot};
pub use metrics::{Counter, Gauge, Histogram};
pub use span::{current_span, span_depth, Span, Stopwatch};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Mode.

/// What the telemetry layer records. Ordered: each mode is a superset of
/// the one before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Record nothing; instrumentation sites cost one relaxed load.
    Off = 0,
    /// Record counters, gauges, and value histograms — no clocks.
    Counters = 1,
    /// Additionally record span wall-time histograms (reads clocks).
    Spans = 2,
}

impl Mode {
    /// Parses the `BLAZR_TELEMETRY` value; unknown strings mean [`Mode::Off`].
    pub fn parse(s: &str) -> Mode {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" | "on" | "1" => Mode::Counters,
            "spans" | "all" | "2" => Mode::Spans,
            _ => Mode::Off,
        }
    }

    /// The lowercase name (`"off"`, `"counters"`, `"spans"`).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Counters => "counters",
            Mode::Spans => "spans",
        }
    }
}

/// `3` = not yet initialized from the environment.
const MODE_UNINIT: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[cold]
fn init_mode() -> Mode {
    let m = std::env::var("BLAZR_TELEMETRY")
        .map(|v| Mode::parse(&v))
        .unwrap_or(Mode::Off);
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// The current telemetry mode (initialized from `BLAZR_TELEMETRY` on
/// first call; [`Mode::Off`] when unset).
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Counters,
        2 => Mode::Spans,
        _ => init_mode(),
    }
}

/// Overrides the mode for the whole process (tools and tests; takes
/// precedence over `BLAZR_TELEMETRY`).
pub fn set_mode(m: Mode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// True when counters, gauges, and histograms record ([`Mode::Counters`]
/// or [`Mode::Spans`]). One relaxed atomic load.
#[inline]
pub fn counters_enabled() -> bool {
    mode() >= Mode::Counters
}

/// True when span timers record ([`Mode::Spans`]). One relaxed atomic
/// load — the off-mode cost of every `span!` site.
#[inline]
pub fn spans_enabled() -> bool {
    mode() == Mode::Spans
}

// ---------------------------------------------------------------------------
// Registry.

/// The global metric registry: names to leaked, `'static` metric
/// handles. Registration takes a lock (once per call site, cached by the
/// macros); updates through the returned handles are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.counters
            .lock()
            .expect("telemetry registry lock")
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.gauges
            .lock()
            .expect("telemetry registry lock")
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.histograms
            .lock()
            .expect("telemetry registry lock")
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Aggregates every registered metric into a point-in-time
    /// [`Snapshot`] (shards are summed here, not on the update path).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::collect(self)
    }

    /// Zeroes every registered metric (tests and repeated reports). The
    /// handles stay registered, so cached call sites keep working.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("registry lock").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("registry lock").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("registry lock").values() {
            h.reset();
        }
    }

    pub(crate) fn visit_counters(&self, mut f: impl FnMut(&'static str, u64)) {
        for (name, c) in self.counters.lock().expect("registry lock").iter() {
            f(name, c.value());
        }
    }

    pub(crate) fn visit_gauges(&self, mut f: impl FnMut(&'static str, i64)) {
        for (name, g) in self.gauges.lock().expect("registry lock").iter() {
            f(name, g.value());
        }
    }

    pub(crate) fn visit_histograms(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        for (name, h) in self.histograms.lock().expect("registry lock").iter() {
            f(name, h);
        }
    }
}

// ---------------------------------------------------------------------------
// Allocation-audit hook.

static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers a probe returning a monotonically increasing allocation
/// count (typically from a counting `#[global_allocator]`). Hot paths
/// that want an allocation audit (e.g. store queries) read the probe
/// before and after an operation and record the delta as a histogram.
/// First registration wins; later calls are ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// The current allocation count from the registered probe, or `None`
/// when no probe is installed.
#[inline]
pub fn alloc_probe() -> Option<u64> {
    ALLOC_PROBE.get().map(|f| f())
}

// ---------------------------------------------------------------------------
// Macros.

/// The `'static` [`Counter`] named by this call site, registered once
/// and cached in a site-local static.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Adds `$n` to the counter `$name` when telemetry records counters.
/// With telemetry off this is a single relaxed atomic load.
#[macro_export]
macro_rules! count {
    ($name:literal, $n:expr) => {
        if $crate::counters_enabled() {
            $crate::counter!($name).add($n);
        }
    };
}

/// The `'static` [`Gauge`] named by this call site (cached, like
/// [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// The `'static` [`Histogram`] named by this call site (cached, like
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Records `$v` into the histogram `$name` when telemetry records
/// counters. With telemetry off this is a single relaxed atomic load.
#[macro_export]
macro_rules! record {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            $crate::histogram!($name).record($v);
        }
    };
}

/// Opens a tracing span: returns a [`Span`] guard that, when spans are
/// enabled, records its wall time (nanoseconds) into the histogram
/// `$name` on drop and maintains the thread-local nesting stack. Bind it
/// (`let _span = span!("store.query");`) — an unbound guard drops
/// immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        if $crate::spans_enabled() {
            $crate::Span::enter($name, $crate::histogram!($name))
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_orders() {
        assert_eq!(Mode::parse("off"), Mode::Off);
        assert_eq!(Mode::parse("counters"), Mode::Counters);
        assert_eq!(Mode::parse("SPANS"), Mode::Spans);
        assert_eq!(Mode::parse("nonsense"), Mode::Off);
        assert!(Mode::Spans > Mode::Counters && Mode::Counters > Mode::Off);
        assert_eq!(Mode::Spans.name(), "spans");
    }

    #[test]
    fn registry_dedupes_by_name() {
        let a = registry().counter("test.lib.dedupe");
        let b = registry().counter("test.lib.dedupe");
        assert!(std::ptr::eq(a, b));
    }
}
