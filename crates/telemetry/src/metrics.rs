//! Metric primitives: sharded counters, gauges, and log-linear
//! histograms. Updates are lock-free; aggregation happens at snapshot.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of atomic shards per counter. Threads hash onto shards by a
/// process-unique thread index, so concurrent increments from different
/// threads usually land on different cache lines.
const N_SHARDS: usize = 8;

/// One shard, padded to its own cache line so neighboring shards never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

/// This thread's shard index: assigned round-robin on first use, fixed
/// for the thread's lifetime.
#[inline]
fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
            c.set(v);
            v
        }
    })
}

/// A sharded monotonic sum: `add` touches one thread-affine shard,
/// `value` sums all shards. Exact — shard sums commute in `u64`.
#[derive(Debug, Default)]
struct Adder {
    shards: [Shard; N_SHARDS],
}

impl Adder {
    #[inline]
    fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A monotonic counter. Increment-only; exact at any thread count.
#[derive(Debug, Default)]
pub struct Counter {
    total: Adder,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds `n`. Call through the [`count!`](crate::count) macro (which
    /// gates on the mode) or gate manually with
    /// [`counters_enabled`](crate::counters_enabled).
    #[inline]
    pub fn add(&self, n: u64) {
        self.total.add(n);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.total.value()
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.total.reset();
    }
}

/// A point-in-time signed value (`set`/`add`). Last write wins on `set`;
/// a single atomic, not sharded, because gauges are written rarely.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram.

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error of any recorded value by `2^-SUB_BITS` (= 1/16, ~6%).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count covering the whole `u64` range: values below `SUB` map
/// exactly, every octave above contributes `SUB` buckets.
pub(crate) const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// The bucket index of `v` (log-linear, HDR-style).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    ((shift as u64 + 1) * SUB + sub) as usize
}

/// The inclusive lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = i / SUB - 1;
    (SUB + i % SUB) << shift
}

/// A representative value for bucket `i`: the midpoint of its range.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_low(i);
    let hi = if i + 1 < N_BUCKETS {
        bucket_low(i + 1).saturating_sub(1)
    } else {
        u64::MAX
    };
    lo + (hi - lo) / 2
}

/// A log-linear-bucket histogram of `u64` values (span histograms record
/// nanoseconds). `count` and `sum` are exact; quantiles carry the ≤ ~6%
/// bucket quantization error.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: Adder,
    sum: Adder,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: Adder::default(),
            sum: Adder::default(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Bucket updates from different values
    /// naturally spread across the bucket array; `count`/`sum` are
    /// sharded. Gate at the call site (the [`record!`](crate::record)
    /// and [`span!`](crate::span) macros do).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.add(1);
        self.sum.add(v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-time observation in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations (exact).
    pub fn count(&self) -> u64 {
        self.count.value()
    }

    /// Sum of observations (exact).
    pub fn sum(&self) -> u64 {
        self.sum.value()
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket-midpoint estimate,
    /// `None` when empty. `quantile(0.5)` is the median, `quantile(0.99)`
    /// the p99.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(bucket_mid(i));
            }
        }
        // Snapshot race (a record between the count read and the bucket
        // walk): fall back to the largest non-empty bucket.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.reset();
        self.sum.reset();
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_through_low() {
        for v in (0..2000u64).chain([
            4095,
            4096,
            4097,
            1 << 20,
            (1 << 20) + 13,
            u64::MAX / 2,
            u64::MAX,
        ]) {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "v={v} i={i}");
            let lo = bucket_low(i);
            assert!(lo <= v, "v={v} low={lo}");
            if i + 1 < N_BUCKETS {
                assert!(
                    bucket_low(i + 1) > v,
                    "v={v} next_low={}",
                    bucket_low(i + 1)
                );
            }
        }
        // Small values are exact.
        for v in 0..SUB {
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [100u64, 999, 12345, 1_000_000, 123_456_789] {
            let mid = bucket_mid(bucket_index(v)) as f64;
            let rel = (mid - v as f64).abs() / v as f64;
            assert!(rel <= 1.0 / SUB as f64, "v={v} mid={mid} rel={rel}");
        }
    }

    #[test]
    fn histogram_quantiles_and_exact_moments() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.08, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.08, "p99 {p99}");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(5);
        g.add(-8);
        assert_eq!(g.value(), -3);
        g.reset();
        assert_eq!(g.value(), 0);
    }
}
