//! Workload generators for the three applications the paper evaluates
//! (§V), plus the synthetic array of §IV-E.
//!
//! The original datasets are not redistributable (Kaggle LGG MRI, LANL
//! nuclear-DFT densities) or need a Julia runtime (ShallowWaters.jl), so
//! each generator synthesizes data with the *properties the experiments
//! exercise* — see DESIGN.md substitution #3:
//!
//! * [`shallow_water`] — a 2-D shallow-water solver, generic over the
//!   arithmetic precision, for the Fig. 4 FP16-vs-FP32 experiment.
//! * [`fission`] — a plutonium-fission-like 3-D density time series with a
//!   scission event between steps 690 and 692 and misleading noise events,
//!   for the Fig. 6 L2/Wasserstein experiment.
//! * [`mri`] — FLAIR-like 3-D volumes with asymmetric dimension sizes for
//!   the Fig. 5 error-vs-settings sweep.
//! * [`gradient`] — the constant-gradient array of §IV-E used by the
//!   ZFP timing comparison (Fig. 3).
//!
//! Every generator is deterministic given its seed.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fission;
pub mod gradient;
pub mod mri;
pub mod shallow_water;
