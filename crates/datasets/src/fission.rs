//! Synthetic plutonium-fission density time series (paper §V-C).
//!
//! The original data are nuclear-DFT neutron densities on a 40×40×66 grid
//! at 15 time steps, with a known scission (nucleus split) between steps
//! 690 and 692 and noise-like fluctuations elsewhere. This generator
//! reproduces that structure:
//!
//! * a deformed nucleus modeled as two Gaussian fragments joined by a
//!   neck along the long (z) axis;
//! * slow elongation before scission, neck rupture and fragment
//!   separation between steps 690 and 692 (a genuine topology change);
//! * low-magnitude random "physics noise" events at steps 685–686 and
//!   695–699 — diffuse, so they produce misleading L2 peaks (Fig. 6a) but
//!   are suppressed by high-order Wasserstein distances (Fig. 6b);
//! * the negative-log transform the paper applies.

use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

/// The paper's 15 sampled time steps.
pub const TIME_STEPS: [usize; 15] = [
    665, 670, 675, 680, 685, 686, 687, 688, 689, 690, 692, 693, 694, 695, 699,
];

/// Grid shape of each density snapshot.
pub const GRID: [usize; 3] = [40, 40, 66];

/// Time steps carrying a diffuse noise event (the misleading peaks).
pub const NOISE_STEPS: [usize; 6] = [685, 686, 695, 696, 697, 699];

/// Scission happens between these two steps.
pub const SCISSION_BETWEEN: (usize, usize) = (690, 692);

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct FissionConfig {
    /// RNG seed for the noise events.
    pub seed: u64,
    /// Peak nucleon density (arbitrary units).
    pub peak_density: f64,
    /// Amplitude of the diffuse noise events relative to peak.
    pub noise_amplitude: f64,
    /// Constant added before the log transform.
    pub log_offset: f64,
}

impl Default for FissionConfig {
    fn default() -> Self {
        Self {
            seed: 0x0F15_5104,
            peak_density: 0.16,
            noise_amplitude: 0.03,
            log_offset: 1e-6,
        }
    }
}

/// Synthesizes the negative-log-transformed density at time step `t`.
pub fn density_at(cfg: &FissionConfig, t: usize) -> NdArray<f64> {
    let [nx, ny, nz] = GRID;
    // Fragment separation along z, in grid units. Before scission the
    // fragments share a neck; after, they separate quickly.
    let scission = 0.5 * (SCISSION_BETWEEN.0 + SCISSION_BETWEEN.1) as f64; // 691
    let tf = t as f64;
    let elongation = 13.0 + 0.02 * (tf - 665.0); // slow stretch
    let separation = if tf < scission {
        elongation
    } else {
        // Rapid rupture that saturates: most of the separation happens in
        // the 690→692 window, so that gap carries the dominant change.
        elongation + 9.0 * (1.0 - (-(tf - scission) / 0.55).exp())
    };
    // Neck density: thins slowly, then ruptures at scission (the topology
    // change the experiment must detect).
    let neck = if tf < scission {
        0.32 - 0.002 * (tf - 665.0)
    } else {
        0.0
    };

    let (cx, cy, cz) = ((nx as f64) / 2.0, (ny as f64) / 2.0, (nz as f64) / 2.0);
    let sigma_t = 5.5; // transverse width
    let sigma_z = 4.0; // longitudinal width per fragment
    let neck_sigma = 3.0;

    let mut arr = NdArray::from_fn(vec![nx, ny, nz], |idx| {
        let x = idx[0] as f64 - cx;
        let y = idx[1] as f64 - cy;
        let z = idx[2] as f64 - cz;
        let r2 = (x * x + y * y) / (2.0 * sigma_t * sigma_t);
        let frag = |zc: f64| -> f64 {
            let dz = z - zc;
            (-(r2 + dz * dz / (2.0 * sigma_z * sigma_z))).exp()
        };
        let body = frag(-separation / 2.0) + frag(separation / 2.0);
        let bridge = neck * (-(r2 + z * z / (2.0 * neck_sigma * neck_sigma))).exp();
        cfg.peak_density * (body + bridge)
    });

    // Diffuse noise events: small *multiplicative* fluctuations across the
    // whole grid (multiplicative so the negative-log transform turns them
    // into uniform small perturbations instead of blowing up on the
    // near-zero background). Seeded per time step, so adjacent-step
    // differences at NOISE_STEPS stand out in L2 — the misleading peaks —
    // while each individual change stays small enough for high-order
    // Wasserstein distances to suppress.
    if NOISE_STEPS.contains(&t) {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37));
        let data = arr.as_mut_slice();
        for v in data.iter_mut() {
            *v *= 1.0 + cfg.noise_amplitude * rng.normal().clamp(-3.0, 3.0);
        }
    }

    // Negative log transform (paper footnote 6): a constant offset keeps
    // the argument positive, then −log.
    arr.map(|v| -(v.abs() + cfg.log_offset).ln())
}

/// The full 15-step series in paper order.
pub fn series(cfg: &FissionConfig) -> Vec<(usize, NdArray<f64>)> {
    TIME_STEPS
        .iter()
        .map(|&t| (t, density_at(cfg, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_tensor::reduce;

    #[test]
    fn snapshots_have_the_paper_grid() {
        let cfg = FissionConfig::default();
        let a = density_at(&cfg, 665);
        assert_eq!(a.shape(), &GRID);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = FissionConfig::default();
        let a = density_at(&cfg, 686);
        let b = density_at(&cfg, 686);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn values_are_finite_neglog() {
        let cfg = FissionConfig::default();
        for &t in &TIME_STEPS {
            let a = density_at(&cfg, t);
            assert!(a.as_slice().iter().all(|x| x.is_finite()), "step {t}");
            // −log of small densities is positive and sizable.
            assert!(reduce::mean(&a) > 0.0);
        }
    }

    #[test]
    fn scission_gap_has_the_largest_l2_jump() {
        let cfg = FissionConfig::default();
        let series = series(&cfg);
        let mut best = (0usize, 0.0f64);
        for w in series.windows(2) {
            let (t1, ref a) = w[0];
            let (_t2, ref b) = w[1];
            let d = reduce::norm_l2(&a.sub(b));
            if d > best.1 {
                best = (t1, d);
            }
        }
        assert_eq!(
            best.0, SCISSION_BETWEEN.0,
            "largest jump should start at step 690"
        );
    }

    #[test]
    fn noise_steps_create_secondary_peaks() {
        let cfg = FissionConfig::default();
        let series = series(&cfg);
        let mut l2 = Vec::new();
        for w in series.windows(2) {
            let (t1, ref a) = w[0];
            let (t2, ref b) = w[1];
            l2.push(((t1, t2), reduce::norm_l2(&a.sub(b))));
        }
        // The 685→686 pair spans two noise events; compare to a calm pair.
        let noisy = l2
            .iter()
            .find(|((t1, t2), _)| *t1 == 685 && *t2 == 686)
            .unwrap()
            .1;
        let calm = l2
            .iter()
            .find(|((t1, t2), _)| *t1 == 687 && *t2 == 688)
            .unwrap()
            .1;
        assert!(
            noisy > 1.5 * calm,
            "noise events must stand out in L2: {noisy} vs {calm}"
        );
    }

    #[test]
    fn topology_changes_at_scission() {
        // Before: one connected high-density region (neck present).
        // After: the mid-plane density collapses.
        let cfg = FissionConfig::default();
        let before = density_at(&cfg, 690);
        let after = density_at(&cfg, 692);
        let [nx, ny, nz] = GRID;
        let mid = |a: &NdArray<f64>| a.get(&[nx / 2, ny / 2, nz / 2]);
        // neglog: larger value = lower density.
        assert!(
            mid(&after) > mid(&before) + 1.0,
            "mid-plane density must collapse: {} vs {}",
            mid(&after),
            mid(&before)
        );
    }
}
