//! The constant-gradient test array of §IV-E.
//!
//! "We compressed and decompressed hypercubic arrays with elements ranging
//! from 0 to 1 arranged in a constant gradient from the lowest indices to
//! the highest indices": `X_x = Σx / Σ(s−1)`.

use blazr_tensor::NdArray;

/// Builds the §IV-E gradient array of the given shape: element value is
/// the sum of its coordinates divided by the sum of the maximal
/// coordinates, spanning [0, 1].
pub fn gradient(shape: &[usize]) -> NdArray<f64> {
    let denom: usize = shape.iter().map(|&s| s.saturating_sub(1)).sum();
    let denom = denom.max(1) as f64;
    NdArray::from_fn(shape.to_vec(), |idx| {
        idx.iter().sum::<usize>() as f64 / denom
    })
}

/// A hypercubic gradient array: `gradient(&[size; d])`.
pub fn hypercube(size: usize, d: usize) -> NdArray<f64> {
    gradient(&vec![size; d])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_span_zero_to_one() {
        let g = hypercube(8, 3);
        assert_eq!(g.get(&[0, 0, 0]), 0.0);
        assert_eq!(g.get(&[7, 7, 7]), 1.0);
    }

    #[test]
    fn gradient_is_monotone_along_each_axis() {
        let g = hypercube(16, 2);
        for i in 0..16 {
            for j in 1..16 {
                assert!(g.get(&[i, j]) > g.get(&[i, j - 1]));
            }
        }
    }

    #[test]
    fn constant_slope() {
        let g = hypercube(32, 1);
        let d0 = g.get(&[1]) - g.get(&[0]);
        for i in 2..32 {
            let d = g.get(&[i]) - g.get(&[i - 1]);
            assert!((d - d0).abs() < 1e-15);
        }
    }

    #[test]
    fn single_element_shape_is_finite() {
        let g = hypercube(1, 2);
        assert_eq!(g.get(&[0, 0]), 0.0);
    }
}
