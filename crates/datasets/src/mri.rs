//! Synthetic FLAIR-like MRI volumes (paper §V-B).
//!
//! The LGG segmentation dataset's FLAIR channel consists of 110 brain
//! volumes whose first dimension (axial slices) varies from 20 to 88
//! (mean 35.7) while the other two are fixed at 256×256 — spatially
//! smooth anatomy with localized bright structures, normalized to [0, 1]
//! with mean ≈ 0.0870 and standard deviation ≈ 0.1238.
//!
//! This generator reproduces those properties: an ellipsoidal "brain"
//! envelope, a mixture of smooth Gaussian blobs (tissue structure and
//! lesion-like bright spots), low-amplitude smooth noise, skewed
//! first-dimension sizes, and a final rescale toward the FLAIR intensity
//! statistics.

use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

/// In-plane resolution of every volume (matches the dataset).
pub const SLICE: usize = 256;
/// Target mean intensity (paper: FLAIR mean 0.0870).
pub const TARGET_MEAN: f64 = 0.0870;
/// Target standard deviation (paper: 0.1238).
pub const TARGET_STD: f64 = 0.1238;

/// Deterministic generator for a dataset of FLAIR-like volumes.
#[derive(Debug, Clone)]
pub struct MriDataset {
    /// Base seed; volume `i` derives its own stream from it.
    pub seed: u64,
    /// Number of volumes (the real dataset has 110).
    pub volumes: usize,
    /// In-plane resolution (256 in the dataset; reducible for tests).
    pub slice: usize,
}

impl MriDataset {
    /// The full-scale dataset configuration (110 volumes of 256×256).
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            volumes: 110,
            slice: SLICE,
        }
    }

    /// A reduced dataset for tests and quick runs.
    pub fn small(seed: u64, volumes: usize, slice: usize) -> Self {
        Self {
            seed,
            volumes,
            slice,
        }
    }

    /// First-dimension (slice count) of volume `i`: skewed toward small
    /// values in 20..=88 with mean ≈ 36, like the dataset.
    pub fn depth_of(&self, i: usize) -> usize {
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0xD1B5));
        let u = rng.uniform();
        20 + (48.0 * u * u).round() as usize
    }

    /// Generates volume `i` (values in [0, 1], FLAIR-like statistics).
    pub fn volume(&self, i: usize) -> NdArray<f64> {
        assert!(i < self.volumes, "volume index out of range");
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0xB10B));
        let d0 = self.depth_of(i);
        let (d1, d2) = (self.slice, self.slice);

        // Blob mixture: coarse anatomy + a few bright lesion-like spots.
        struct Blob {
            c: [f64; 3],
            sigma: [f64; 3],
            amp: f64,
        }
        let mut blobs = Vec::new();
        let n_anatomy = 6 + rng.range(0, 5);
        for _ in 0..n_anatomy {
            blobs.push(Blob {
                c: [
                    rng.uniform_in(0.25, 0.75),
                    rng.uniform_in(0.3, 0.7),
                    rng.uniform_in(0.3, 0.7),
                ],
                sigma: [
                    rng.uniform_in(0.15, 0.35),
                    rng.uniform_in(0.1, 0.25),
                    rng.uniform_in(0.1, 0.25),
                ],
                amp: rng.uniform_in(0.25, 0.6),
            });
        }
        let n_lesions = rng.range(0, 4);
        for _ in 0..n_lesions {
            blobs.push(Blob {
                c: [
                    rng.uniform_in(0.3, 0.7),
                    rng.uniform_in(0.35, 0.65),
                    rng.uniform_in(0.35, 0.65),
                ],
                sigma: [
                    rng.uniform_in(0.04, 0.1),
                    rng.uniform_in(0.03, 0.08),
                    rng.uniform_in(0.03, 0.08),
                ],
                amp: rng.uniform_in(0.7, 1.0),
            });
        }

        // Low-frequency multiplicative noise field via a few random cosines
        // (keeps the data smooth, like real MRI bias fields).
        let mut waves = Vec::new();
        for _ in 0..4 {
            waves.push((
                rng.uniform_in(2.0, 6.0),
                rng.uniform_in(2.0, 6.0),
                rng.uniform_in(2.0, 6.0),
                rng.uniform_in(0.0, std::f64::consts::TAU),
            ));
        }

        let mut vol = NdArray::from_fn(vec![d0, d1, d2], |idx| {
            let p = [
                (idx[0] as f64 + 0.5) / d0 as f64,
                (idx[1] as f64 + 0.5) / d1 as f64,
                (idx[2] as f64 + 0.5) / d2 as f64,
            ];
            // Ellipsoidal head envelope: zero outside.
            let e = ((p[0] - 0.5) / 0.48).powi(2)
                + ((p[1] - 0.5) / 0.42).powi(2)
                + ((p[2] - 0.5) / 0.42).powi(2);
            if e > 1.0 {
                return 0.0;
            }
            let envelope = 1.0 - e;
            let mut val = 0.0;
            for b in &blobs {
                let q = (0..3)
                    .map(|k| ((p[k] - b.c[k]) / b.sigma[k]).powi(2))
                    .sum::<f64>();
                val += b.amp * (-0.5 * q).exp();
            }
            let mut bias = 1.0;
            for &(fx, fy, fz, ph) in &waves {
                bias +=
                    0.04 * (std::f64::consts::TAU * (fx * p[0] + fy * p[1] + fz * p[2]) + ph).cos();
            }
            (val * bias * envelope).max(0.0)
        });

        // Rescale toward FLAIR statistics: scale so the mean matches, then
        // clamp to [0, 1]. The large zero background keeps std in the
        // right regime automatically.
        let mean = blazr_tensor::reduce::mean(&vol);
        if mean > 0.0 {
            let scale = TARGET_MEAN / mean;
            vol = vol.map(|v| (v * scale).clamp(0.0, 1.0));
        }
        vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_tensor::reduce;

    fn small() -> MriDataset {
        MriDataset::small(7, 8, 64)
    }

    #[test]
    fn depths_are_in_dataset_range() {
        let ds = MriDataset::full(1);
        let mut total = 0usize;
        for i in 0..ds.volumes {
            let d = ds.depth_of(i);
            assert!((20..=88).contains(&d), "depth {d}");
            total += d;
        }
        let mean = total as f64 / ds.volumes as f64;
        // Paper: mean 35.72. Accept the right regime.
        assert!((28.0..=44.0).contains(&mean), "mean depth {mean}");
    }

    #[test]
    fn volumes_are_deterministic() {
        let ds = small();
        let a = ds.volume(3);
        let b = ds.volume(3);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn volumes_differ_from_each_other() {
        let ds = small();
        let a = ds.volume(0);
        let b = ds.volume(1);
        assert!(a.shape() != b.shape() || a.as_slice() != b.as_slice());
    }

    #[test]
    fn values_are_normalized() {
        let ds = small();
        let v = ds.volume(2);
        for &x in v.as_slice() {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn statistics_are_flair_like() {
        let ds = small();
        let v = ds.volume(4);
        let mean = reduce::mean(&v);
        let std = reduce::std_dev(&v);
        assert!(
            (TARGET_MEAN * 0.5..=TARGET_MEAN * 1.6).contains(&mean),
            "mean {mean}"
        );
        assert!((0.04..=0.30).contains(&std), "std {std}");
    }

    #[test]
    fn anisotropic_shape() {
        let ds = small();
        let v = ds.volume(5);
        let s = v.shape();
        assert_eq!(s[1], 64);
        assert_eq!(s[2], 64);
        assert!(s[0] < s[1], "first dimension is the short one");
    }

    #[test]
    fn background_is_zero_outside_head() {
        let ds = small();
        let v = ds.volume(6);
        assert_eq!(v.get(&[0, 0, 0]), 0.0);
    }
}
