//! A 2-D shallow-water simulation, generic over arithmetic precision.
//!
//! Stand-in for the paper's ShallowWaters.jl runs (§V-A): a linearized
//! shallow-water model on a collocated grid with forward–backward time
//! stepping, double-gyre wind forcing, seamount topography, bottom
//! friction, lateral viscosity, and non-periodic (closed) boundaries —
//! the same configuration family the paper simulates.
//!
//! The solver is generic over [`Real`], so the *entire* state and every
//! arithmetic operation can run in software FP16 — which is how the
//! Fig. 4 experiment produces its two precision variants ("two movies")
//! of the same physics whose difference the compressed-space operations
//! then localize.

use blazr_precision::Real;
use blazr_tensor::NdArray;

/// Physical and numerical configuration (all in `f64`; converted into the
/// solver's precision at construction).
#[derive(Debug, Clone)]
pub struct SwConfig {
    /// Grid cells in x (first dimension).
    pub nx: usize,
    /// Grid cells in y (second dimension).
    pub ny: usize,
    /// Grid spacing (m).
    pub dx: f64,
    /// Gravitational acceleration (m/s²).
    pub gravity: f64,
    /// Mean water depth (m).
    pub depth: f64,
    /// Coriolis parameter f₀ (1/s).
    pub coriolis: f64,
    /// Wind stress amplitude (m/s² equivalent).
    pub wind_amplitude: f64,
    /// Linear bottom friction coefficient (1/s).
    pub friction: f64,
    /// Lateral eddy viscosity (m²/s).
    pub viscosity: f64,
    /// Seamount height as a fraction of depth (0 disables).
    pub seamount_height: f64,
    /// CFL safety factor for the time step.
    pub cfl: f64,
}

impl Default for SwConfig {
    fn default() -> Self {
        Self {
            nx: 100,
            ny: 200,
            dx: 5_000.0,
            gravity: 9.81,
            depth: 500.0,
            coriolis: 1e-4,
            wind_amplitude: 3e-5,
            friction: 2e-6,
            viscosity: 300.0,
            seamount_height: 0.5,
            cfl: 0.4,
        }
    }
}

/// Shallow-water state and stepper in precision `P`.
#[derive(Debug, Clone)]
pub struct ShallowWater<P: Real> {
    cfg: SwConfig,
    nx: usize,
    ny: usize,
    /// Surface elevation (m).
    h: Vec<P>,
    /// x-velocity (m/s).
    u: Vec<P>,
    /// y-velocity (m/s).
    v: Vec<P>,
    /// Local water depth H(x, y) including the seamount.
    depth_field: Vec<P>,
    /// Double-gyre wind forcing on u, per row (depends on y only).
    wind: Vec<P>,
    dt: P,
    steps_taken: usize,
}

impl<P: Real> ShallowWater<P> {
    /// Builds the model at rest (h = u = v = 0) over the configured
    /// topography.
    pub fn new(cfg: SwConfig) -> Self {
        let (nx, ny) = (cfg.nx, cfg.ny);
        assert!(nx >= 4 && ny >= 4, "grid too small");
        let n = nx * ny;
        let mut depth_field = Vec::with_capacity(n);
        for i in 0..nx {
            for j in 0..ny {
                // Gaussian seamount in the domain center.
                let x = (i as f64 + 0.5) / nx as f64 - 0.5;
                let y = (j as f64 + 0.5) / ny as f64 - 0.5;
                let bump = cfg.seamount_height
                    * cfg.depth
                    * (-(x * x + y * y) / (2.0 * 0.08f64.powi(2))).exp();
                depth_field.push(P::from_f64(cfg.depth - bump));
            }
        }
        // Double-gyre wind: two counter-rotating cells across y.
        let wind: Vec<P> = (0..ny)
            .map(|j| {
                let y = (j as f64 + 0.5) / ny as f64;
                P::from_f64(cfg.wind_amplitude * (2.0 * std::f64::consts::PI * y).cos())
            })
            .collect();
        let c = (cfg.gravity * cfg.depth).sqrt();
        let dt = P::from_f64(cfg.cfl * cfg.dx / (c * std::f64::consts::SQRT_2));
        Self {
            nx,
            ny,
            h: vec![P::zero(); n],
            u: vec![P::zero(); n],
            v: vec![P::zero(); n],
            depth_field,
            wind,
            dt,
            cfg,
            steps_taken: 0,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> usize {
        i * self.ny + j
    }

    /// Advances one forward–backward step (continuity first, then
    /// momentum against the updated surface — stable for gravity waves at
    /// CFL ≤ 1/√2).
    pub fn step(&mut self) {
        let (nx, ny) = (self.nx, self.ny);
        let dt = self.dt;
        let inv_2dx = P::from_f64(1.0 / (2.0 * self.cfg.dx));
        let g = P::from_f64(self.cfg.gravity);
        let f0 = P::from_f64(self.cfg.coriolis);
        let r = P::from_f64(self.cfg.friction);
        let nu_dx2 = P::from_f64(self.cfg.viscosity / (self.cfg.dx * self.cfg.dx));
        let four = P::from_f64(4.0);

        // Continuity: h += −dt·H·(∂u/∂x + ∂v/∂y), interior points.
        let mut new_h = self.h.clone();
        for i in 1..nx - 1 {
            for j in 1..ny - 1 {
                let k = self.at(i, j);
                let dudx = (self.u[self.at(i + 1, j)] - self.u[self.at(i - 1, j)]) * inv_2dx;
                let dvdy = (self.v[self.at(i, j + 1)] - self.v[self.at(i, j - 1)]) * inv_2dx;
                new_h[k] = self.h[k] - dt * self.depth_field[k] * (dudx + dvdy);
            }
        }
        // Closed basin: zero-gradient h at walls.
        for j in 0..ny {
            new_h[self.at(0, j)] = new_h[self.at(1, j)];
            new_h[self.at(nx - 1, j)] = new_h[self.at(nx - 2, j)];
        }
        for i in 0..nx {
            new_h[self.at(i, 0)] = new_h[self.at(i, 1)];
            new_h[self.at(i, ny - 1)] = new_h[self.at(i, ny - 2)];
        }
        self.h = new_h;

        // Momentum against the *new* h (the "backward" half).
        let mut new_u = self.u.clone();
        let mut new_v = self.v.clone();
        for i in 1..nx - 1 {
            for j in 1..ny - 1 {
                let k = self.at(i, j);
                let dhdx = (self.h[self.at(i + 1, j)] - self.h[self.at(i - 1, j)]) * inv_2dx;
                let dhdy = (self.h[self.at(i, j + 1)] - self.h[self.at(i, j - 1)]) * inv_2dx;
                let lap_u = self.u[self.at(i + 1, j)]
                    + self.u[self.at(i - 1, j)]
                    + self.u[self.at(i, j + 1)]
                    + self.u[self.at(i, j - 1)]
                    - four * self.u[k];
                let lap_v = self.v[self.at(i + 1, j)]
                    + self.v[self.at(i - 1, j)]
                    + self.v[self.at(i, j + 1)]
                    + self.v[self.at(i, j - 1)]
                    - four * self.v[k];
                new_u[k] = self.u[k]
                    + dt * (f0 * self.v[k] - g * dhdx - r * self.u[k]
                        + self.wind[j]
                        + nu_dx2 * lap_u);
                new_v[k] = self.v[k]
                    + dt * (-(f0 * self.u[k]) - g * dhdy - r * self.v[k] + nu_dx2 * lap_v);
            }
        }
        // No-slip walls.
        for j in 0..ny {
            for i in [0, nx - 1] {
                new_u[self.at(i, j)] = P::zero();
                new_v[self.at(i, j)] = P::zero();
            }
        }
        for i in 0..nx {
            for j in [0, ny - 1] {
                new_u[self.at(i, j)] = P::zero();
                new_v[self.at(i, j)] = P::zero();
            }
        }
        self.u = new_u;
        self.v = new_v;
        self.steps_taken += 1;
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The surface height field as an `f64` array shaped `(nx, ny)` —
    /// the quantity Fig. 4 visualizes. Values may be negative (as the
    /// paper notes).
    pub fn surface_height(&self) -> NdArray<f64> {
        NdArray::from_vec(
            vec![self.nx, self.ny],
            self.h.iter().map(|&x| x.to_f64()).collect(),
        )
    }

    /// Total kinetic + potential energy density (diagnostic).
    pub fn energy(&self) -> f64 {
        let mut e = 0.0;
        for k in 0..self.h.len() {
            let (h, u, v) = (self.h[k].to_f64(), self.u[k].to_f64(), self.v[k].to_f64());
            e += 0.5 * self.cfg.gravity * h * h + 0.5 * self.cfg.depth * (u * u + v * v);
        }
        e / self.h.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_precision::F16;

    fn small_cfg() -> SwConfig {
        SwConfig {
            nx: 24,
            ny: 48,
            ..SwConfig::default()
        }
    }

    #[test]
    fn starts_at_rest() {
        let sw = ShallowWater::<f64>::new(small_cfg());
        assert_eq!(sw.energy(), 0.0);
        assert!(sw.surface_height().as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn wind_spins_up_motion() {
        let mut sw = ShallowWater::<f64>::new(small_cfg());
        sw.run(200);
        assert!(sw.energy() > 0.0);
        let h = sw.surface_height();
        assert!(h.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn stays_finite_and_bounded_f64() {
        let mut sw = ShallowWater::<f64>::new(small_cfg());
        sw.run(2000);
        let h = sw.surface_height();
        for &x in h.as_slice() {
            assert!(x.is_finite());
            assert!(x.abs() < 100.0, "runaway surface height {x}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = ShallowWater::<f64>::new(small_cfg());
        let mut b = ShallowWater::<f64>::new(small_cfg());
        a.run(100);
        b.run(100);
        assert_eq!(a.surface_height().as_slice(), b.surface_height().as_slice());
    }

    #[test]
    fn f16_and_f64_diverge() {
        // The Fig. 4 premise: identical physics at different precisions
        // produces visibly different fields.
        let mut lo = ShallowWater::<F16>::new(small_cfg());
        let mut hi = ShallowWater::<f64>::new(small_cfg());
        lo.run(400);
        hi.run(400);
        let a = lo.surface_height();
        let b = hi.surface_height();
        let max_diff = blazr_util::stats::max_abs_diff(a.as_slice(), b.as_slice());
        assert!(max_diff > 0.0, "precisions should diverge");
        // But FP16 must not have blown up either.
        assert!(a.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn f32_closer_to_f64_than_f16() {
        let mut h16 = ShallowWater::<F16>::new(small_cfg());
        let mut h32 = ShallowWater::<f32>::new(small_cfg());
        let mut h64 = ShallowWater::<f64>::new(small_cfg());
        h16.run(300);
        h32.run(300);
        h64.run(300);
        let r = h64.surface_height();
        let e16 = blazr_util::stats::rms_diff(h16.surface_height().as_slice(), r.as_slice());
        let e32 = blazr_util::stats::rms_diff(h32.surface_height().as_slice(), r.as_slice());
        assert!(e32 < e16, "f32 err {e32} should beat f16 err {e16}");
    }

    #[test]
    fn seamount_shapes_the_flow() {
        let mut flat_cfg = small_cfg();
        flat_cfg.seamount_height = 0.0;
        let mut flat = ShallowWater::<f64>::new(flat_cfg);
        let mut mount = ShallowWater::<f64>::new(small_cfg());
        flat.run(300);
        mount.run(300);
        let d = blazr_util::stats::max_abs_diff(
            flat.surface_height().as_slice(),
            mount.surface_height().as_slice(),
        );
        assert!(d > 0.0, "topography must matter");
    }
}
