//! Uncompressed-space reference operations.
//!
//! These are the "plain PyTorch" counterparts the paper compares its
//! compressed-space operations against (§V-B): mean, variance, covariance,
//! dot product, L2 norm, cosine similarity, SSIM, and the exact 1-D
//! p-order Wasserstein distance. Every compressed-space operation in
//! `blazr::ops` has a test pitting it against the functions here.

use crate::NdArray;

/// Sum of all elements (`ΣX`).
pub fn sum(a: &NdArray<f64>) -> f64 {
    a.as_slice().iter().sum()
}

/// Arithmetic mean. Returns NaN for empty arrays.
pub fn mean(a: &NdArray<f64>) -> f64 {
    sum(a) / a.len() as f64
}

/// Population variance.
pub fn variance(a: &NdArray<f64>) -> f64 {
    let m = mean(a);
    a.as_slice().iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &NdArray<f64>) -> f64 {
    variance(a).sqrt()
}

/// Population covariance of two same-shaped arrays.
pub fn covariance(a: &NdArray<f64>, b: &NdArray<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let ma = mean(a);
    let mb = mean(b);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

/// Dot product over all elements.
pub fn dot(a: &NdArray<f64>, b: &NdArray<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .sum()
}

/// L2 (Euclidean) norm.
pub fn norm_l2(a: &NdArray<f64>) -> f64 {
    a.as_slice().iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// L∞ norm (largest magnitude).
pub fn norm_linf(a: &NdArray<f64>) -> f64 {
    a.as_slice().iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// Cosine similarity `⟨a,b⟩ / (‖a‖‖b‖)`.
pub fn cosine_similarity(a: &NdArray<f64>, b: &NdArray<f64>) -> f64 {
    dot(a, b) / (norm_l2(a) * norm_l2(b))
}

/// Stabilizers and weights for [`ssim`], mirroring Algorithm 12's
/// parameters. Defaults follow the standard SSIM constants for data in
/// `[0, 1]`: `sl = (0.01)²`, `sc = (0.03)²`, unit weights.
#[derive(Debug, Clone, Copy)]
pub struct SsimParams {
    /// Luminance stabilizer `sl`.
    pub luminance_stabilizer: f64,
    /// Contrast stabilizer `sc`.
    pub contrast_stabilizer: f64,
    /// Luminance weight `wl`.
    pub luminance_weight: f64,
    /// Contrast weight `wc`.
    pub contrast_weight: f64,
    /// Structure weight `ws`.
    pub structure_weight: f64,
}

impl Default for SsimParams {
    fn default() -> Self {
        Self {
            luminance_stabilizer: 1e-4,
            contrast_stabilizer: 9e-4,
            luminance_weight: 1.0,
            contrast_weight: 1.0,
            structure_weight: 1.0,
        }
    }
}

/// Global structural similarity index between two same-shaped arrays,
/// following Algorithm 12 (single-window SSIM over the whole array).
pub fn ssim(a: &NdArray<f64>, b: &NdArray<f64>, p: &SsimParams) -> f64 {
    let mu_a = mean(a);
    let mu_b = mean(b);
    let var_a = variance(a);
    let var_b = variance(b);
    let sd_a = var_a.sqrt();
    let sd_b = var_b.sqrt();
    let cov = covariance(a, b);
    let l = (2.0 * mu_a * mu_b + p.luminance_stabilizer)
        / (mu_a * mu_a + mu_b * mu_b + p.luminance_stabilizer);
    let c = (2.0 * sd_a * sd_b + p.contrast_stabilizer) / (var_a + var_b + p.contrast_stabilizer);
    let s = (cov + p.contrast_stabilizer / 2.0) / (sd_a * sd_b + p.contrast_stabilizer / 2.0);
    l.powf(p.luminance_weight) * c.powf(p.contrast_weight) * s.powf(p.structure_weight)
}

/// Softmax over all elements: `e^X / Σe^X`, computed with the usual
/// max-subtraction for numerical stability.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    let max = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = a.iter().map(|&x| (x - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / total).collect()
}

/// Exact 1-D p-order Wasserstein distance between two equal-length
/// samples interpreted as distributions (Algorithm 13's uncompressed
/// counterpart): sorts both, then `(mean |diff|^p)^(1/p)`.
///
/// If either input does not sum to 1 (within `1e-9`), it is passed through
/// [`softmax`] first, as the paper does. The power sum is max-normalized so
/// large `p` (the paper sweeps up to 80) cannot underflow to zero unless
/// all differences are zero.
pub fn wasserstein_1d(a: &[f64], b: &[f64], p: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(p >= 1.0, "order must be >= 1");
    let normalize = |xs: &[f64]| -> Vec<f64> {
        let s: f64 = xs.iter().sum();
        if (s - 1.0).abs() > 1e-9 {
            softmax(xs)
        } else {
            xs.to_vec()
        }
    };
    let mut pa = normalize(a);
    let mut pb = normalize(b);
    pa.sort_by(|x, y| x.partial_cmp(y).expect("no NaNs in distribution"));
    pb.sort_by(|x, y| x.partial_cmp(y).expect("no NaNs in distribution"));
    let diffs: Vec<f64> = pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).collect();
    let dmax = diffs.iter().copied().fold(0.0, f64::max);
    if dmax == 0.0 {
        return 0.0;
    }
    // Factor out the largest difference to keep powers representable.
    let sum: f64 = diffs.iter().map(|&d| (d / dmax).powf(p)).sum();
    dmax * (sum / a.len() as f64).powf(1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn mean_and_variance_basic() {
        let a = NdArray::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mean(&a), 2.5);
        assert_eq!(variance(&a), 1.25);
        assert_eq!(std_dev(&a), 1.25f64.sqrt());
    }

    #[test]
    fn covariance_of_self_is_variance() {
        let a = random_array(vec![7, 9], 1);
        assert!((covariance(&a, &a) - variance(&a)).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_and_bilinear() {
        let a = random_array(vec![50], 2);
        let b = random_array(vec![50], 3);
        assert!((covariance(&a, &b) - covariance(&b, &a)).abs() < 1e-12);
        let a2 = a.mul_scalar(3.0);
        assert!((covariance(&a2, &b) - 3.0 * covariance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn dot_and_norm_agree() {
        let a = random_array(vec![100], 4);
        assert!((dot(&a, &a).sqrt() - norm_l2(&a)).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = random_array(vec![64], 5);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let na = a.neg();
        assert!((cosine_similarity(&a, &na) + 1.0).abs() < 1e-12);
        let b = random_array(vec![64], 6);
        let c = cosine_similarity(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn ssim_identity_is_one() {
        let a = random_array(vec![16, 16], 7).map(|x| (x + 1.0) / 2.0); // [0,1]
        let s = ssim(&a, &a, &SsimParams::default());
        assert!((s - 1.0).abs() < 1e-9, "ssim {s}");
    }

    #[test]
    fn ssim_detects_difference() {
        let a = random_array(vec![16, 16], 8).map(|x| (x + 1.0) / 2.0);
        let b = random_array(vec![16, 16], 9).map(|x| (x + 1.0) / 2.0);
        let s = ssim(&a, &b, &SsimParams::default());
        assert!(s < 0.9, "independent noise should score low, got {s}");
    }

    #[test]
    fn softmax_sums_to_one() {
        let xs = [1.0, -2.0, 0.5, 3.0];
        let p = softmax(&xs);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v > 0.0));
        // Monotone: bigger logit, bigger probability.
        assert!(p[3] > p[0] && p[0] > p[2] && p[2] > p[1]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let xs = [1000.0, 1001.0];
        let p = softmax(&xs);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0]);
    }

    #[test]
    fn wasserstein_identity_is_zero() {
        let a: Vec<f64> = (0..10).map(|i| (i as f64 + 1.0) / 55.0).collect();
        assert_eq!(wasserstein_1d(&a, &a, 2.0), 0.0);
    }

    #[test]
    fn wasserstein_symmetry() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let a: Vec<f64> = (0..32).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..32).map(|_| rng.uniform()).collect();
        let d1 = wasserstein_1d(&a, &b, 3.0);
        let d2 = wasserstein_1d(&b, &a, 3.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_high_order_does_not_underflow_to_zero() {
        let a = vec![0.25, 0.25, 0.25, 0.25];
        let b = vec![0.2501, 0.2499, 0.25, 0.25];
        // Direct powf would underflow (1e-4)^68 ≈ 1e-272 per term but the
        // max-normalized form keeps the result ≈ dmax.
        let d = wasserstein_1d(&a, &b, 68.0);
        assert!(d > 1e-6, "got {d}");
        assert!(d < 1e-3);
    }

    #[test]
    fn wasserstein_orders_suppress_small_diffs() {
        // One big difference + many small ones: raising p should move the
        // distance toward the max difference.
        let n = 64;
        let base = vec![1.0 / n as f64; n];
        let mut pert = base.clone();
        pert[0] += 0.01;
        pert[1] -= 0.01;
        for i in 2..n {
            pert[i] += if i % 2 == 0 { 1e-6 } else { -1e-6 };
        }
        let d2 = wasserstein_1d(&base, &pert, 2.0);
        let d64 = wasserstein_1d(&base, &pert, 64.0);
        // Higher order weights the dominant diff more heavily relative to
        // the mean, so the max-normalized mean term grows toward dmax.
        assert!(d64 > d2);
    }

    #[test]
    fn norm_linf_is_max_abs() {
        let a = NdArray::from_vec(vec![3], vec![-5.0, 2.0, 4.0]);
        assert_eq!(norm_linf(&a), 5.0);
    }
}
