//! Shape and index arithmetic for row-major dense arrays.
//!
//! Terminology follows the paper's §II-B: an array's *shape* `s` is its
//! length in each direction; indices are multi-indices `x` with
//! `offset = Σ x_k · stride_k` in row-major order.

/// Product of all extents — the number of elements (`Πs`).
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Overflow-checked element count, for validating untrusted shapes (e.g.
/// deserializers reading attacker-controlled extents).
pub fn checked_num_elements(shape: &[usize]) -> Option<usize> {
    shape.iter().try_fold(1usize, |acc, &s| acc.checked_mul(s))
}

/// Row-major strides for `shape` (innermost dimension has stride 1).
pub fn strides_row_major(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for k in (0..shape.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * shape[k + 1];
    }
    strides
}

/// Element-wise ceiling division of shapes — the paper's `⌈s ⊘ i⌉`, i.e.
/// the arrangement of blocks `b`.
pub fn ceil_div(s: &[usize], i: &[usize]) -> Vec<usize> {
    assert_eq!(s.len(), i.len(), "dimensionality mismatch");
    s.iter()
        .zip(i)
        .map(|(&a, &b)| {
            assert!(b > 0, "zero block extent");
            a.div_ceil(b)
        })
        .collect()
}

/// `num_elements(&ceil_div(s, i))` without materializing the quotient
/// shape — per-chunk hot paths (stream decode, compressed-space
/// statistics) call this once per chunk and must not allocate.
pub fn ceil_div_count(s: &[usize], i: &[usize]) -> usize {
    assert_eq!(s.len(), i.len(), "dimensionality mismatch");
    s.iter()
        .zip(i)
        .map(|(&a, &b)| {
            assert!(b > 0, "zero block extent");
            a.div_ceil(b)
        })
        .product()
}

/// Element-wise product of shapes (`b ⊙ i`, the padded shape).
pub fn elementwise_mul(a: &[usize], b: &[usize]) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Converts a flat row-major offset to a multi-index.
pub fn unravel(mut offset: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = vec![0; shape.len()];
    for k in (0..shape.len()).rev() {
        idx[k] = offset % shape[k];
        offset /= shape[k];
    }
    idx
}

/// Converts a multi-index to a flat row-major offset.
pub fn ravel(idx: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(idx.len(), shape.len());
    let mut off = 0;
    for (&i, &s) in idx.iter().zip(shape) {
        debug_assert!(i < s, "index {i} out of bounds {s}");
        off = off * s + i;
    }
    off
}

/// Advances a multi-index through `shape` in row-major order.
///
/// Returns `false` when iteration wraps past the end. Starting from all
/// zeros this visits every index exactly once:
///
/// ```
/// use blazr_tensor::shape::advance;
/// let shape = [2, 3];
/// let mut idx = vec![0, 0];
/// let mut count = 1;
/// while advance(&mut idx, &shape) { count += 1; }
/// assert_eq!(count, 6);
/// ```
pub fn advance(idx: &mut [usize], shape: &[usize]) -> bool {
    for k in (0..shape.len()).rev() {
        idx[k] += 1;
        if idx[k] < shape[k] {
            return true;
        }
        idx[k] = 0;
    }
    false
}

/// True if every extent is a power of two (the paper requires power-of-two
/// block shapes, §III-A(b)).
pub fn all_powers_of_two(shape: &[usize]) -> bool {
    shape.iter().all(|&x| x.is_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_of_3d() {
        assert_eq!(strides_row_major(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_row_major(&[5]), vec![1]);
        assert_eq!(strides_row_major(&[]), Vec::<usize>::new());
    }

    #[test]
    fn ceil_div_matches_paper_example() {
        // (3, 224, 224) with blocks (4, 4, 4) → (1, 56, 56)   [§III-A(b)]
        assert_eq!(ceil_div(&[3, 224, 224], &[4, 4, 4]), vec![1, 56, 56]);
        assert_eq!(ceil_div(&[8, 8], &[8, 8]), vec![1, 1]);
        assert_eq!(ceil_div(&[9, 8], &[8, 8]), vec![2, 1]);
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [3, 4, 5];
        for off in 0..num_elements(&shape) {
            let idx = unravel(off, &shape);
            assert_eq!(ravel(&idx, &shape), off);
        }
    }

    #[test]
    fn advance_visits_in_row_major_order() {
        let shape = [2, 3];
        let mut idx = vec![0, 0];
        let mut seen = vec![idx.clone()];
        while advance(&mut idx, &shape) {
            seen.push(idx.clone());
        }
        assert_eq!(seen.len(), 6);
        for (off, idx) in seen.iter().enumerate() {
            assert_eq!(ravel(idx, &shape), off);
        }
    }

    #[test]
    fn power_of_two_check() {
        assert!(all_powers_of_two(&[4, 8, 16]));
        assert!(all_powers_of_two(&[1, 2]));
        assert!(!all_powers_of_two(&[3, 4]));
        assert!(!all_powers_of_two(&[0, 4]));
    }

    #[test]
    fn num_elements_and_product() {
        assert_eq!(num_elements(&[3, 224, 224]), 150_528);
        assert_eq!(num_elements(&[]), 1);
    }
}
