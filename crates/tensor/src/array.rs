//! Dense row-major n-dimensional arrays.

use crate::shape::{num_elements, ravel, strides_row_major};
use blazr_precision::Real;
use rayon::prelude::*;

/// Below this element count, element-wise kernels run sequentially; at or
/// above it they use Rayon. Keeps tiny arrays (the common case in block
/// codecs) away from thread-pool overhead.
const PAR_THRESHOLD: usize = 1 << 15;

/// A dense, row-major, arbitrary-dimensional array.
///
/// The workspace's tensor type: the compressor consumes and produces
/// `NdArray<f64>` (or any [`Real`]), and the reference (uncompressed-space)
/// operations in [`crate::reduce`] operate on it.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy> NdArray<T> {
    /// Creates an array from a shape and existing data (row-major).
    ///
    /// Panics if `data.len() != Π shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            num_elements(&shape),
            "data length does not match shape"
        );
        Self { shape, data }
    }

    /// Creates an array filled with `value`.
    pub fn full(shape: Vec<usize>, value: T) -> Self {
        let n = num_elements(&shape);
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates an array by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let n = num_elements(&shape);
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&idx));
            crate::shape::advance(&mut idx, &shape);
        }
        Self { shape, data }
    }

    /// The array's shape `s`.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions `d = |s|`.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements `Πs`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array, returning its data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[ravel(idx, &self.shape)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, idx: &[usize], value: T) {
        let off = ravel(idx, &self.shape);
        self.data[off] = value;
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides_row_major(&self.shape)
    }

    /// Applies `f` to every element, producing a new array of the same shape.
    pub fn map<U: Copy + Send + Sync>(&self, f: impl Fn(T) -> U + Send + Sync) -> NdArray<U>
    where
        T: Send + Sync,
    {
        let data = if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter().map(|&x| f(x)).collect()
        } else {
            self.data.iter().map(|&x| f(x)).collect()
        };
        NdArray {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Combines two same-shaped arrays element-wise.
    pub fn zip_map<U: Copy + Send + Sync, V: Copy + Send + Sync>(
        &self,
        other: &NdArray<U>,
        f: impl Fn(T, U) -> V + Send + Sync,
    ) -> NdArray<V>
    where
        T: Send + Sync,
    {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let data = if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .zip(other.data.par_iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        } else {
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        };
        NdArray {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Reinterprets the array with a new shape of equal element count.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        assert_eq!(
            num_elements(&shape),
            self.data.len(),
            "reshape changes element count"
        );
        self.shape = shape;
        self
    }

    /// Returns the leading-corner sub-array of `new_shape` (each extent
    /// must not exceed the current one). The paper's SSIM experiment crops
    /// one image of each pair to match shapes (§V-B).
    pub fn crop(&self, new_shape: &[usize]) -> Self {
        assert_eq!(new_shape.len(), self.ndim(), "dimensionality mismatch");
        for (k, (&n, &s)) in new_shape.iter().zip(&self.shape).enumerate() {
            assert!(n <= s, "crop extent {n} exceeds {s} in dimension {k}");
        }
        Self::from_fn(new_shape.to_vec(), |idx| self.get(idx))
    }

    /// Returns a copy grown to `new_shape` (each extent must be at least
    /// the current one), filling new positions with `fill` — the padding
    /// alternative for shape-matching.
    pub fn pad_to(&self, new_shape: &[usize], fill: T) -> Self {
        assert_eq!(new_shape.len(), self.ndim(), "dimensionality mismatch");
        for (k, (&n, &s)) in new_shape.iter().zip(&self.shape).enumerate() {
            assert!(n >= s, "pad extent {n} below {s} in dimension {k}");
        }
        Self::from_fn(new_shape.to_vec(), |idx| {
            if idx.iter().zip(&self.shape).all(|(&i, &s)| i < s) {
                self.get(idx)
            } else {
                fill
            }
        })
    }
}

impl<T: Real> NdArray<T> {
    /// Creates a zero-filled array.
    pub fn zeros(shape: Vec<usize>) -> Self {
        Self::full(shape, T::zero())
    }

    /// Converts every element to another [`Real`] format (the paper's
    /// "data type conversion" step).
    pub fn convert<U: Real>(&self) -> NdArray<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product `X ⊙ Y`.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise quotient `X ⊘ Y`.
    pub fn divide(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        self.map(|a| -a)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, x: T) -> Self {
        self.map(|a| a + x)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, x: T) -> Self {
        self.map(|a| a * x)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Self {
        self.map(|a| a.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_indices() {
        let a = NdArray::from_fn(vec![2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(a.get(&[0, 0]), 0.0);
        assert_eq!(a.get(&[0, 2]), 2.0);
        assert_eq!(a.get(&[1, 1]), 11.0);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = NdArray::<f64>::zeros(vec![3, 4]);
        a.set(&[2, 3], 7.5);
        assert_eq!(a.get(&[2, 3]), 7.5);
        assert_eq!(a.get(&[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length does not match shape")]
    fn from_vec_validates_length() {
        let _ = NdArray::from_vec(vec![2, 2], vec![1.0f64; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = NdArray::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let b = NdArray::from_vec(vec![4], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0, 90.0, 160.0]);
        assert_eq!(b.divide(&a).as_slice(), &[10.0, 10.0, 10.0, 10.0]);
        assert_eq!(a.neg().as_slice(), &[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(a.add_scalar(0.5).as_slice(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.mul_scalar(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn map_handles_parallel_threshold() {
        // Exercise both the sequential and parallel paths.
        let small = NdArray::from_fn(vec![100], |i| i[0] as f64);
        let big = NdArray::from_fn(vec![40_000], |i| i[0] as f64);
        assert_eq!(small.map(|x| x * 2.0).get(&[7]), 14.0);
        assert_eq!(big.map(|x| x * 2.0).get(&[39_999]), 79_998.0);
    }

    #[test]
    fn conversion_rounds() {
        use blazr_precision::F16;
        let a = NdArray::from_vec(vec![2], vec![1.0f64, std::f64::consts::PI]);
        let h: NdArray<F16> = a.convert();
        assert_eq!(h.get(&[0]).to_f64(), 1.0);
        let pi16 = h.get(&[1]).to_f64();
        assert!((pi16 - std::f64::consts::PI).abs() < 1e-3);
        assert_ne!(pi16, std::f64::consts::PI);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = NdArray::from_fn(vec![2, 6], |idx| (idx[0] * 6 + idx[1]) as f64);
        let b = a.clone().reshape(vec![3, 4]);
        assert_eq!(b.shape(), &[3, 4]);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn crop_takes_leading_corner() {
        let a = NdArray::from_fn(vec![4, 4], |i| (i[0] * 4 + i[1]) as f64);
        let c = a.crop(&[2, 3]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 2.0, 4.0, 5.0, 6.0]);
        // Cropping to the same shape is the identity.
        assert_eq!(a.crop(&[4, 4]), a);
    }

    #[test]
    #[should_panic(expected = "crop extent")]
    fn crop_rejects_growth() {
        let a = NdArray::<f64>::zeros(vec![2, 2]);
        let _ = a.crop(&[3, 2]);
    }

    #[test]
    fn pad_fills_new_positions() {
        let a = NdArray::from_fn(vec![2, 2], |i| (i[0] * 2 + i[1]) as f64 + 1.0);
        let p = a.pad_to(&[3, 3], 0.0);
        assert_eq!(p.shape(), &[3, 3]);
        assert_eq!(p.get(&[0, 0]), 1.0);
        assert_eq!(p.get(&[1, 1]), 4.0);
        assert_eq!(p.get(&[2, 2]), 0.0);
        assert_eq!(p.get(&[0, 2]), 0.0);
        // pad then crop is the identity.
        assert_eq!(p.crop(&[2, 2]), a);
    }

    #[test]
    fn zero_dimensional_array_is_a_scalar() {
        let a = NdArray::from_vec(vec![], vec![42.0f64]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(&[]), 42.0);
    }
}
