//! N-dimensional array engine for the `blazr` workspace.
//!
//! PyBlaz is built on PyTorch; this crate is the corresponding substrate
//! for the Rust reproduction:
//!
//! * [`NdArray`] — a dense, row-major, arbitrary-dimensional array with
//!   element-wise kernels and reductions. Large element-wise operations are
//!   data-parallel via Rayon (the workspace's stand-in for the paper's GPU
//!   parallelism — see DESIGN.md substitution #1).
//! * [`shape`] — index math: strides, multi-index iteration, ceil-division
//!   of shapes (the paper's `⌈s ⊘ i⌉`).
//! * [`blocking`] — the paper's blocking step (§III-A(b)): zero-padding to
//!   block multiples, block-major partitioning, merging, and cropping.
//! * [`reduce`] — *uncompressed-space* reference implementations of every
//!   operation the paper supports in compressed space (mean, variance,
//!   covariance, dot, L2 norm, cosine similarity, SSIM, exact 1-D
//!   Wasserstein distance). These are what the experiments compare against.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod reduce;
pub mod shape;

mod array;

pub use array::NdArray;
pub use blocking::Blocked;
