//! The paper's blocking step (§III-A(b)) and its inverse.
//!
//! An input array shaped `s` is zero-padded so each extent is a multiple of
//! the block shape `i`, then partitioned into `b = ⌈s ⊘ i⌉` blocks, each
//! stored contiguously (block-major) so later pipeline stages can process
//! blocks independently and in parallel. Blocking is the only exactly
//! invertible step of the compression pipeline.

use crate::shape::{advance, ceil_div, num_elements, strides_row_major, unravel};
use crate::NdArray;
use rayon::prelude::*;

/// A block-partitioned array: `num_blocks` blocks of shape `block_shape`,
/// each stored contiguously in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Blocked<T> {
    num_blocks: Vec<usize>,
    block_shape: Vec<usize>,
    block_len: usize,
    data: Vec<T>,
}

impl<T: Copy + Default + Send + Sync> Blocked<T> {
    /// Partitions `array` into blocks of `block_shape`, zero-padding
    /// (default-padding) out-of-bounds regions.
    pub fn partition(array: &NdArray<T>, block_shape: &[usize]) -> Self {
        assert_eq!(
            array.ndim(),
            block_shape.len(),
            "block shape dimensionality must match array"
        );
        let s = array.shape().to_vec();
        let num_blocks = ceil_div(&s, block_shape);
        let block_len = num_elements(block_shape);
        let n_blocks = num_elements(&num_blocks);
        let mut data = vec![T::default(); n_blocks * block_len];

        let src = array.as_slice();
        // Per-piece work should cover a few thousand elements before a
        // thread team is worth spawning.
        let min_blocks = (2048 / block_len.max(1)).max(1);
        data.par_chunks_mut(block_len)
            .with_min_len(min_blocks)
            .enumerate()
            .for_each(|(kb, chunk)| {
                gather_block(src, &s, &num_blocks, block_shape, kb, chunk);
            });
        Self {
            num_blocks,
            block_shape: block_shape.to_vec(),
            block_len,
            data,
        }
    }

    /// Creates a zero-filled blocked container with the given geometry.
    pub fn zeros(num_blocks: Vec<usize>, block_shape: Vec<usize>) -> Self {
        let block_len = num_elements(&block_shape);
        let n = num_elements(&num_blocks) * block_len;
        Self {
            num_blocks,
            block_shape,
            block_len,
            data: vec![T::default(); n],
        }
    }

    /// Merges blocks back into an array of shape `orig_shape`, cropping any
    /// padding. Inverse of [`Blocked::partition`].
    ///
    /// Parallelized over output rows (innermost-dimension lines): each row
    /// belongs to exactly one block row, so rows are gathered from the
    /// block-major buffer independently — the write side of the merge is
    /// disjoint by construction and the result is identical at any thread
    /// count.
    pub fn merge(&self, orig_shape: &[usize]) -> NdArray<T> {
        assert_eq!(orig_shape.len(), self.block_shape.len());
        assert_eq!(
            ceil_div(orig_shape, &self.block_shape),
            self.num_blocks,
            "original shape inconsistent with block arrangement"
        );
        let d = orig_shape.len();
        if d == 0 {
            return NdArray::from_vec(vec![], vec![self.data[0]]);
        }
        let inner = orig_shape[d - 1];
        let outer_shape = &orig_shape[..d - 1];
        let bs = &self.block_shape;
        let nb = &self.num_blocks;
        let block_strides = strides_row_major(bs);
        let block_len = self.block_len;
        let inner_bs = bs[d - 1];
        let data = &self.data;

        let mut out = NdArray::full(orig_shape.to_vec(), T::default());
        let min_rows = (2048 / inner.max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(inner.max(1))
            .with_min_len(min_rows)
            .enumerate()
            .for_each(|(row, line)| {
                // Which block row this output line lives in, and the
                // line's offset inside each of that row's blocks.
                let o = unravel(row, outer_shape);
                let mut kb_prefix = 0usize;
                let mut in_block = 0usize;
                for k in 0..d - 1 {
                    kb_prefix = kb_prefix * nb[k] + o[k] / bs[k];
                    in_block += (o[k] % bs[k]) * block_strides[k];
                }
                // Copy the valid prefix of each block along the row.
                for j in 0..nb[d - 1] {
                    let start = j * inner_bs;
                    if start >= inner {
                        break;
                    }
                    let n = inner_bs.min(inner - start);
                    let kb = kb_prefix * nb[d - 1] + j;
                    let src = &data[kb * block_len + in_block..kb * block_len + in_block + n];
                    line[start..start + n].copy_from_slice(src);
                }
            });
        out
    }

    /// The block arrangement `b = ⌈s ⊘ i⌉`.
    pub fn num_blocks(&self) -> &[usize] {
        &self.num_blocks
    }

    /// The block shape `i`.
    pub fn block_shape(&self) -> &[usize] {
        &self.block_shape
    }

    /// Elements per block (`Πi`).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total number of blocks (`Πb`).
    pub fn block_count(&self) -> usize {
        self.data.len().checked_div(self.block_len).unwrap_or(0)
    }

    /// Borrow of block `kb` (flat block index, row-major over `b`).
    pub fn block(&self, kb: usize) -> &[T] {
        &self.data[kb * self.block_len..(kb + 1) * self.block_len]
    }

    /// Mutable borrow of block `kb`.
    pub fn block_mut(&mut self, kb: usize) -> &mut [T] {
        &mut self.data[kb * self.block_len..(kb + 1) * self.block_len]
    }

    /// Iterator over blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.block_len)
    }

    /// Parallel iterator over mutable blocks.
    pub fn par_blocks_mut(&mut self) -> rayon::slice::ChunksMut<'_, T> {
        self.data.par_chunks_mut(self.block_len)
    }

    /// Parallel iterator over blocks.
    pub fn par_blocks(&self) -> rayon::slice::Chunks<'_, T> {
        self.data.par_chunks(self.block_len)
    }

    /// The raw block-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw block-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Copies one block out of `src` (shape `s`), default-filling padding.
///
/// `num_blocks` must equal `ceil_div(s, bs)` and `out` must hold
/// `Π bs` elements. Rows along the contiguous last axis move with
/// `copy_from_slice`; this is the per-block gather both
/// [`Blocked::partition`] and the fused codec pipeline in `blazr-core`
/// build on.
pub fn gather_block<T: Copy + Default>(
    src: &[T],
    s: &[usize],
    num_blocks: &[usize],
    bs: &[usize],
    kb: usize,
    out: &mut [T],
) {
    let d = s.len();
    if d == 0 {
        out[0] = src[0];
        return;
    }
    let kidx = unravel(kb, num_blocks);
    let base: Vec<usize> = kidx.iter().zip(bs).map(|(&k, &b)| k * b).collect();
    let strides = crate::shape::strides_row_major(s);

    // Iterate over the block's rows (all dims but the innermost), copying
    // contiguous runs along the innermost dimension.
    let row_dims = &bs[..d - 1];
    let inner = bs[d - 1];
    let valid_inner = s[d - 1].saturating_sub(base[d - 1]).min(inner);
    let mut t = vec![0usize; d - 1];
    let mut out_off = 0;
    loop {
        let mut in_bounds = true;
        let mut src_off = base[d - 1];
        for k in 0..d - 1 {
            let pos = base[k] + t[k];
            if pos >= s[k] {
                in_bounds = false;
                break;
            }
            src_off += pos * strides[k];
        }
        if in_bounds && valid_inner > 0 {
            out[out_off..out_off + valid_inner]
                .copy_from_slice(&src[src_off..src_off + valid_inner]);
            for v in &mut out[out_off + valid_inner..out_off + inner] {
                *v = T::default();
            }
        } else {
            for v in &mut out[out_off..out_off + inner] {
                *v = T::default();
            }
        }
        out_off += inner;
        if row_dims.is_empty() || !advance(&mut t, row_dims) {
            break;
        }
    }
}

/// Copies one block's in-bounds region into a row-major destination,
/// cropping padding — the write-side inverse of [`gather_block`].
///
/// `dst` is the sub-slice of the full shape-`s` array starting at flat
/// offset `dst_start` (pass the whole slice and `0` to scatter into a full
/// array). The caller must ensure the block's in-bounds region lies inside
/// `dst`; the fused decompress path in `blazr-core` exploits this to hand
/// disjoint outer-axis slabs to parallel workers. Rows along the
/// contiguous last axis move with `copy_from_slice`.
pub fn scatter_block<T: Copy>(
    block: &[T],
    s: &[usize],
    num_blocks: &[usize],
    bs: &[usize],
    kb: usize,
    dst: &mut [T],
    dst_start: usize,
) {
    let d = s.len();
    if d == 0 {
        dst[0] = block[0];
        return;
    }
    let kidx = unravel(kb, num_blocks);
    let base: Vec<usize> = kidx.iter().zip(bs).map(|(&k, &b)| k * b).collect();
    let strides = crate::shape::strides_row_major(s);

    let row_dims = &bs[..d - 1];
    let inner = bs[d - 1];
    let valid_inner = s[d - 1].saturating_sub(base[d - 1]).min(inner);
    if valid_inner == 0 {
        return; // the whole block is last-axis padding
    }
    let mut t = vec![0usize; d - 1];
    let mut blk_off = 0;
    loop {
        let mut in_bounds = true;
        let mut out_off = base[d - 1];
        for k in 0..d - 1 {
            let pos = base[k] + t[k];
            if pos >= s[k] {
                in_bounds = false;
                break;
            }
            out_off += pos * strides[k];
        }
        if in_bounds {
            dst[out_off - dst_start..out_off - dst_start + valid_inner]
                .copy_from_slice(&block[blk_off..blk_off + valid_inner]);
        }
        blk_off += inner;
        if row_dims.is_empty() || !advance(&mut t, row_dims) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::num_elements;

    fn ramp(shape: Vec<usize>) -> NdArray<f64> {
        let mut c = 0.0;
        NdArray::from_fn(shape, |_| {
            c += 1.0;
            c
        })
    }

    #[test]
    fn partition_merge_identity_exact_fit() {
        let a = ramp(vec![8, 8]);
        let blocked = Blocked::partition(&a, &[4, 4]);
        assert_eq!(blocked.block_count(), 4);
        assert_eq!(blocked.merge(&[8, 8]), a);
    }

    #[test]
    fn partition_merge_identity_with_padding() {
        for shape in [vec![5], vec![3, 7], vec![3, 5, 6], vec![2, 3, 4, 5]] {
            let bs: Vec<usize> = shape.iter().map(|_| 4).collect();
            let a = ramp(shape.clone());
            let blocked = Blocked::partition(&a, &bs);
            assert_eq!(blocked.merge(&shape), a, "shape {shape:?}");
        }
    }

    #[test]
    fn padding_is_zero() {
        let a = NdArray::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let blocked = Blocked::partition(&a, &[4]);
        assert_eq!(blocked.block(0), &[1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn block_contents_are_row_major_subarrays() {
        // 4×4 array into 2×2 blocks: block (0,1) holds columns 2..4 of rows 0..2.
        let a = NdArray::from_fn(vec![4, 4], |i| (i[0] * 4 + i[1]) as f64);
        let blocked = Blocked::partition(&a, &[2, 2]);
        assert_eq!(blocked.num_blocks(), &[2, 2]);
        assert_eq!(blocked.block(0), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(blocked.block(1), &[2.0, 3.0, 6.0, 7.0]);
        assert_eq!(blocked.block(2), &[8.0, 9.0, 12.0, 13.0]);
        assert_eq!(blocked.block(3), &[10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn paper_reshape_example() {
        // §III-A(b): input (3,224,224), blocks (4,4,4) → blocked (1,56,56,4,4,4).
        let a = NdArray::<f64>::zeros(vec![3, 224, 224]);
        let blocked = Blocked::partition(&a, &[4, 4, 4]);
        assert_eq!(blocked.num_blocks(), &[1, 56, 56]);
        assert_eq!(blocked.block_len(), 64);
        assert_eq!(
            blocked.block_count() * blocked.block_len(),
            num_elements(&[1, 56, 56, 4, 4, 4])
        );
    }

    #[test]
    fn non_hypercubic_blocks() {
        let a = ramp(vec![6, 10]);
        let blocked = Blocked::partition(&a, &[2, 8]);
        assert_eq!(blocked.num_blocks(), &[3, 2]);
        assert_eq!(blocked.merge(&[6, 10]), a);
    }

    #[test]
    fn one_dimensional_blocks() {
        let a = ramp(vec![10]);
        let blocked = Blocked::partition(&a, &[4]);
        assert_eq!(blocked.block_count(), 3);
        assert_eq!(blocked.block(2), &[9.0, 10.0, 0.0, 0.0]);
        assert_eq!(blocked.merge(&[10]), a);
    }

    #[test]
    fn many_blocks_parallel_path() {
        // Enough blocks that the partition/merge work splits into many
        // parallel pieces.
        let a = ramp(vec![64, 64]);
        let blocked = Blocked::partition(&a, &[4, 4]);
        assert_eq!(blocked.block_count(), 256);
        assert_eq!(blocked.merge(&[64, 64]), a);
    }

    #[test]
    fn scalar_array() {
        let a = NdArray::from_vec(vec![], vec![5.0f64]);
        let blocked = Blocked::partition(&a, &[]);
        assert_eq!(blocked.block_count(), 1);
        assert_eq!(blocked.merge(&[]), a);
    }

    #[test]
    fn scatter_block_inverts_gather_block() {
        for shape in [vec![10], vec![6, 10], vec![3, 5, 6]] {
            let bs: Vec<usize> = shape.iter().map(|_| 4).collect();
            let a = ramp(shape.clone());
            let nb = crate::shape::ceil_div(&shape, &bs);
            let block_len = num_elements(&bs);
            let n_blocks = num_elements(&nb);
            let mut out = NdArray::full(shape.clone(), 0.0f64);
            let mut block = vec![0.0f64; block_len];
            for kb in 0..n_blocks {
                gather_block(a.as_slice(), &shape, &nb, &bs, kb, &mut block);
                scatter_block(&block, &shape, &nb, &bs, kb, out.as_mut_slice(), 0);
            }
            assert_eq!(out, a, "shape {shape:?}");
        }
    }

    #[test]
    fn scatter_block_with_slab_offset() {
        // Scattering into an outer-axis slab (the fused decompress layout):
        // block row 1 of a 6×10 array with 4×4 blocks covers rows 4..6.
        let a = ramp(vec![6, 10]);
        let nb = crate::shape::ceil_div(&[6, 10], &[4, 4]);
        let blocked = Blocked::partition(&a, &[4, 4]);
        let slab_start = 4 * 10; // flat offset of row 4
        let mut slab = vec![0.0f64; 2 * 10];
        for j in 0..nb[1] {
            let kb = nb[1] + j; // block row 1
            scatter_block(
                blocked.block(kb),
                &[6, 10],
                &nb,
                &[4, 4],
                kb,
                &mut slab,
                slab_start,
            );
        }
        assert_eq!(&slab, &a.as_slice()[slab_start..]);
    }

    #[test]
    fn scatter_block_scalar() {
        let mut out = [0.0f64];
        scatter_block(&[7.5], &[], &[], &[], 0, &mut out, 0);
        assert_eq!(out[0], 7.5);
    }
}
