//! An SZ-style error-bounded compressor (Di & Cappello, IPDPS 2016;
//! Liang et al., CLUSTER 2018) for 1-D/2-D/3-D `f64` arrays.
//!
//! Each element is predicted with an order-1 Lorenzo predictor from its
//! already-*reconstructed* neighbors (so encoder and decoder drift
//! identically), and the residual is quantized with linear-scaling
//! quantization: `code = round(residual / (2ε))`, giving the hard
//! guarantee `|x − x̂| ≤ ε`. Codes that fit the quantization range are
//! canonical-Huffman coded; the rest are stored verbatim as IEEE doubles
//! ("outliers"). Unlike PyBlaz, the achieved ratio depends on the data —
//! which is the contrast §III draws.

use blazr_tensor::shape::{advance, ravel};
use blazr_tensor::NdArray;
use blazr_util::bits::{BitReader, BitWriter};
use blazr_util::huffman::Codebook;

/// Quantization code radius: codes span −32767..=32767; the symbol 0 is
/// reserved for outliers, so the alphabet has 65536 entries.
const CODE_RADIUS: i64 = 32767;
const OUTLIER: u32 = 0;
const ALPHABET: usize = 2 * CODE_RADIUS as usize + 2;

/// The SZ-style codec configured with an absolute error bound ε.
#[derive(Debug, Clone, Copy)]
pub struct Szoid {
    /// Point-wise absolute error bound.
    pub error_bound: f64,
}

/// Compression result with accounting the benches report.
#[derive(Debug, Clone)]
pub struct SzoidStats {
    /// Encoded size in bytes.
    pub compressed_bytes: usize,
    /// Achieved ratio vs FP64.
    pub ratio: f64,
    /// Fraction of elements stored as raw outliers.
    pub outlier_fraction: f64,
}

impl Szoid {
    /// Creates a codec with absolute error bound `error_bound` (> 0).
    pub fn new(error_bound: f64) -> Self {
        assert!(
            error_bound > 0.0 && error_bound.is_finite(),
            "error bound must be positive and finite"
        );
        Self { error_bound }
    }

    /// Compresses an array, returning the stream and accounting stats.
    pub fn compress(&self, input: &NdArray<f64>) -> (Vec<u8>, SzoidStats) {
        let d = input.ndim();
        assert!((1..=3).contains(&d), "szoid supports 1..=3 dimensions");
        let shape = input.shape().to_vec();
        let n = input.len();
        let eps2 = 2.0 * self.error_bound;

        // Pass 1: predict, quantize, collect codes and outliers, and build
        // the reconstruction the predictor chains on.
        let mut recon = vec![0.0f64; n];
        let mut codes = Vec::with_capacity(n);
        let mut outliers = Vec::new();
        let mut idx = vec![0usize; d];
        let src = input.as_slice();
        for (flat, &x) in src.iter().enumerate() {
            let pred = lorenzo_predict(&recon, &shape, &idx);
            let code = ((x - pred) / eps2).round();
            let q = if code.is_finite() && code.abs() <= CODE_RADIUS as f64 {
                code as i64
            } else {
                i64::MAX // force outlier
            };
            if q != i64::MAX {
                let xr = pred + q as f64 * eps2;
                if (x - xr).abs() <= self.error_bound {
                    recon[flat] = xr;
                    codes.push((q + CODE_RADIUS + 1) as u32); // 1..=65535
                    advance(&mut idx, &shape);
                    continue;
                }
            }
            recon[flat] = x;
            codes.push(OUTLIER);
            outliers.push(x);
            advance(&mut idx, &shape);
        }

        // Pass 2: entropy-code the quantization codes.
        let mut freqs = vec![0u64; ALPHABET];
        for &c in &codes {
            freqs[c as usize] += 1;
        }
        let book = Codebook::from_frequencies(&freqs);

        let mut w = BitWriter::new();
        w.write_bits(d as u64, 2);
        for &e in &shape {
            w.write_bits(e as u64, 64);
        }
        w.write_bits(self.error_bound.to_bits(), 64);
        // Codebook: count of coded symbols, then (symbol, length) pairs.
        let used: Vec<u32> = (0..ALPHABET as u32)
            .filter(|&s| book.lengths[s as usize] > 0)
            .collect();
        w.write_bits(used.len() as u64, 32);
        for &s in &used {
            w.write_bits(s as u64, 17);
            w.write_bits(book.lengths[s as usize] as u64, 6);
        }
        w.write_bits(outliers.len() as u64, 64);
        for &o in &outliers {
            w.write_bits(o.to_bits(), 64);
        }
        book.encode(&codes, &mut w);
        let bytes = w.into_bytes();
        let stats = SzoidStats {
            compressed_bytes: bytes.len(),
            ratio: (n * 8) as f64 / bytes.len() as f64,
            outlier_fraction: outliers.len() as f64 / n.max(1) as f64,
        };
        (bytes, stats)
    }

    /// Decompresses a stream produced by [`Szoid::compress`].
    pub fn decompress(bytes: &[u8]) -> Option<NdArray<f64>> {
        let mut r = BitReader::new(bytes);
        let d = r.read_bits(2)? as usize;
        if !(1..=3).contains(&d) {
            return None;
        }
        let mut shape = Vec::with_capacity(d);
        for _ in 0..d {
            shape.push(r.read_u64()? as usize);
        }
        // Untrusted header: overflow-checked element count, bounded, and
        // the stream must plausibly hold that many symbols (≥1 bit each).
        let n = blazr_tensor::shape::checked_num_elements(&shape)?;
        if n > (1usize << 34) || (n as u64) > (bytes.len() as u64) * 8 {
            return None;
        }
        let eps = f64::from_bits(r.read_u64()?);
        let eps2 = 2.0 * eps;
        let used_count = r.read_bits(32)? as usize;
        if used_count > ALPHABET {
            return None;
        }
        let mut lengths = vec![0u32; ALPHABET];
        for _ in 0..used_count {
            let sym = r.read_bits(17)? as usize;
            let len = r.read_bits(6)? as u32;
            if sym >= ALPHABET {
                return None;
            }
            lengths[sym] = len;
        }
        let book = Codebook::from_lengths(lengths);
        let outlier_count = r.read_u64()? as usize;
        if outlier_count > n {
            return None;
        }
        let mut outliers = Vec::with_capacity(outlier_count);
        for _ in 0..outlier_count {
            outliers.push(f64::from_bits(r.read_u64()?));
        }
        let codes = book.decode(&mut r, n)?;

        let mut recon = vec![0.0f64; n];
        let mut idx = vec![0usize; d];
        let mut next_outlier = 0usize;
        for (flat, &code) in codes.iter().enumerate() {
            if code == OUTLIER {
                if next_outlier >= outliers.len() {
                    return None;
                }
                recon[flat] = outliers[next_outlier];
                next_outlier += 1;
            } else {
                let q = code as i64 - CODE_RADIUS - 1;
                let pred = lorenzo_predict(&recon, &shape, &idx);
                recon[flat] = pred + q as f64 * eps2;
            }
            advance(&mut idx, &shape);
        }
        Some(NdArray::from_vec(shape, recon))
    }
}

/// Order-1 Lorenzo prediction from already-reconstructed neighbors, by
/// inclusion–exclusion over the corner hyper-box (neighbors with any index
/// before the current one in each dimension; out-of-range neighbors are 0).
fn lorenzo_predict(recon: &[f64], shape: &[usize], idx: &[usize]) -> f64 {
    let d = shape.len();
    let mut pred = 0.0;
    // Iterate over non-empty subsets of dimensions to offset by −1.
    for subset in 1u32..(1 << d) {
        let mut neighbor = [0usize; 3];
        let mut ok = true;
        for (k, nb) in neighbor.iter_mut().enumerate().take(d) {
            if subset & (1 << k) != 0 {
                if idx[k] == 0 {
                    ok = false;
                    break;
                }
                *nb = idx[k] - 1;
            } else {
                *nb = idx[k];
            }
        }
        if !ok {
            continue;
        }
        let sign = if subset.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        pred += sign * recon[ravel(&neighbor[..d], shape)];
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn smooth_3d(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let (a, b, c) = (rng.uniform(), rng.uniform(), rng.uniform());
        NdArray::from_fn(shape, |i| {
            let x = i[0] as f64 * 0.2 + a;
            let y = i.get(1).map_or(0.0, |&v| v as f64 * 0.15) + b;
            let z = i.get(2).map_or(0.0, |&v| v as f64 * 0.1) + c;
            x.sin() + y.cos() + (z * 0.5).sin()
        })
    }

    fn check_bound(orig: &NdArray<f64>, eps: f64) -> SzoidStats {
        let codec = Szoid::new(eps);
        let (bytes, stats) = codec.compress(orig);
        let back = Szoid::decompress(&bytes).expect("valid stream");
        assert_eq!(back.shape(), orig.shape());
        for (i, (&x, &y)) in orig.as_slice().iter().zip(back.as_slice()).enumerate() {
            assert!(
                (x - y).abs() <= eps * (1.0 + 1e-12),
                "element {i}: |{x} − {y}| > {eps}"
            );
        }
        stats
    }

    #[test]
    fn error_bound_is_guaranteed_smooth() {
        for eps in [1e-1, 1e-3, 1e-6] {
            check_bound(&smooth_3d(vec![12, 10, 8], 1), eps);
        }
    }

    #[test]
    fn error_bound_is_guaranteed_noise() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let a = NdArray::from_fn(vec![40, 40], |_| rng.uniform_in(-100.0, 100.0));
        check_bound(&a, 0.5);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let stats = check_bound(&smooth_3d(vec![32, 32, 16], 3), 1e-3);
        assert!(stats.ratio > 8.0, "ratio {}", stats.ratio);
        assert!(stats.outlier_fraction < 0.01);
    }

    #[test]
    fn looser_bound_gives_higher_ratio() {
        let a = smooth_3d(vec![24, 24, 12], 4);
        let loose = Szoid::new(1e-2).compress(&a).1.ratio;
        let tight = Szoid::new(1e-5).compress(&a).1.ratio;
        assert!(loose > tight, "loose {loose} should beat tight {tight}");
    }

    #[test]
    fn ratio_depends_on_data_unlike_pyblaz() {
        // The §III contrast: SZ's ratio is data-dependent.
        let smooth = smooth_3d(vec![32, 32], 5);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let noisy = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(-1.0, 1.0));
        let rs = Szoid::new(1e-4).compress(&smooth).1.ratio;
        let rn = Szoid::new(1e-4).compress(&noisy).1.ratio;
        assert!(rs > rn, "smooth {rs} vs noisy {rn}");
    }

    #[test]
    fn constants_compress_extremely_well() {
        // Huffman floors at 1 bit/symbol, so the ceiling is ~64× minus
        // header; anything above 50 means prediction hit every element.
        let a = NdArray::full(vec![64, 64], 3.25f64);
        let stats = check_bound(&a, 1e-9);
        assert!(stats.ratio > 50.0, "ratio {}", stats.ratio);
    }

    #[test]
    fn huge_values_become_outliers_but_stay_exact() {
        let mut a = smooth_3d(vec![10, 10], 7);
        a.set(&[3, 3], 1e250);
        a.set(&[7, 2], -1e250);
        let stats = check_bound(&a, 1e-3);
        assert!(stats.outlier_fraction > 0.0);
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut acc = 0.0;
        let a = NdArray::from_fn(vec![500], |_| {
            acc += rng.uniform_in(-0.1, 0.1);
            acc
        });
        check_bound(&a, 1e-4);
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let a = smooth_3d(vec![16, 16], 9);
        let (bytes, _) = Szoid::new(1e-3).compress(&a);
        assert!(Szoid::decompress(&bytes[..10]).is_none());
    }

    #[test]
    fn lorenzo_predicts_linear_fields_exactly() {
        // A bilinear field is exactly predicted by the order-1 Lorenzo
        // predictor away from the boundary.
        let shape = vec![8, 8];
        let a = NdArray::from_fn(shape.clone(), |i| 2.0 * i[0] as f64 + 3.0 * i[1] as f64);
        let recon: Vec<f64> = a.as_slice().to_vec();
        for r in 1..8 {
            for c in 1..8 {
                let p = lorenzo_predict(&recon, &shape, &[r, c]);
                assert!((p - a.get(&[r, c])).abs() < 1e-12);
            }
        }
    }
}
