//! A ZFP-style fixed-rate compressor for 1-D/2-D/3-D `f64` arrays
//! (Lindstrom, *Fixed-Rate Compressed Floating-Point Arrays*, TVCG 2014).
//!
//! Pipeline per 4^d block:
//!
//! 1. **Block floating point**: all values share the exponent of the
//!    largest magnitude and become two's-complement fixed-point `i64`s.
//! 2. **Decorrelating lifting transform** along each dimension
//!    ([`lift`]) — ZFP's fast near-orthogonal integer transform.
//! 3. **Total sequency reorder**: coefficients sorted by the sum of their
//!    frequency indices, so energy concentrates at the stream's front.
//! 4. **Negabinary mapping** ([`blazr_util::negabinary`]) so magnitude
//!    ordering survives sign removal.
//! 5. **Embedded bit-plane coding** ([`embedded`]) with group testing,
//!    truncated at an exact per-block bit budget — this is what makes the
//!    rate *fixed*: `rate × block_size` bits per block, always.
//!
//! The paper's Fig. 3 compares PyBlaz's compression/decompression times
//! against CUDA ZFP at rates giving ratios ≈ 8, 4, 2 (8/16/32 bits per
//! FP64 scalar); the `fig3_zfp` bench binary regenerates that comparison
//! against this codec.

pub mod embedded;
pub mod lift;

use blazr_tensor::blocking::Blocked;
use blazr_tensor::NdArray;
use blazr_util::bits::{BitReader, BitWriter};
use blazr_util::negabinary::{from_negabinary, to_negabinary};

/// Block edge length (4 in every dimension, as in ZFP).
pub const BLOCK_EDGE: usize = 4;

/// Fixed-point scaling target: values are normalized so the largest
/// magnitude lands just below 2^(Q+1). Two guard bits are left above that:
/// the lifting transform's intermediates can reach slightly more than
/// twice the input magnitude (`w += y` after two difference steps), so
/// Q = 60 keeps every intermediate strictly inside `i64` for adversarial
/// sign patterns — a bound property-tested in `tests/proptest_invariants`.
const Q: i32 = 60;

/// Bits used to store each block's common exponent (11-bit biased f64
/// exponent plus a sign of its own fits comfortably in 12).
const EBITS: u32 = 12;
const EBIAS: i64 = 1075;

/// A fixed-rate ZFP-style codec configuration.
#[derive(Debug, Clone, Copy)]
pub struct Zfpoid {
    /// Bits per value. Block budget = `rate × 4^d`.
    pub rate: u32,
}

impl Zfpoid {
    /// Creates a codec with the given rate (bits per value). From FP64
    /// input, ratio ≈ `64 / rate`.
    pub fn fixed_rate(rate: u32) -> Self {
        assert!((1..=64).contains(&rate), "rate must be in 1..=64");
        Self { rate }
    }

    /// Per-block bit budget for dimensionality `d`.
    pub fn block_bits(&self, d: usize) -> usize {
        self.rate as usize * BLOCK_EDGE.pow(d as u32)
    }

    /// Compresses a 1-, 2-, or 3-D array.
    pub fn compress(&self, input: &NdArray<f64>) -> Vec<u8> {
        let d = input.ndim();
        assert!((1..=3).contains(&d), "zfpoid supports 1..=3 dimensions");
        let block_shape = vec![BLOCK_EDGE; d];
        let blocked = Blocked::partition(input, &block_shape);
        let size = blocked.block_len();
        let perm = sequency_order(d);
        let budget = self.block_bits(d);

        let mut w = BitWriter::new();
        // Header: dimensionality (2 bits), rate (7 bits), extents (64 each).
        w.write_bits(d as u64, 2);
        w.write_bits(self.rate as u64, 7);
        for &e in input.shape() {
            w.write_bits(e as u64, 64);
        }

        let mut ints = vec![0i64; size];
        let mut planes = vec![0u64; size];
        for kb in 0..blocked.block_count() {
            let start = w.bit_len();
            let block = blocked.block(kb);
            let e = block_exponent(block);
            if let Some(e) = e {
                w.write_bit(true);
                w.write_bits((e as i64 + EBIAS) as u64, EBITS);
                // Block floating point. The exponent difference can exceed
                // f64's range for subnormal-scale blocks (Q − e up to
                // ~1134), so apply the power of two in two exact halves.
                let (s1, s2) = split_pow2(Q - e);
                for (o, &x) in ints.iter_mut().zip(block) {
                    *o = (x * s1 * s2).round() as i64;
                }
                lift::forward(&mut ints, d);
                for (slot, &src) in perm.iter().enumerate() {
                    planes[slot] = to_negabinary(ints[src]);
                }
                embedded::encode(&planes, budget.saturating_sub(1 + EBITS as usize), &mut w);
            } else {
                w.write_bit(false); // all-zero block
            }
            // Fixed rate: pad the block to exactly `budget` bits.
            let used = w.bit_len() - start;
            debug_assert!(used <= budget, "budget overrun: {used} > {budget}");
            for _ in used..budget {
                w.write_bit(false);
            }
        }
        w.into_bytes()
    }

    /// Decompresses a stream produced by [`Zfpoid::compress`].
    pub fn decompress(bytes: &[u8]) -> Option<NdArray<f64>> {
        let mut r = BitReader::new(bytes);
        let d = r.read_bits(2)? as usize;
        if !(1..=3).contains(&d) {
            return None;
        }
        let rate = r.read_bits(7)? as u32;
        if !(1..=64).contains(&rate) {
            return None; // malformed header, not a caller bug
        }
        let codec = Zfpoid::fixed_rate(rate);
        let mut shape = Vec::with_capacity(d);
        for _ in 0..d {
            shape.push(r.read_u64()? as usize);
        }
        // Untrusted header: the claimed payload must fit the actual
        // stream before any allocation happens.
        let n = blazr_tensor::shape::checked_num_elements(&shape)?;
        if n > (1 << 40) {
            return None;
        }
        let expected_bits = codec.compressed_bits(&shape);
        if (bytes.len() as u64) * 8 < expected_bits {
            return None;
        }
        let block_shape = vec![BLOCK_EDGE; d];
        let num_blocks: Vec<usize> = shape.iter().map(|&s| s.div_ceil(BLOCK_EDGE)).collect();
        let mut blocked = Blocked::<f64>::zeros(num_blocks, block_shape);
        let size = blocked.block_len();
        let perm = sequency_order(d);
        let budget = codec.block_bits(d);

        let mut planes = vec![0u64; size];
        let mut ints = vec![0i64; size];
        for kb in 0..blocked.block_count() {
            let start = r.bit_pos();
            let nonzero = r.read_bit()?;
            if nonzero {
                let e = r.read_bits(EBITS)? as i64 - EBIAS;
                embedded::decode(
                    &mut planes,
                    budget.saturating_sub(1 + EBITS as usize),
                    &mut r,
                )?;
                for (slot, &src) in perm.iter().enumerate() {
                    ints[src] = from_negabinary(planes[slot]);
                }
                lift::inverse(&mut ints, d);
                let (s1, s2) = split_pow2(e as i32 - Q);
                let out = blocked.block_mut(kb);
                for (o, &v) in out.iter_mut().zip(&ints) {
                    *o = v as f64 * s1 * s2;
                }
            }
            // Skip fixed-rate padding.
            let used = r.bit_pos() - start;
            if used > budget {
                return None;
            }
            r.skip(budget - used);
        }
        Some(blocked.merge(&shape))
    }

    /// Exact compressed size in bits for an input of `shape`.
    pub fn compressed_bits(&self, shape: &[usize]) -> u64 {
        let d = shape.len();
        let blocks: u64 = shape
            .iter()
            .map(|&s| s.div_ceil(BLOCK_EDGE) as u64)
            .product();
        2 + 7 + 64 * d as u64 + blocks * self.block_bits(d) as u64
    }
}

/// Splits `2^k` into two finite factors `(2^⌈k/2⌉, 2^⌊k/2⌋)` so exponent
/// differences beyond f64's single-value range (|k| up to ~1134 for
/// subnormal blocks) can be applied as two exact multiplications.
fn split_pow2(k: i32) -> (f64, f64) {
    let half = k / 2;
    (2f64.powi(k - half), 2f64.powi(half))
}

/// The largest binary exponent in the block, or `None` if all zero.
fn block_exponent(block: &[f64]) -> Option<i32> {
    let max = block.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max == 0.0 || !max.is_finite() {
        return None;
    }
    // frexp-style exponent: max ∈ [2^(e), 2^(e+1)).
    Some(max.log2().floor() as i32)
}

/// Flat coefficient order sorted by total frequency (sum of per-dimension
/// indices), ties broken row-major — ZFP's total sequency ordering.
pub fn sequency_order(d: usize) -> Vec<usize> {
    let n = BLOCK_EDGE.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let sum_of = |flat: usize| -> usize {
        let mut rem = flat;
        let mut total = 0;
        for _ in 0..d {
            total += rem % BLOCK_EDGE;
            rem /= BLOCK_EDGE;
        }
        total
    };
    idx.sort_by_key(|&i| (sum_of(i), i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;
    use blazr_util::stats::rms_diff;

    fn gradient(shape: Vec<usize>) -> NdArray<f64> {
        // The §IV-E test array: constant gradient from 0 to 1.
        let denom: usize = shape.iter().map(|s| s - 1).sum::<usize>().max(1);
        NdArray::from_fn(shape, |i| i.iter().sum::<usize>() as f64 / denom as f64)
    }

    fn random(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn sequency_order_is_a_permutation() {
        for d in 1..=3 {
            let p = sequency_order(d);
            let mut seen = vec![false; p.len()];
            for &i in &p {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(p[0], 0, "DC first");
        }
    }

    #[test]
    fn rate_is_exactly_honored() {
        for rate in [8, 16, 32] {
            let a = random(vec![20, 20], 1);
            let codec = Zfpoid::fixed_rate(rate);
            let bytes = codec.compress(&a);
            let expect_bits = codec.compressed_bits(&[20, 20]);
            assert_eq!(
                bytes.len(),
                (expect_bits as usize).div_ceil(8),
                "rate {rate}"
            );
        }
    }

    #[test]
    fn roundtrip_error_decreases_with_rate() {
        let a = gradient(vec![32, 32]);
        let mut last = f64::INFINITY;
        for rate in [4, 8, 16, 32] {
            let codec = Zfpoid::fixed_rate(rate);
            let d = Zfpoid::decompress(&codec.compress(&a)).unwrap();
            let err = rms_diff(a.as_slice(), d.as_slice());
            assert!(err < last || err == 0.0, "rate {rate}: err {err} !< {last}");
            last = err;
        }
        assert!(last < 1e-6, "rate-32 error should be tiny, got {last}");
    }

    #[test]
    fn high_rate_is_near_lossless() {
        let a = random(vec![16, 16], 2);
        let codec = Zfpoid::fixed_rate(64);
        let d = Zfpoid::decompress(&codec.compress(&a)).unwrap();
        let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        // The lifting transform's integer shifts lose a few low-order bits;
        // with Q=61 fixed point that is ~1e-16 relative.
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn all_dimensionalities_roundtrip() {
        for (shape, seed) in [(vec![64], 3u64), (vec![12, 20], 4), (vec![8, 12, 8], 5)] {
            let a = random(shape.clone(), seed);
            let codec = Zfpoid::fixed_rate(24);
            let d = Zfpoid::decompress(&codec.compress(&a)).unwrap();
            assert_eq!(d.shape(), a.shape());
            let err = rms_diff(a.as_slice(), d.as_slice());
            assert!(err < 1e-3, "shape {shape:?} err {err}");
        }
    }

    #[test]
    fn zero_array_roundtrips_exactly() {
        let a = NdArray::<f64>::zeros(vec![16, 16]);
        let codec = Zfpoid::fixed_rate(8);
        let d = Zfpoid::decompress(&codec.compress(&a)).unwrap();
        assert!(d.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn smooth_data_beats_noise_at_same_rate() {
        let smooth = gradient(vec![32, 32]);
        let noise = random(vec![32, 32], 6);
        let codec = Zfpoid::fixed_rate(8);
        let es = rms_diff(
            smooth.as_slice(),
            Zfpoid::decompress(&codec.compress(&smooth))
                .unwrap()
                .as_slice(),
        ) / blazr_tensor::reduce::std_dev(&smooth);
        let en = rms_diff(
            noise.as_slice(),
            Zfpoid::decompress(&codec.compress(&noise))
                .unwrap()
                .as_slice(),
        ) / blazr_tensor::reduce::std_dev(&noise);
        assert!(es < en, "smooth rel {es} vs noise rel {en}");
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let a = random(vec![16, 16], 7);
        let bytes = Zfpoid::fixed_rate(16).compress(&a);
        assert!(Zfpoid::decompress(&bytes[..4]).is_none());
    }

    #[test]
    fn padding_shapes_roundtrip() {
        let a = random(vec![10, 7], 8);
        let codec = Zfpoid::fixed_rate(32);
        let d = Zfpoid::decompress(&codec.compress(&a)).unwrap();
        assert_eq!(d.shape(), &[10, 7]);
        let err = rms_diff(a.as_slice(), d.as_slice());
        assert!(err < 1e-4, "err {err}");
    }
}
