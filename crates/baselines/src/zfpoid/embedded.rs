//! ZFP's embedded bit-plane coder with group testing.
//!
//! Coefficients (in negabinary, sequency order) are emitted one bit plane
//! at a time from most to least significant. Within a plane, coefficients
//! already known to be significant send their bit verbatim; the remainder
//! is run-length coded: a group-test bit says whether *any* remaining
//! coefficient has this plane's bit set, and if so, bits follow until the
//! first set one. Truncating the stream at any point yields a valid
//! (coarser) reconstruction — which is how the fixed-rate budget works.

use blazr_util::bits::{BitReader, BitWriter};

/// Number of bit planes in a negabinary `u64` coefficient.
const PLANES: u32 = 64;

/// Budget-tracking writer: refuses writes past `budget` bits.
struct Budget {
    remaining: usize,
}

impl Budget {
    fn take(&mut self) -> bool {
        if self.remaining == 0 {
            false
        } else {
            self.remaining -= 1;
            true
        }
    }
}

/// Encodes `coeffs` (negabinary, at most 64) into `w`, spending at most
/// `budget` bits.
pub fn encode(coeffs: &[u64], budget: usize, w: &mut BitWriter) {
    let size = coeffs.len();
    assert!(size <= 64, "plane gathering uses a u64 per plane");
    let mut bits = Budget { remaining: budget };
    let mut n = 0usize; // coefficients known significant so far
    for k in (0..PLANES).rev() {
        // Gather plane k: bit i of x = bit k of coefficient i.
        let mut x = 0u64;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= ((c >> k) & 1) << i;
        }
        // Verbatim bits for known-significant coefficients.
        let mut i = 0;
        while i < n {
            if !bits.take() {
                return;
            }
            w.write_bit(x & 1 == 1);
            x >>= 1;
            i += 1;
        }
        // Group-tested remainder (mirrors ZFP's encode_ints step 3).
        loop {
            if n >= size {
                break;
            }
            if !bits.take() {
                return;
            }
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break;
            }
            // Inner: emit zero bits (consuming them) until the next set bit
            // or the penultimate position; the set bit itself — written or
            // implied at the last position — is consumed by the outer
            // advance below.
            while n < size - 1 {
                if !bits.take() {
                    return;
                }
                let b = x & 1 == 1;
                w.write_bit(b);
                if b {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            // Outer advance: consume the significant coefficient.
            x >>= 1;
            n += 1;
        }
    }
}

/// Decodes into `coeffs` (cleared first), consuming at most `budget` bits.
/// Returns `None` if the reader runs out of underlying data (a malformed
/// stream; budget exhaustion is normal and returns `Some`).
pub fn decode(coeffs: &mut [u64], budget: usize, r: &mut BitReader<'_>) -> Option<()> {
    let size = coeffs.len();
    coeffs.iter_mut().for_each(|c| *c = 0);
    let mut bits = Budget { remaining: budget };
    let mut n = 0usize;
    for k in (0..PLANES).rev() {
        let mut x = 0u64;
        // Verbatim bits.
        let mut i = 0;
        while i < n {
            if !bits.take() {
                return Some(());
            }
            if r.read_bit()? {
                x |= 1 << i;
            }
            i += 1;
        }
        // Group-tested remainder (mirrors ZFP's decode_ints).
        loop {
            if n >= size {
                break;
            }
            if !bits.take() {
                deposit(coeffs, x, k);
                return Some(());
            }
            let any = r.read_bit()?;
            if !any {
                break;
            }
            // Inner: skip zero bits up to the penultimate position.
            while n < size - 1 {
                if !bits.take() {
                    deposit(coeffs, x, k);
                    return Some(());
                }
                if r.read_bit()? {
                    break;
                }
                n += 1;
            }
            // Outer advance: the significant coefficient (read or implied
            // at the last position) gets its plane bit.
            x |= 1 << n;
            n += 1;
        }
        deposit(coeffs, x, k);
    }
    Some(())
}

#[inline]
fn deposit(coeffs: &mut [u64], x: u64, k: u32) {
    let mut x = x;
    let mut i = 0;
    while x != 0 {
        if x & 1 == 1 {
            coeffs[i] |= 1 << k;
        }
        x >>= 1;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn roundtrip(coeffs: &[u64], budget: usize) -> Vec<u64> {
        let mut w = BitWriter::new();
        encode(coeffs, budget, &mut w);
        assert!(w.bit_len() <= budget, "budget violated");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; coeffs.len()];
        decode(&mut out, budget, &mut r).expect("stream intact");
        out
    }

    #[test]
    fn lossless_with_ample_budget() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..50 {
            let coeffs: Vec<u64> = (0..16).map(|_| rng.next_u64() >> rng.below(40)).collect();
            let out = roundtrip(&coeffs, 1 << 16);
            assert_eq!(out, coeffs);
        }
    }

    #[test]
    fn zero_coefficients_cost_little() {
        let coeffs = vec![0u64; 16];
        let mut w = BitWriter::new();
        encode(&coeffs, 1 << 16, &mut w);
        // One group-test zero bit per plane.
        assert_eq!(w.bit_len(), 64);
    }

    #[test]
    fn truncation_degrades_gracefully() {
        // With a tight budget the decoded value must match the encoded one
        // in its high bit planes — never exceed it in garbage.
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let coeffs: Vec<u64> = (0..16).map(|_| rng.next_u64() >> 4).collect();
        let full = roundtrip(&coeffs, 1 << 16);
        assert_eq!(full, coeffs);
        let mut last_err = u64::MAX;
        for budget in [64, 128, 256, 512, 1024, 4096] {
            let out = roundtrip(&coeffs, budget);
            let err: u64 = coeffs
                .iter()
                .zip(&out)
                .map(|(a, b)| a.max(b) - a.min(b))
                .max()
                .unwrap();
            assert!(err <= last_err, "budget {budget}: {err} > {last_err}");
            last_err = err;
        }
    }

    #[test]
    fn single_significant_coefficient() {
        let mut coeffs = vec![0u64; 16];
        coeffs[7] = 0xDEAD_BEEF;
        let out = roundtrip(&coeffs, 1 << 14);
        assert_eq!(out, coeffs);
    }

    #[test]
    fn last_coefficient_implied_bit() {
        // Only the final coefficient significant: exercises the size−1
        // implied-bit path.
        let mut coeffs = vec![0u64; 16];
        coeffs[15] = 1 << 40;
        let out = roundtrip(&coeffs, 1 << 14);
        assert_eq!(out, coeffs);
    }

    #[test]
    fn all_ones_roundtrip() {
        let coeffs = vec![u64::MAX >> 1; 16];
        let out = roundtrip(&coeffs, 1 << 16);
        assert_eq!(out, coeffs);
    }

    #[test]
    fn zero_budget_decodes_to_zero() {
        let coeffs: Vec<u64> = (0..8).map(|i| i * 1000 + 1).collect();
        let out = roundtrip(&coeffs, 0);
        assert!(out.iter().all(|&c| c == 0));
    }
}
