//! ZFP's integer lifting transform.
//!
//! The forward transform is the fast, near-orthogonal integer
//! approximation of the matrix
//!
//! ```text
//!        ( 4  4  4  4)            ( 4  6 -4 -1)
//! 1/16 · ( 5  1 -1 -5)     1/4 ·  ( 4  2  4  5)   (inverse)
//!        (-4  4  4 -4)            ( 4 -2  4 -5)
//!        (-2  6 -6  2)            ( 4 -6 -4  1)
//! ```
//!
//! applied along each dimension of a 4^d block with lifting steps only
//! (adds and arithmetic shifts). The right shifts discard low-order bits,
//! so `inverse(forward(x))` is not bit-exact — the reconstruction error is
//! a few integer ULPs, far below the bit-plane truncation loss at any
//! practical rate (verified in tests).

use super::BLOCK_EDGE;

/// Forward lift of 4 elements at stride `s` starting at `off`.
#[inline]
fn fwd4(p: &mut [i64], off: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[off], p[off + s], p[off + 2 * s], p[off + 3 * s]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[off] = x;
    p[off + s] = y;
    p[off + 2 * s] = z;
    p[off + 3 * s] = w;
}

/// Inverse lift of 4 elements at stride `s` starting at `off`.
#[inline]
fn inv4(p: &mut [i64], off: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[off], p[off + s], p[off + 2 * s], p[off + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[off] = x;
    p[off + s] = y;
    p[off + 2 * s] = z;
    p[off + 3 * s] = w;
}

/// Applies the forward transform along every dimension of a 4^d block
/// (row-major, `d` ∈ 1..=3).
pub fn forward(block: &mut [i64], d: usize) {
    match d {
        1 => fwd4(block, 0, 1),
        2 => {
            // Rows (contiguous), then columns.
            for r in 0..BLOCK_EDGE {
                fwd4(block, r * BLOCK_EDGE, 1);
            }
            for c in 0..BLOCK_EDGE {
                fwd4(block, c, BLOCK_EDGE);
            }
        }
        3 => {
            let e = BLOCK_EDGE;
            for z in 0..e {
                for y in 0..e {
                    fwd4(block, z * e * e + y * e, 1);
                }
            }
            for z in 0..e {
                for x in 0..e {
                    fwd4(block, z * e * e + x, e);
                }
            }
            for y in 0..e {
                for x in 0..e {
                    fwd4(block, y * e + x, e * e);
                }
            }
        }
        _ => panic!("unsupported dimensionality {d}"),
    }
}

/// Applies the inverse transform (dimensions in reverse order).
pub fn inverse(block: &mut [i64], d: usize) {
    match d {
        1 => inv4(block, 0, 1),
        2 => {
            for c in 0..BLOCK_EDGE {
                inv4(block, c, BLOCK_EDGE);
            }
            for r in 0..BLOCK_EDGE {
                inv4(block, r * BLOCK_EDGE, 1);
            }
        }
        3 => {
            let e = BLOCK_EDGE;
            for y in 0..e {
                for x in 0..e {
                    inv4(block, y * e + x, e * e);
                }
            }
            for z in 0..e {
                for x in 0..e {
                    inv4(block, z * e * e + x, e);
                }
            }
            for z in 0..e {
                for y in 0..e {
                    inv4(block, z * e * e + y * e, 1);
                }
            }
        }
        _ => panic!("unsupported dimensionality {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn roundtrip_max_err(d: usize, seed: u64, magnitude: i64) -> i64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = BLOCK_EDGE.pow(d as u32);
        let orig: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64 % magnitude).collect();
        let mut block = orig.clone();
        forward(&mut block, d);
        inverse(&mut block, d);
        orig.iter()
            .zip(&block)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap()
    }

    #[test]
    fn roundtrip_error_is_a_few_ulps() {
        for d in 1..=3 {
            for seed in 0..20 {
                let err = roundtrip_max_err(d, seed, 1 << 40);
                // Shifts lose a few low-order bits per pass (up to 3 passes
                // per dimension in 3-D): bounded by a few dozen integer ULPs
                // against magnitudes of 2^40.
                assert!(err <= 64, "d={d} seed={seed}: err {err}");
            }
        }
    }

    #[test]
    fn constant_block_concentrates_into_first_coefficient() {
        for d in 1..=3usize {
            let n = BLOCK_EDGE.pow(d as u32);
            let mut block = vec![1000i64; n];
            forward(&mut block, d);
            assert_eq!(block[0], 1000, "DC passes constants through (d={d})");
            for (i, &c) in block.iter().enumerate().skip(1) {
                assert!(c.abs() <= 1, "coefficient {i} = {c} should be ~0");
            }
        }
    }

    #[test]
    fn forward_reduces_dynamic_range_of_smooth_data() {
        // A linear ramp should compact into low-order coefficients.
        let mut block: Vec<i64> = (0..16).map(|i| (i as i64) << 30).collect();
        forward(&mut block, 2);
        let first: i64 = block[..4].iter().map(|c| c.abs()).sum();
        let rest: i64 = block[4..].iter().map(|c| c.abs()).sum();
        assert!(first > rest, "energy should concentrate: {first} vs {rest}");
    }

    #[test]
    fn magnitude_growth_is_bounded() {
        // The transform must not overflow the Q-format headroom: outputs
        // stay within a small factor of inputs.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for d in 1..=3usize {
            let n = BLOCK_EDGE.pow(d as u32);
            let bound = 1i64 << 61;
            let mut block: Vec<i64> = (0..n).map(|_| (rng.next_u64() as i64) % bound).collect();
            forward(&mut block, d);
            for &c in &block {
                assert!(c.abs() <= i64::MAX / 2, "headroom exhausted: {c}");
            }
        }
    }
}
