//! Blaz (Martel, BDCAT 2022) for 2-D `f64` arrays, as described in the
//! paper's §II-A(c): 8×8 blocks; the first element of each block is stored
//! and the rest are differentiated against their previous element; a
//! block-wise DCT follows; the biggest coefficient per block is stored and
//! the rest are binned into 255 bins (int8 −127..127); finally the 6×6
//! square in the higher-index corner is pruned and the remaining 28
//! indices flattened.
//!
//! Blaz supports a handful of compressed-space operations; the two the
//! paper benchmarks (Fig. 2) are element-wise [`BlazCompressed::add`] and
//! [`BlazCompressed::mul_scalar`].
//!
//! Everything here is intentionally **single-threaded**: Blaz is the
//! sequential baseline that PyBlaz's data-parallel scaling is measured
//! against.

use blazr_tensor::NdArray;
use blazr_transform::{BlockTransform, TransformKind};

/// Block edge length (8×8 blocks).
pub const BLOCK: usize = 8;
/// Binning radius: indices span −127..=127 (255 bins).
pub const RADIUS: f64 = 127.0;
/// Kept coefficients per block after pruning the 6×6 corner: 64 − 36.
pub const KEPT: usize = 28;

/// A Blaz-compressed 2-D array.
#[derive(Debug, Clone, PartialEq)]
pub struct BlazCompressed {
    rows: usize,
    cols: usize,
    /// First element of each block (stored verbatim).
    firsts: Vec<f64>,
    /// Biggest DCT coefficient (magnitude) of each block.
    biggest: Vec<f64>,
    /// 28 pruned-and-flattened int8 bin indices per block.
    indices: Vec<i8>,
}

/// Row-major flat positions of an 8×8 block that survive pruning: those
/// outside the 6×6 high-index corner (rows 2..8 × cols 2..8 are dropped).
fn kept_positions() -> Vec<usize> {
    let mut kept = Vec::with_capacity(KEPT);
    for r in 0..BLOCK {
        for c in 0..BLOCK {
            if r < 2 || c < 2 {
                kept.push(r * BLOCK + c);
            }
        }
    }
    debug_assert_eq!(kept.len(), KEPT);
    kept
}

/// Differentiates a block in place: element k becomes `b[k] − b[k−1]`
/// (row-major), with the first element zeroed (it is stored separately).
fn differentiate(block: &mut [f64]) {
    for k in (1..block.len()).rev() {
        block[k] -= block[k - 1];
    }
    block[0] = 0.0;
}

/// Inverse of [`differentiate`] given the stored first element.
fn integrate(block: &mut [f64], first: f64) {
    block[0] = first;
    for k in 1..block.len() {
        block[k] += block[k - 1];
    }
}

impl BlazCompressed {
    /// Compresses a 2-D array. Inputs whose extents are not multiples of 8
    /// are zero-padded (Blaz proper requires multiples of 8; the padding
    /// is cropped on decompression).
    pub fn compress(input: &NdArray<f64>) -> Self {
        assert_eq!(input.ndim(), 2, "Blaz is a 2-D compressor");
        let rows = input.shape()[0];
        let cols = input.shape()[1];
        let brows = rows.div_ceil(BLOCK);
        let bcols = cols.div_ceil(BLOCK);
        let bt = BlockTransform::<f64>::new(TransformKind::Dct, &[BLOCK, BLOCK]);
        let kept = kept_positions();

        let mut firsts = Vec::with_capacity(brows * bcols);
        let mut biggest = Vec::with_capacity(brows * bcols);
        let mut indices = Vec::with_capacity(brows * bcols * KEPT);
        let mut block = vec![0.0f64; BLOCK * BLOCK];
        let mut scratch = vec![0.0f64; BLOCK * BLOCK];

        for br in 0..brows {
            for bc in 0..bcols {
                // Gather (sequentially — Blaz is the single-threaded baseline).
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        let gr = br * BLOCK + r;
                        let gc = bc * BLOCK + c;
                        block[r * BLOCK + c] = if gr < rows && gc < cols {
                            input.get(&[gr, gc])
                        } else {
                            0.0
                        };
                    }
                }
                let first = block[0];
                differentiate(&mut block);
                bt.forward(&mut block, &mut scratch);
                let n = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                firsts.push(first);
                biggest.push(n);
                for &pos in &kept {
                    let q = if n == 0.0 { 0.0 } else { block[pos] / n };
                    indices.push((q * RADIUS).round().clamp(-RADIUS, RADIUS) as i8);
                }
            }
        }
        Self {
            rows,
            cols,
            firsts,
            biggest,
            indices,
        }
    }

    /// Decompresses back to the original shape.
    pub fn decompress(&self) -> NdArray<f64> {
        let brows = self.rows.div_ceil(BLOCK);
        let bcols = self.cols.div_ceil(BLOCK);
        let bt = BlockTransform::<f64>::new(TransformKind::Dct, &[BLOCK, BLOCK]);
        let kept = kept_positions();
        let mut out = NdArray::full(vec![self.rows, self.cols], 0.0f64);
        let mut block = vec![0.0f64; BLOCK * BLOCK];
        let mut scratch = vec![0.0f64; BLOCK * BLOCK];

        for br in 0..brows {
            for bc in 0..bcols {
                let kb = br * bcols + bc;
                block.fill(0.0);
                let n = self.biggest[kb];
                for (slot, &pos) in kept.iter().enumerate() {
                    block[pos] = self.indices[kb * KEPT + slot] as f64 / RADIUS * n;
                }
                bt.inverse(&mut block, &mut scratch);
                integrate(&mut block, self.firsts[kb]);
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        let gr = br * BLOCK + r;
                        let gc = bc * BLOCK + c;
                        if gr < self.rows && gc < self.cols {
                            out.set(&[gr, gc], block[r * BLOCK + c]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Compressed-space element-wise addition: coefficients are summed and
    /// rebinned; first elements add exactly.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let n_blocks = self.firsts.len();
        let mut firsts = Vec::with_capacity(n_blocks);
        let mut biggest = Vec::with_capacity(n_blocks);
        let mut indices = Vec::with_capacity(n_blocks * KEPT);
        let mut coeffs = [0.0f64; KEPT];
        for kb in 0..n_blocks {
            firsts.push(self.firsts[kb] + other.firsts[kb]);
            let (n1, n2) = (self.biggest[kb], other.biggest[kb]);
            let mut n = 0.0f64;
            for (slot, c_out) in coeffs.iter_mut().enumerate() {
                let c = self.indices[kb * KEPT + slot] as f64 / RADIUS * n1
                    + other.indices[kb * KEPT + slot] as f64 / RADIUS * n2;
                *c_out = c;
                n = n.max(c.abs());
            }
            biggest.push(n);
            for &c in &coeffs {
                let q = if n == 0.0 { 0.0 } else { c / n };
                indices.push((q * RADIUS).round().clamp(-RADIUS, RADIUS) as i8);
            }
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            firsts,
            biggest,
            indices,
        }
    }

    /// Compressed-space multiplication by a scalar (exact).
    pub fn mul_scalar(&self, x: f64) -> Self {
        let mut out = self.clone();
        for f in &mut out.firsts {
            *f *= x;
        }
        for n in &mut out.biggest {
            *n *= x.abs();
        }
        if x < 0.0 {
            for i in &mut out.indices {
                *i = -*i;
            }
        }
        out
    }

    /// Compressed payload size in bits (firsts + biggest as f64, indices
    /// as int8, plus the stored shape).
    pub fn payload_bits(&self) -> u64 {
        let blocks = self.firsts.len() as u64;
        128 + blocks * (64 + 64) + blocks * KEPT as u64 * 8
    }

    /// Compression ratio against an FP64 original.
    pub fn compression_ratio(&self) -> f64 {
        (self.rows * self.cols * 64) as f64 / self.payload_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;
    use blazr_util::stats::{max_abs_diff, rms_diff};

    fn smooth_array(n: usize, seed: u64) -> NdArray<f64> {
        // Blaz's differentiation step targets smooth data.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let phase = rng.uniform_in(0.0, std::f64::consts::TAU);
        NdArray::from_fn(vec![n, n], |i| {
            ((i[0] as f64 / 9.0 + phase).sin() + (i[1] as f64 / 7.0).cos()) * 0.5
        })
    }

    #[test]
    fn differentiate_integrate_roundtrip() {
        let orig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = orig.clone();
        let first = b[0];
        differentiate(&mut b);
        integrate(&mut b, first);
        for (a, b) in orig.iter().zip(&b) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn kept_positions_match_blaz_pruning() {
        let kept = kept_positions();
        assert_eq!(kept.len(), 28);
        assert!(kept.contains(&0));
        assert!(kept.contains(&(BLOCK + 1))); // (1,1)
        assert!(!kept.contains(&(2 * BLOCK + 2))); // (2,2) is corner
        assert!(kept.contains(&(7 * BLOCK))); // (7,0) col < 2 kept
    }

    #[test]
    fn roundtrip_on_smooth_data() {
        // Blaz's differentiation step means binning error is amplified by
        // the cumulative sum on decompression, and its fixed 6×6 corner
        // pruning drops over half the (differentiated) spectrum — so its
        // error is much higher than PyBlaz's at similar ratios. The PyBlaz
        // paper drops the differentiation step for exactly this family of
        // reasons (§II-A / Fig. 1 caption).
        let a = smooth_array(32, 1);
        let c = BlazCompressed::compress(&a);
        let d = c.decompress();
        let rms = rms_diff(a.as_slice(), d.as_slice());
        assert!(rms < 0.25, "rms {rms}");
        assert!(rms > 0.0);
    }

    #[test]
    fn roundtrip_preserves_shape_with_padding() {
        let a = smooth_array(20, 2); // not a multiple of 8
        let c = BlazCompressed::compress(&a);
        let d = c.decompress();
        assert_eq!(d.shape(), &[20, 20]);
    }

    #[test]
    fn add_approximates_sum() {
        // Compare against the sum of the *decompressed* operands, so only
        // the rebinning error of the compressed-space addition is measured
        // (not Blaz's substantial baseline compression error).
        let a = smooth_array(16, 3);
        let b = smooth_array(16, 4);
        let ca = BlazCompressed::compress(&a);
        let cb = BlazCompressed::compress(&b);
        let sum = ca.add(&cb).decompress();
        let expect = ca.decompress().add(&cb.decompress());
        let err = max_abs_diff(sum.as_slice(), expect.as_slice());
        assert!(err < 0.35, "err {err}");
        // And it should still be recognizably the sum of the originals.
        let gross = max_abs_diff(sum.as_slice(), a.add(&b).as_slice());
        assert!(gross < 1.5, "gross {gross}");
    }

    #[test]
    fn mul_scalar_is_exact_on_decompressed() {
        let a = smooth_array(16, 5);
        let c = BlazCompressed::compress(&a);
        let lhs = c.mul_scalar(-2.5).decompress();
        let rhs = c.decompress().mul_scalar(-2.5);
        let err = max_abs_diff(lhs.as_slice(), rhs.as_slice());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn compression_ratio_is_fixed() {
        // 64 f64 values → 2×f64 + 28×i8 per block: ratio 64·8/(16+28·... )
        let a = smooth_array(64, 6);
        let c = BlazCompressed::compress(&a);
        // 64 blocks of 512 bytes → payload = 128 + 64·(128 + 224) bits.
        let expect = (64 * 64 * 64) as f64 / (128 + 64 * (128 + 224)) as f64;
        assert!((c.compression_ratio() - expect).abs() < 1e-9);
        assert!(c.compression_ratio() > 11.0, "{}", c.compression_ratio());
    }
}
