//! Reimplementations of the comparison codecs from the paper's related
//! work (§II-A) and evaluation (§IV-E):
//!
//! * [`blaz`] — Martel's Blaz compressor for 2-D `f64` arrays: 8×8 blocks,
//!   first-element + differentiation, block DCT, 255-bin int8 binning, and
//!   6×6 high-frequency corner pruning. Deliberately single-threaded; this
//!   is the baseline PyBlaz's Fig. 2 scaling comparison runs against.
//! * [`zfpoid`] — a ZFP-style fixed-rate codec (Lindstrom 2014): 4^d
//!   blocks, block-floating-point, the ZFP lifting transform, total
//!   sequency reordering, negabinary, and embedded group-tested bit-plane
//!   coding truncated at an exact bit budget. Used for the Fig. 3 timing
//!   and ratio comparisons.
//! * [`szoid`] — an SZ-style error-bounded codec (Di & Cappello 2016):
//!   order-1 Lorenzo prediction from *reconstructed* values,
//!   linear-scaling quantization, canonical Huffman coding, and verbatim
//!   outlier storage, guaranteeing a user-chosen point-wise bound.
//!
//! None of these support compressed-space operations beyond what their
//! papers describe — that contrast is the point of the headline system.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blaz;
pub mod szoid;
pub mod zfpoid;
