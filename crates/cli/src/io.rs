//! Raw `f64` file I/O.

use blazr_tensor::shape::num_elements;
use blazr_tensor::NdArray;
use std::fs;
use std::path::Path;

/// Reads a flat little-endian `f64` file into an array of `shape`.
pub fn read_f64(path: &Path, shape: &[usize]) -> Result<NdArray<f64>, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let n = num_elements(shape);
    if bytes.len() != n * 8 {
        return Err(format!(
            "{} holds {} bytes but shape {:?} needs {}",
            path.display(),
            bytes.len(),
            shape,
            n * 8
        ));
    }
    let data: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok(NdArray::from_vec(shape.to_vec(), data))
}

/// Writes an array as a flat little-endian `f64` file.
pub fn write_f64(path: &Path, a: &NdArray<f64>) -> Result<(), String> {
    let mut bytes = Vec::with_capacity(a.len() * 8);
    for &v in a.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fs::write(path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("blazr-cli-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.f64");
        let a = NdArray::from_fn(vec![3, 5], |i| i[0] as f64 * 10.0 + i[1] as f64);
        write_f64(&path, &a).unwrap();
        let back = read_f64(&path, &[3, 5]).unwrap();
        assert_eq!(back, a);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_size_is_detected() {
        let dir = std::env::temp_dir().join("blazr-cli-io-test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("y.f64");
        fs::write(&path, [0u8; 24]).unwrap();
        assert!(read_f64(&path, &[2, 2]).is_err()); // needs 32 bytes
        fs::remove_file(&path).ok();
    }
}
