//! Subcommand implementations.

use crate::args::{parse_float_type, parse_index_type, parse_shape, parse_transform, Args};
use crate::io::{read_f64, write_f64};
use blazr::dynamic::{compress_dyn, from_bytes_dyn};
use blazr::ops::SsimParams;
use blazr::tune::{tune_for_linf, TuneOptions};
use blazr::{IndexType, PruningMask, ScalarType, Settings};
use std::fs;
use std::path::Path;

const HELP: &str = "\
blazr — operate directly on compressed arrays

USAGE:
  blazr compress   <in.f64> --shape DxHxW [--block 8x8] [--float f32]
                   [--index i16] [--transform dct] [--keep N] -o <out.blz>
  blazr decompress <in.blz> -o <out.f64>
  blazr info       <in.blz>
  blazr stats      <in.blz>
  blazr diff       <a.blz> <b.blz> [--wasserstein-p P]
  blazr tune       <in.f64> --shape DxHxW --target-linf EPS
  blazr help

Raw files are flat little-endian float64. Compressed files use the paper's
§IV-C bit layout and embed their own type/shape/mask metadata.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("no subcommand given".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "compress" => compress_cmd(rest),
        "decompress" => decompress_cmd(rest),
        "info" => info_cmd(rest),
        "stats" => stats_cmd(rest),
        "diff" => diff_cmd(rest),
        "tune" => tune_cmd(rest),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn build_settings(args: &Args, ndim: usize) -> Result<Settings, String> {
    let block = match args.option("block") {
        Some(b) => parse_shape(b)?,
        None => vec![8; ndim],
    };
    let mut settings = Settings::new(block.clone()).map_err(|e| e.to_string())?;
    if let Some(t) = args.option("transform") {
        settings = settings.with_transform(parse_transform(t)?);
    }
    if let Some(k) = args.option("keep") {
        let kept: usize = k.parse().map_err(|e| format!("bad --keep: {e}"))?;
        let mask = PruningMask::keep_lowest_frequencies(&block, kept).map_err(|e| e.to_string())?;
        settings = settings.with_mask(mask).map_err(|e| e.to_string())?;
    }
    Ok(settings)
}

fn compress_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("compress needs an input file")?;
    let shape = parse_shape(args.require("shape")?)?;
    let out = args.require("output")?;
    let ft = match args.option("float") {
        Some(f) => parse_float_type(f)?,
        None => ScalarType::F32,
    };
    let it = match args.option("index") {
        Some(i) => parse_index_type(i)?,
        None => IndexType::I16,
    };
    let a = read_f64(Path::new(input), &shape)?;
    let settings = build_settings(&args, shape.len())?;
    let c = compress_dyn(&a, &settings, ft, it).map_err(|e| e.to_string())?;
    let bytes = c.to_bytes();
    fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{} -> {} ({} bytes, ratio {:.2}x vs f64, {} scales, {} indices)",
        input,
        out,
        bytes.len(),
        c.compression_ratio(),
        ft.name(),
        it.name()
    );
    Ok(())
}

fn decompress_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("decompress needs an input file")?;
    let out = args.require("output")?;
    let bytes = fs::read(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let c = from_bytes_dyn(&bytes).map_err(|e| e.to_string())?;
    let a = c.decompress();
    write_f64(Path::new(out), &a)?;
    println!(
        "{} -> {} (shape {:?}, {} elements)",
        input,
        out,
        a.shape(),
        a.len()
    );
    Ok(())
}

fn load_compressed(path: &str) -> Result<blazr::dynamic::DynCompressed, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_bytes_dyn(&bytes).map_err(|e| e.to_string())
}

fn info_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args.positionals.first().ok_or("info needs an input file")?;
    let c = load_compressed(input)?;
    println!("file          : {input}");
    println!("shape         : {:?}", c.shape());
    println!("float type    : {}", c.float_type().name());
    println!("index type    : {}", c.index_type().name());
    println!("payload       : {} bits", c.payload_bits());
    println!("ratio vs f64  : {:.3}x", c.compression_ratio());
    Ok(())
}

fn stats_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("stats needs an input file")?;
    let c = load_compressed(input)?;
    println!("mean      : {}", fmt_res(c.mean()));
    println!("variance  : {}", fmt_res(c.variance()));
    println!("l2 norm   : {:.9e}", c.l2_norm());
    Ok(())
}

fn fmt_res(r: Result<f64, blazr::BlazError>) -> String {
    match r {
        Ok(v) => format!("{v:.9e}"),
        Err(e) => format!("(unavailable: {e})"),
    }
}

fn diff_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let (a_path, b_path) = match &args.positionals[..] {
        [a, b] => (a, b),
        _ => return Err("diff needs exactly two compressed files".into()),
    };
    let a = load_compressed(a_path)?;
    let b = load_compressed(b_path)?;
    let diff = a.sub(&b).map_err(|e| e.to_string())?;
    println!("l2 distance        : {:.9e}", diff.l2_norm());
    println!("cosine similarity  : {}", fmt_res(a.cosine_similarity(&b)));
    println!(
        "ssim               : {}",
        fmt_res(a.ssim(&b, &SsimParams::default()))
    );
    let p: f64 = match args.option("wasserstein-p") {
        Some(v) => v.parse().map_err(|e| format!("bad --wasserstein-p: {e}"))?,
        None => 2.0,
    };
    println!("wasserstein (p={p}) : {}", fmt_res(a.wasserstein(&b, p)));
    println!(
        "approx Linf distance: {}",
        fmt_res(a.approx_linf_distance(&b))
    );
    Ok(())
}

fn tune_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args.positionals.first().ok_or("tune needs an input file")?;
    let shape = parse_shape(args.require("shape")?)?;
    let target: f64 = args
        .require("target-linf")?
        .parse()
        .map_err(|e| format!("bad --target-linf: {e}"))?;
    let a = read_f64(Path::new(input), &shape)?;
    match tune_for_linf(&a, target, &TuneOptions::default()) {
        Some(r) => {
            println!("target L∞        : {target:.3e}");
            println!("achieved L∞      : {:.3e}", r.achieved_linf);
            println!("ratio vs f64     : {:.2}x", r.ratio);
            println!("float type       : {}", r.float_type.name());
            println!("index type       : {}", r.index_type.name());
            println!("block shape      : {:?}", r.settings.block_shape);
            println!("kept coefficients: {}", r.settings.mask.kept_count());
            println!("candidates tried : {}", r.candidates_tried);
            Ok(())
        }
        None => Err(format!("no setting meets L∞ ≤ {target:e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_tensor::NdArray;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("blazr-cli-cmd-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_cli_pipeline() {
        // compress → info → stats → decompress → diff on real files.
        let raw = tmp("a.f64");
        let blz = tmp("a.blz");
        let back = tmp("a_back.f64");
        let a = NdArray::from_fn(vec![24, 24], |i| {
            (i[0] as f64 / 5.0).sin() + i[1] as f64 * 0.01
        });
        write_f64(&raw, &a).unwrap();

        run(&sv(&[
            "compress",
            raw.to_str().unwrap(),
            "--shape",
            "24x24",
            "--block",
            "8x8",
            "-o",
            blz.to_str().unwrap(),
        ]))
        .unwrap();
        run(&sv(&["info", blz.to_str().unwrap()])).unwrap();
        run(&sv(&["stats", blz.to_str().unwrap()])).unwrap();
        run(&sv(&[
            "decompress",
            blz.to_str().unwrap(),
            "-o",
            back.to_str().unwrap(),
        ]))
        .unwrap();
        let d = read_f64(&back, &[24, 24]).unwrap();
        let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        assert!(err < 1e-3, "roundtrip err {err}");

        run(&sv(&["diff", blz.to_str().unwrap(), blz.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn compress_with_all_options() {
        let raw = tmp("b.f64");
        let blz = tmp("b.blz");
        let a = NdArray::from_fn(vec![16, 16], |i| i[0] as f64 - i[1] as f64);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "compress",
            raw.to_str().unwrap(),
            "--shape",
            "16x16",
            "--block",
            "4x4",
            "--float",
            "f64",
            "--index",
            "i8",
            "--transform",
            "haar",
            "--keep",
            "8",
            "-o",
            blz.to_str().unwrap(),
        ]))
        .unwrap();
        let c = load_compressed(blz.to_str().unwrap()).unwrap();
        assert_eq!(c.float_type(), ScalarType::F64);
        assert_eq!(c.index_type(), IndexType::I8);
    }

    #[test]
    fn tune_command_finds_settings() {
        let raw = tmp("c.f64");
        let a = NdArray::from_fn(vec![32, 32], |i| (i[0] as f64 / 9.0).sin());
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "tune",
            raw.to_str().unwrap(),
            "--shape",
            "32x32",
            "--target-linf",
            "1e-3",
        ]))
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&["compress"])).is_err());
        assert!(run(&sv(&["diff", "only-one.blz"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&sv(&["help"])).is_ok());
    }

    #[test]
    fn garbage_compressed_file_is_rejected() {
        let p = tmp("garbage.blz");
        fs::write(&p, [0x55u8; 100]).unwrap();
        assert!(run(&sv(&["info", p.to_str().unwrap()])).is_err());
    }
}
