//! Subcommand implementations.

use crate::args::{parse_float_type, parse_index_type, parse_shape, parse_transform, Args};
use crate::io::{read_f64, write_f64};
use blazr::dynamic::{compress_dyn, from_bytes_dyn};
use blazr::ops::SsimParams;
use blazr::tune::{tune_for_linf, TuneOptions};
use blazr::{IndexType, PruningMask, ScalarType, Settings};
use blazr_telemetry as tel;
use std::fs;
use std::path::Path;

const HELP: &str = "\
blazr — operate directly on compressed arrays

USAGE:
  blazr compress   <in.f64> --shape DxHxW [--block 8x8] [--float f32]
                   [--index i16] [--transform dct] [--keep N] -o <out.blz>
  blazr decompress <in.blz> -o <out.f64>
  blazr info       <in.blz>
  blazr stats      <in.blz>
  blazr diff       <a.blz> <b.blz> [--wasserstein-p P]
  blazr tune       <in.f64> --shape DxHxW --target-linf EPS
  blazr store ingest <in.f64> --shape DxHxW --chunk-rows R -o <out.blzs>
                   [--block 8x8] [--float f32] [--index i16]
  blazr store query  <store.blzs> [--from L] [--to L] [--min V] [--max V]
                   [--mean-min V] [--mean-max V] [--agg mean] [--full-scan]
                   [--degraded]
  blazr store stat   <store.blzs> [--json]
  blazr store verify <store.blzs> [--json]
  blazr store repair <store.blzs> -o <out.blzs>
  blazr serve      <store.blzs> [--addr 127.0.0.1:0] [--workers N]
                   [--queue N] [--deadline-ms D] [--max-requests N]
  blazr telemetry  <store.blzs> [query options as above] [--full-scan]
                   [--mode counters|spans] [--format json|prom]
  blazr help

Raw files are flat little-endian float64. Compressed files use the paper's
§IV-C bit layout and embed their own type/shape/mask metadata. Store files
(.blzs) hold many compressed chunks behind a zone-map index: `ingest`
splits the input along axis 0 into chunks of --chunk-rows rows (labeled by
start row), `query` aggregates in compressed space with zone-map pruning,
and `stat` prints the index without touching any chunk payload.

`verify` deep-scans a store (footer, then every chunk checksum + decode)
and prints per-chunk verdicts; a damaged footer is salvaged from chunk
preambles first. `repair` rewrites a clean store from every salvageable
chunk via the atomic ingest path. `query --degraded` tolerates damaged
chunks: the aggregate covers the surviving chunks and a degradation
report says what was skipped.

Store commands exit 0 when the data is clean, 10 when an answer was
produced without some chunks (degraded), and 20 when the file is corrupt
beyond salvage; other errors exit 1. `serve` follows the same taxonomy
when it stops (0 if every answer was complete, 10 if any response was
degraded) and speaks the same contract over HTTP status codes: 200
complete, 206 partial (degraded, with the degradation report in the
body), 429 shed under load (with Retry-After), 503 draining, 504
deadline exceeded mid-query.

`serve` exposes the store read-only over HTTP/1.1: GET /query (same
predicates as `store query`, plus mode=strict|degraded and deadline_ms),
/healthz, /readyz (503 while draining), and /metrics (Prometheus text
from the telemetry registry). With --max-requests N it drains itself
after N connections and prints final server stats — handy for smoke
tests; otherwise it runs until killed.

`telemetry` runs a store query with metric recording forced on and dumps
the registry snapshot to stdout — JSON by default, Prometheus text with
--format prom (the human-readable query result goes to stderr). The same
metrics are available in any run through BLAZR_TELEMETRY=counters|spans.";

/// How a store-health-aware command found the data, mapped to a distinct
/// process exit code so scripts can branch: `Clean` → 0, `Degraded` → 10
/// (an answer was produced, but without some chunks), `Corrupt` → 20
/// (nothing usable). Commands that cannot observe damage return `Clean`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Everything read back intact.
    Clean,
    /// The command succeeded but had to skip damaged data.
    Degraded,
    /// The store is damaged beyond what salvage can recover.
    Corrupt,
}

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let Some(cmd) = argv.first() else {
        return Err("no subcommand given".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "compress" => compress_cmd(rest).map(|()| Outcome::Clean),
        "decompress" => decompress_cmd(rest).map(|()| Outcome::Clean),
        "info" => info_cmd(rest).map(|()| Outcome::Clean),
        "stats" => stats_cmd(rest).map(|()| Outcome::Clean),
        "diff" => diff_cmd(rest).map(|()| Outcome::Clean),
        "tune" => tune_cmd(rest).map(|()| Outcome::Clean),
        "store" => store_cmd(rest),
        "serve" => serve_cmd(rest),
        "telemetry" => telemetry_cmd(rest).map(|()| Outcome::Clean),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(Outcome::Clean)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn build_settings(args: &Args, ndim: usize) -> Result<Settings, String> {
    let block = match args.option("block") {
        Some(b) => parse_shape(b)?,
        None => vec![8; ndim],
    };
    let mut settings = Settings::new(block.clone()).map_err(|e| e.to_string())?;
    if let Some(t) = args.option("transform") {
        settings = settings.with_transform(parse_transform(t)?);
    }
    if let Some(k) = args.option("keep") {
        let kept: usize = k.parse().map_err(|e| format!("bad --keep: {e}"))?;
        let mask = PruningMask::keep_lowest_frequencies(&block, kept).map_err(|e| e.to_string())?;
        settings = settings.with_mask(mask).map_err(|e| e.to_string())?;
    }
    Ok(settings)
}

fn compress_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("compress needs an input file")?;
    let shape = parse_shape(args.require("shape")?)?;
    let out = args.require("output")?;
    let ft = match args.option("float") {
        Some(f) => parse_float_type(f)?,
        None => ScalarType::F32,
    };
    let it = match args.option("index") {
        Some(i) => parse_index_type(i)?,
        None => IndexType::I16,
    };
    let a = read_f64(Path::new(input), &shape)?;
    let settings = build_settings(&args, shape.len())?;
    let c = compress_dyn(&a, &settings, ft, it).map_err(|e| e.to_string())?;
    let bytes = c.to_bytes();
    fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{} -> {} ({} bytes, ratio {:.2}x vs f64, {} scales, {} indices)",
        input,
        out,
        bytes.len(),
        c.compression_ratio(),
        ft.name(),
        it.name()
    );
    Ok(())
}

fn decompress_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("decompress needs an input file")?;
    let out = args.require("output")?;
    let bytes = fs::read(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let c = from_bytes_dyn(&bytes).map_err(|e| e.to_string())?;
    let a = c.decompress();
    write_f64(Path::new(out), &a)?;
    println!(
        "{} -> {} (shape {:?}, {} elements)",
        input,
        out,
        a.shape(),
        a.len()
    );
    Ok(())
}

fn load_compressed(path: &str) -> Result<blazr::dynamic::DynCompressed, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_bytes_dyn(&bytes).map_err(|e| e.to_string())
}

fn info_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args.positionals.first().ok_or("info needs an input file")?;
    let c = load_compressed(input)?;
    println!("file          : {input}");
    println!("shape         : {:?}", c.shape());
    println!("float type    : {}", c.float_type().name());
    println!("index type    : {}", c.index_type().name());
    println!("payload       : {} bits", c.payload_bits());
    println!("ratio vs f64  : {:.3}x", c.compression_ratio());
    Ok(())
}

fn stats_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("stats needs an input file")?;
    let c = load_compressed(input)?;
    println!("mean      : {}", fmt_res(c.mean()));
    println!("variance  : {}", fmt_res(c.variance()));
    println!("l2 norm   : {:.9e}", c.l2_norm());
    Ok(())
}

fn fmt_res(r: Result<f64, blazr::BlazError>) -> String {
    match r {
        Ok(v) => format!("{v:.9e}"),
        Err(e) => format!("(unavailable: {e})"),
    }
}

fn diff_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let (a_path, b_path) = match &args.positionals[..] {
        [a, b] => (a, b),
        _ => return Err("diff needs exactly two compressed files".into()),
    };
    let a = load_compressed(a_path)?;
    let b = load_compressed(b_path)?;
    let diff = a.sub(&b).map_err(|e| e.to_string())?;
    println!("l2 distance        : {:.9e}", diff.l2_norm());
    println!("cosine similarity  : {}", fmt_res(a.cosine_similarity(&b)));
    println!(
        "ssim               : {}",
        fmt_res(a.ssim(&b, &SsimParams::default()))
    );
    let p: f64 = match args.option("wasserstein-p") {
        Some(v) => v.parse().map_err(|e| format!("bad --wasserstein-p: {e}"))?,
        None => 2.0,
    };
    println!("wasserstein (p={p}) : {}", fmt_res(a.wasserstein(&b, p)));
    println!(
        "approx Linf distance: {}",
        fmt_res(a.approx_linf_distance(&b))
    );
    Ok(())
}

fn tune_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let input = args.positionals.first().ok_or("tune needs an input file")?;
    let shape = parse_shape(args.require("shape")?)?;
    let target: f64 = args
        .require("target-linf")?
        .parse()
        .map_err(|e| format!("bad --target-linf: {e}"))?;
    let a = read_f64(Path::new(input), &shape)?;
    match tune_for_linf(&a, target, &TuneOptions::default()) {
        Some(r) => {
            println!("target L∞        : {target:.3e}");
            println!("achieved L∞      : {:.3e}", r.achieved_linf);
            println!("ratio vs f64     : {:.2}x", r.ratio);
            println!("float type       : {}", r.float_type.name());
            println!("index type       : {}", r.index_type.name());
            println!("block shape      : {:?}", r.settings.block_shape);
            println!("kept coefficients: {}", r.settings.mask.kept_count());
            println!("candidates tried : {}", r.candidates_tried);
            Ok(())
        }
        None => Err(format!("no setting meets L∞ ≤ {target:e}")),
    }
}

fn store_cmd(argv: &[String]) -> Result<Outcome, String> {
    let Some(sub) = argv.first() else {
        return Err("store needs a subcommand: ingest, query, stat, verify, or repair".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "ingest" => store_ingest_cmd(rest).map(|()| Outcome::Clean),
        "query" => store_query_cmd(rest),
        "stat" => store_stat_cmd(rest).map(|()| Outcome::Clean),
        "verify" => store_verify_cmd(rest),
        "repair" => store_repair_cmd(rest),
        other => Err(format!("unknown store subcommand {other:?}")),
    }
}

fn store_ingest_cmd(argv: &[String]) -> Result<(), String> {
    use blazr_store::StoreWriter;
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("store ingest needs an input file")?;
    let shape = parse_shape(args.require("shape")?)?;
    let out = args.require("output")?;
    let chunk_rows: usize = args
        .require("chunk-rows")?
        .parse()
        .map_err(|e| format!("bad --chunk-rows: {e}"))?;
    if chunk_rows == 0 {
        return Err("--chunk-rows must be positive".into());
    }
    let ft = match args.option("float") {
        Some(f) => parse_float_type(f)?,
        None => ScalarType::F32,
    };
    let it = match args.option("index") {
        Some(i) => parse_index_type(i)?,
        None => IndexType::I16,
    };
    let a = read_f64(Path::new(input), &shape)?;
    let settings = build_settings(&args, shape.len())?;
    let mut writer = StoreWriter::create(out, settings, ft, it).map_err(|e| e.to_string())?;
    // Split along axis 0: chunk k covers rows [k·R, min((k+1)·R, D)) and
    // is labeled by its start row. Rows are contiguous in row-major order.
    let row_len: usize = shape[1..].iter().product();
    let rows = shape[0];
    let data = a.as_slice();
    let mut start = 0usize;
    while start < rows {
        let end = (start + chunk_rows).min(rows);
        let mut chunk_shape = shape.clone();
        chunk_shape[0] = end - start;
        let chunk = blazr_tensor::NdArray::from_vec(
            chunk_shape,
            data[start * row_len..end * row_len].to_vec(),
        );
        writer
            .append(start as u64, &chunk)
            .map_err(|e| e.to_string())?;
        start = end;
    }
    let chunks = writer.len();
    writer.finish().map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(out)
        .map_err(|e| format!("cannot stat {out}: {e}"))?
        .len();
    let raw = (rows * row_len * 8) as f64;
    println!(
        "{input} -> {out} ({chunks} chunks of ≤{chunk_rows} rows, {bytes} bytes, \
         ratio {:.2}x vs f64, {} scales, {} indices)",
        raw / bytes as f64,
        ft.name(),
        it.name()
    );
    Ok(())
}

/// Builds a [`blazr_store::Query`] from the shared `store query` /
/// `telemetry` option set (`--from/--to/--min/--max/--mean-min/
/// --mean-max/--agg`).
fn parse_query(args: &Args) -> Result<blazr_store::Query, String> {
    use blazr_store::{Aggregate, Predicate, Query};
    let parse_f64 = |name: &str| -> Result<Option<f64>, String> {
        args.option(name)
            .map(|v| v.parse().map_err(|e| format!("bad --{name}: {e}")))
            .transpose()
    };
    let parse_u64 = |name: &str, default: u64| -> Result<u64, String> {
        Ok(match args.option(name) {
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}"))?,
            None => default,
        })
    };
    let (vmin, vmax) = (parse_f64("min")?, parse_f64("max")?);
    let (mmin, mmax) = (parse_f64("mean-min")?, parse_f64("mean-max")?);
    let predicate = match (
        vmin.is_some() || vmax.is_some(),
        mmin.is_some() || mmax.is_some(),
    ) {
        (true, true) => {
            return Err("give either --min/--max or --mean-min/--mean-max, not both".into())
        }
        (true, false) => Some(Predicate::ValueInRange {
            lo: vmin.unwrap_or(f64::NEG_INFINITY),
            hi: vmax.unwrap_or(f64::INFINITY),
        }),
        (false, true) => Some(Predicate::MeanInRange {
            lo: mmin.unwrap_or(f64::NEG_INFINITY),
            hi: mmax.unwrap_or(f64::INFINITY),
        }),
        (false, false) => None,
    };
    Ok(Query {
        from_label: parse_u64("from", 0)?,
        to_label: parse_u64("to", u64::MAX)?,
        predicate,
        aggregate: Aggregate::parse(args.option("agg").unwrap_or("mean"))
            .map_err(|e| e.to_string())?,
    })
}

/// The shared human-readable block for a query result.
fn print_query_result(q: &blazr_store::Query, r: &blazr_store::QueryResult) {
    println!("aggregate      : {:?}", q.aggregate);
    println!("value          : {:.9e}", r.value);
    println!("error bound    : {:.3e}", r.error_bound);
    println!("elements       : {}", r.stats.count);
    println!(
        "chunks         : {} in range, {} pruned by zone maps, {} scanned, {} matched",
        r.chunks_in_range,
        r.chunks_pruned,
        r.chunks_scanned,
        r.matched_labels.len()
    );
    println!(
        "prune ratio    : {:.1}% ({} payload bytes read)",
        r.prune_ratio() * 100.0,
        r.payload_bytes_read
    );
    println!("matched labels : {:?}", r.matched_labels);
}

/// Opens a store for a read command, salvaging on a damaged footer when
/// `tolerate` is set. `Ok(None)` means "hopelessly corrupt": the reason
/// was printed to stderr and the command should exit with
/// [`Outcome::Corrupt`]. A salvaged-but-incomplete footer bumps the
/// baseline outcome to `Degraded`.
fn open_tolerant(
    input: &str,
    tolerate: bool,
) -> Result<Option<(blazr_store::Store, Outcome)>, String> {
    use blazr_store::{Store, StoreError};
    match Store::open(input) {
        Ok(s) => Ok(Some((s, Outcome::Clean))),
        Err(StoreError::Corrupt(reason)) if tolerate => match Store::open_salvage(input) {
            Ok((s, rep)) => {
                eprintln!(
                    "{input}: footer damaged ({reason}); salvaged {} chunks ({} damaged)",
                    rep.recovered, rep.damaged
                );
                Ok(Some((s, Outcome::Degraded)))
            }
            Err(e) => {
                eprintln!("{input}: corrupt beyond salvage: {e}");
                Ok(None)
            }
        },
        Err(e @ StoreError::Corrupt(_)) => {
            eprintln!("{input}: {e} (try --degraded, `store verify`, or `store repair`)");
            Ok(None)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn store_query_cmd(argv: &[String]) -> Result<Outcome, String> {
    use blazr_store::StoreError;
    let args = Args::parse(argv, &["full-scan", "degraded"])?;
    let input = args
        .positionals
        .first()
        .ok_or("store query needs a store file")?;
    let q = parse_query(&args)?;
    let degraded = args.has_flag("degraded");
    let Some((store, mut outcome)) = open_tolerant(input, degraded)? else {
        return Ok(Outcome::Corrupt);
    };
    if degraded {
        let (r, report) = store.query_degraded(&q).map_err(|e| e.to_string())?;
        print_query_result(&q, &r);
        // Always print the degradation summary (even when nothing was
        // skipped) so the CLI output carries the same report fields the
        // server puts in every /query response body.
        println!(
            "degraded       : {} chunks skipped, {}/{} rows unavailable ({:.1}%)",
            report.skipped.len(),
            report.rows_unavailable,
            report.rows_in_range,
            report.fraction_unavailable() * 100.0
        );
        if report.is_degraded() {
            outcome = Outcome::Degraded;
            for s in &report.skipped {
                println!("  chunk {:>5}  {} rows  {}", s.label, s.rows, s.reason);
            }
            println!("bounds partial : {}", report.bounds_partial);
        }
        return Ok(outcome);
    }
    let r = if args.has_flag("full-scan") {
        store.query_full_scan(&q)
    } else {
        store.query(&q)
    };
    match r {
        Ok(r) => {
            print_query_result(&q, &r);
            Ok(outcome)
        }
        // Damaged chunk hit mid-scan: report it as corruption (exit 20)
        // rather than a generic failure, and point at degraded mode.
        Err(e @ StoreError::Corrupt(_)) => {
            eprintln!("{input}: {e} (rerun with --degraded to skip damaged chunks)");
            Ok(Outcome::Corrupt)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// `blazr serve`: expose a store read-only over HTTP/1.1 with bounded
/// concurrency, per-request deadlines, load shedding, and degraded-mode
/// answers. A damaged footer is salvaged before serving. Runs until
/// killed unless `--max-requests` makes it drain itself, in which case
/// final server stats are printed and the usual clean/degraded exit
/// taxonomy applies to what was served.
fn serve_cmd(argv: &[String]) -> Result<Outcome, String> {
    use blazr_serve::{ServeConfig, Server, TcpTransport};
    let args = Args::parse(argv, &[])?;
    let input = args.positionals.first().ok_or("serve needs a store file")?;
    let mut cfg = ServeConfig::default();
    if let Some(w) = args.option("workers") {
        cfg.workers = w.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(q) = args.option("queue") {
        cfg.queue_capacity = q.parse().map_err(|e| format!("bad --queue: {e}"))?;
    }
    if let Some(d) = args.option("deadline-ms") {
        let ms: u64 = d.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
        cfg.deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = args.option("max-requests") {
        let n: u64 = n.parse().map_err(|e| format!("bad --max-requests: {e}"))?;
        cfg.max_requests = Some(n);
    }
    let Some((store, outcome)) = open_tolerant(input, true)? else {
        return Ok(Outcome::Corrupt);
    };
    // /metrics serves the telemetry registry; without counters it would
    // always be empty, so default the mode up (BLAZR_TELEMETRY=spans
    // still wins — counters_enabled is true there too).
    if !tel::counters_enabled() {
        tel::set_mode(tel::Mode::Counters);
    }
    let addr = args.option("addr").unwrap_or("127.0.0.1:0");
    let listener = TcpTransport::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let server = Server::start(store, Box::new(listener), cfg).map_err(|e| e.to_string())?;
    println!("serving {} on http://{}", input, server.local_addr());
    let stats = server.join();
    println!(
        "served {} requests: {} shed, {} drain rejects, {} deadline hits, \
         {} degraded, {} panics",
        stats.served,
        stats.shed,
        stats.drain_rejects,
        stats.deadline_hits,
        stats.degraded,
        stats.panics
    );
    if stats.degraded > 0 && outcome == Outcome::Clean {
        return Ok(Outcome::Degraded);
    }
    Ok(outcome)
}

/// `blazr store verify`: deep-scan every chunk (checksum + full decode)
/// and print per-chunk verdicts. A damaged footer is salvaged from chunk
/// preambles first, so the verdict list covers whatever is recoverable.
fn store_verify_cmd(argv: &[String]) -> Result<Outcome, String> {
    use blazr_store::{Store, StoreError};
    let args = Args::parse(argv, &["json"])?;
    let input = args
        .positionals
        .first()
        .ok_or("store verify needs a store file")?;
    let json = args.has_flag("json");
    let (store, salvage) = match Store::open(input) {
        Ok(s) => (s, None),
        Err(StoreError::Corrupt(reason)) => match Store::open_salvage(input) {
            Ok((s, rep)) => (s, Some((reason, rep))),
            Err(e) => {
                if json {
                    println!(
                        "{{\n  \"file\": \"{}\",\n  \"outcome\": \"corrupt\",\n  \
                         \"error\": \"{}\"\n}}",
                        input.replace('"', "\\\""),
                        e.to_string().replace('"', "\\\"")
                    );
                } else {
                    eprintln!("{input}: corrupt beyond salvage: {e}");
                }
                return Ok(Outcome::Corrupt);
            }
        },
        Err(e) => return Err(e.to_string()),
    };
    // Deep scan: every chunk is checksummed and fully decoded; the footer
    // zone map only tells us what the writer *claimed*, so a verdict
    // requires reading the payload back.
    let mut verdicts: Vec<(u64, u64, Option<String>)> = Vec::with_capacity(store.len());
    let mut bad = 0usize;
    for i in 0..store.len() {
        let e = &store.entries()[i];
        match store.chunk(i) {
            Ok(_) => verdicts.push((e.label, e.zone.stats.count, None)),
            Err(err) => {
                bad += 1;
                verdicts.push((e.label, e.zone.stats.count, Some(err.to_string())));
            }
        }
    }
    let footer_intact = salvage.is_none();
    let damaged_preambles = salvage.as_ref().map_or(0, |(_, rep)| rep.damaged);
    let outcome = if bad == verdicts.len() && !verdicts.is_empty() {
        Outcome::Corrupt
    } else if !footer_intact || bad > 0 || damaged_preambles > 0 {
        Outcome::Degraded
    } else {
        Outcome::Clean
    };
    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"file\": \"{}\",\n",
            input.replace('"', "\\\"")
        ));
        out.push_str(&format!(
            "  \"outcome\": \"{}\",\n",
            match outcome {
                Outcome::Clean => "clean",
                Outcome::Degraded => "degraded",
                Outcome::Corrupt => "corrupt",
            }
        ));
        out.push_str(&format!("  \"footer_intact\": {footer_intact},\n"));
        out.push_str(&format!("  \"damaged_regions\": {damaged_preambles},\n"));
        out.push_str(&format!(
            "  \"chunks_ok\": {},\n  \"chunks_bad\": {bad},\n",
            verdicts.len() - bad
        ));
        out.push_str("  \"chunks\": [");
        for (i, (label, rows, err)) in verdicts.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            match err {
                None => out.push_str(&format!(
                    "{sep}\n    {{\"label\": {label}, \"rows\": {rows}, \"ok\": true}}"
                )),
                Some(e) => out.push_str(&format!(
                    "{sep}\n    {{\"label\": {label}, \"rows\": {rows}, \"ok\": false, \
                     \"error\": \"{}\"}}",
                    e.replace('"', "\\\"")
                )),
            }
        }
        out.push_str("\n  ]\n}");
        println!("{out}");
    } else {
        println!("file           : {input}");
        match &salvage {
            None => println!("footer         : intact"),
            Some((reason, rep)) => {
                println!("footer         : DAMAGED ({reason})");
                println!(
                    "salvage        : {} chunks recovered, {} damaged regions skipped",
                    rep.recovered, rep.damaged
                );
            }
        }
        for (label, rows, err) in &verdicts {
            match err {
                None => println!("chunk {label:>5}    : ok ({rows} rows)"),
                Some(e) => println!("chunk {label:>5}    : BAD ({e})"),
            }
        }
        println!(
            "verdict        : {} ({}/{} chunks ok)",
            match outcome {
                Outcome::Clean => "clean",
                Outcome::Degraded => "degraded",
                Outcome::Corrupt => "corrupt",
            },
            verdicts.len() - bad,
            verdicts.len()
        );
    }
    Ok(outcome)
}

/// `blazr store repair`: rewrite a clean store from every salvageable
/// chunk. Output goes through the same atomic temp-file + rename ingest
/// path as `store ingest`, so a crash mid-repair never leaves garbage at
/// the destination.
fn store_repair_cmd(argv: &[String]) -> Result<Outcome, String> {
    use blazr_store::{Store, StoreError, StoreWriter};
    let args = Args::parse(argv, &[])?;
    let input = args
        .positionals
        .first()
        .ok_or("store repair needs a store file")?;
    let out = args.require("output")?;
    let (store, rep) = match Store::open_salvage(input) {
        Ok(x) => x,
        Err(e @ StoreError::Corrupt(_)) => {
            eprintln!("{input}: corrupt beyond salvage: {e}");
            return Ok(Outcome::Corrupt);
        }
        Err(e) => return Err(e.to_string()),
    };
    // Decode every chunk, keeping the survivors; a chunk that passed the
    // salvage checksum can still fail its own header validation, so the
    // rewrite re-verifies by full decode.
    let mut good: Vec<(u64, blazr::dynamic::DynCompressed)> = Vec::with_capacity(store.len());
    let mut dropped = 0usize;
    for i in 0..store.len() {
        let label = store.entries()[i].label;
        match store.chunk(i) {
            Ok(c) => good.push((label, c)),
            Err(e) => {
                dropped += 1;
                eprintln!("dropping chunk {label}: {e}");
            }
        }
    }
    let Some((_, first)) = good.first() else {
        eprintln!("{input}: no chunks survived the deep scan; nothing to repair");
        return Ok(Outcome::Corrupt);
    };
    let mut w = StoreWriter::create(
        out,
        first.settings().clone(),
        first.float_type(),
        first.index_type(),
    )
    .map_err(|e| e.to_string())?;
    for (label, c) in &good {
        w.append_dyn(*label, c).map_err(|e| e.to_string())?;
    }
    w.finish().map_err(|e| e.to_string())?;
    let lost = dropped + usize::try_from(rep.damaged).unwrap_or(usize::MAX);
    println!(
        "{input} -> {out}: {} chunks rewritten, {lost} lost (footer was {})",
        good.len(),
        if rep.footer_intact {
            "intact"
        } else {
            "damaged"
        }
    );
    Ok(if rep.footer_intact && lost == 0 {
        Outcome::Clean
    } else {
        Outcome::Degraded
    })
}

/// `blazr telemetry`: run a store query with metric recording forced on
/// and dump the registry snapshot to stdout (the human-readable query
/// result goes to stderr, keeping stdout machine-parseable).
fn telemetry_cmd(argv: &[String]) -> Result<(), String> {
    use blazr_store::Store;
    let args = Args::parse(argv, &["full-scan"])?;
    let input = args
        .positionals
        .first()
        .ok_or("telemetry needs a store file")?;
    let mode = match args.option("mode").unwrap_or("spans") {
        "counters" => tel::Mode::Counters,
        "spans" => tel::Mode::Spans,
        other => return Err(format!("unknown --mode {other:?} (want counters|spans)")),
    };
    let format = args.option("format").unwrap_or("json");
    if !matches!(format, "json" | "prom" | "prometheus") {
        return Err(format!("unknown --format {format:?} (want json|prom)"));
    }
    tel::set_mode(mode);
    let q = parse_query(&args)?;
    let store = Store::open(input).map_err(|e| e.to_string())?;
    let r = if args.has_flag("full-scan") {
        store.query_full_scan(&q)
    } else {
        store.query(&q)
    }
    .map_err(|e| e.to_string())?;
    eprintln!(
        "query: value {:.9e} (error bound {:.3e}); {} scanned / {} pruned of {} chunks",
        r.value, r.error_bound, r.chunks_scanned, r.chunks_pruned, r.chunks_in_range
    );
    let snap = tel::registry().snapshot();
    match format {
        "json" => print!("{}", snap.to_json()),
        _ => print!("{}", snap.to_prometheus()),
    }
    Ok(())
}

/// A finite f64 as a JSON number, non-finite as `null` (JSON has no
/// Infinity/NaN literals).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".into()
    }
}

fn store_stat_cmd(argv: &[String]) -> Result<(), String> {
    use blazr_store::Store;
    let args = Args::parse(argv, &["json"])?;
    let input = args
        .positionals
        .first()
        .ok_or("store stat needs a store file")?;
    let store = Store::open(input).map_err(|e| e.to_string())?;
    if args.has_flag("json") {
        return store_stat_json(input, &store);
    }
    println!("file           : {input}");
    println!("format         : {:?}", store.format_version());
    println!("backing        : {}", store.backing_kind());
    if store.mmap_fell_back() {
        println!("note           : mmap failed at open; using positional reads");
    }
    println!("chunks         : {}", store.len());
    println!("file bytes     : {}", store.file_bytes());
    println!("payload bytes  : {}", store.payload_bytes());
    match store.chunk_types() {
        Some((ft, it)) => println!("chunk types    : {} scales, {} indices", ft, it),
        None => println!("chunk types    : (empty store)"),
    }
    if !store.is_empty() {
        // Per-coder chunk counts from the footer, and the realized
        // entropy-coding win: actual payload bytes vs what the same
        // chunks would cost in the paper's fixed-width layout (from a
        // verified header peek per chunk — no full payload decode).
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..store.len() {
            let coder = store.try_chunk_coder(i).map_err(|e| e.to_string())?;
            *counts.entry(coder.name()).or_insert(0usize) += 1;
        }
        let coders: Vec<String> = counts.iter().map(|(n, c)| format!("{n}×{c}")).collect();
        println!("coders         : {}", coders.join(", "));
        let mut fixed_bits = 0u64;
        for i in 0..store.len() {
            fixed_bits += store
                .chunk_info(i)
                .map_err(|e| e.to_string())?
                .fixed_width_bits();
        }
        let fixed_bytes = fixed_bits.div_ceil(8);
        println!(
            "coding ratio   : {:.3}x vs fixed-width ({} -> {} payload bytes)",
            fixed_bytes as f64 / store.payload_bytes() as f64,
            fixed_bytes,
            store.payload_bytes()
        );
    }
    if !store.is_empty() {
        println!("label          min          max         mean      l2        ±linf");
        for e in store.entries() {
            println!(
                "{:>5}  {:>11.4e}  {:>11.4e}  {:>11.4e}  {:>8.3e}  {:>8.2e}",
                e.label,
                e.zone.stats.min_bound,
                e.zone.stats.max_bound,
                e.zone.mean(),
                e.zone.stats.l2_norm(),
                e.zone.bounds.linf
            );
        }
    }
    Ok(())
}

/// `store stat --json`: the same index accounting as the text form, as
/// one JSON object on stdout (hand-rolled — the workspace takes no
/// external dependencies).
fn store_stat_json(input: &str, store: &blazr_store::Store) -> Result<(), String> {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"file\": \"{}\",\n",
        input.replace('"', "\\\"")
    ));
    out.push_str(&format!(
        "  \"format\": \"{:?}\",\n",
        store.format_version()
    ));
    out.push_str(&format!("  \"backing\": \"{}\",\n", store.backing_kind()));
    out.push_str(&format!(
        "  \"mmap_fell_back\": {},\n",
        store.mmap_fell_back()
    ));
    out.push_str(&format!("  \"chunks\": {},\n", store.len()));
    out.push_str(&format!("  \"file_bytes\": {},\n", store.file_bytes()));
    out.push_str(&format!(
        "  \"payload_bytes\": {},\n",
        store.payload_bytes()
    ));
    match store.chunk_types() {
        Some((ft, it)) => out.push_str(&format!(
            "  \"float_type\": \"{ft}\",\n  \"index_type\": \"{it}\",\n"
        )),
        None => out.push_str("  \"float_type\": null,\n  \"index_type\": null,\n"),
    }
    let mut counts = std::collections::BTreeMap::new();
    let mut fixed_bits = 0u64;
    for i in 0..store.len() {
        let coder = store.try_chunk_coder(i).map_err(|e| e.to_string())?;
        *counts.entry(coder.name()).or_insert(0usize) += 1;
        fixed_bits += store
            .chunk_info(i)
            .map_err(|e| e.to_string())?
            .fixed_width_bits();
    }
    let coders: Vec<String> = counts
        .iter()
        .map(|(n, c)| format!("\"{n}\": {c}"))
        .collect();
    out.push_str(&format!("  \"coders\": {{{}}},\n", coders.join(", ")));
    out.push_str(&format!(
        "  \"fixed_width_bytes\": {},\n",
        fixed_bits.div_ceil(8)
    ));
    out.push_str("  \"zones\": [");
    for (i, e) in store.entries().iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!(
            "{sep}\n    {{\"label\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"l2\": {}, \"linf\": {}}}",
            e.label,
            json_num(e.zone.stats.min_bound),
            json_num(e.zone.stats.max_bound),
            json_num(e.zone.mean()),
            json_num(e.zone.stats.l2_norm()),
            json_num(e.zone.bounds.linf),
        ));
    }
    out.push_str("\n  ]\n}");
    println!("{out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_tensor::NdArray;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("blazr-cli-cmd-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_cli_pipeline() {
        // compress → info → stats → decompress → diff on real files.
        let raw = tmp("a.f64");
        let blz = tmp("a.blz");
        let back = tmp("a_back.f64");
        let a = NdArray::from_fn(vec![24, 24], |i| {
            (i[0] as f64 / 5.0).sin() + i[1] as f64 * 0.01
        });
        write_f64(&raw, &a).unwrap();

        run(&sv(&[
            "compress",
            raw.to_str().unwrap(),
            "--shape",
            "24x24",
            "--block",
            "8x8",
            "-o",
            blz.to_str().unwrap(),
        ]))
        .unwrap();
        run(&sv(&["info", blz.to_str().unwrap()])).unwrap();
        run(&sv(&["stats", blz.to_str().unwrap()])).unwrap();
        run(&sv(&[
            "decompress",
            blz.to_str().unwrap(),
            "-o",
            back.to_str().unwrap(),
        ]))
        .unwrap();
        let d = read_f64(&back, &[24, 24]).unwrap();
        let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        assert!(err < 1e-3, "roundtrip err {err}");

        run(&sv(&["diff", blz.to_str().unwrap(), blz.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn compress_with_all_options() {
        let raw = tmp("b.f64");
        let blz = tmp("b.blz");
        let a = NdArray::from_fn(vec![16, 16], |i| i[0] as f64 - i[1] as f64);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "compress",
            raw.to_str().unwrap(),
            "--shape",
            "16x16",
            "--block",
            "4x4",
            "--float",
            "f64",
            "--index",
            "i8",
            "--transform",
            "haar",
            "--keep",
            "8",
            "-o",
            blz.to_str().unwrap(),
        ]))
        .unwrap();
        let c = load_compressed(blz.to_str().unwrap()).unwrap();
        assert_eq!(c.float_type(), ScalarType::F64);
        assert_eq!(c.index_type(), IndexType::I8);
    }

    #[test]
    fn tune_command_finds_settings() {
        let raw = tmp("c.f64");
        let a = NdArray::from_fn(vec![32, 32], |i| (i[0] as f64 / 9.0).sin());
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "tune",
            raw.to_str().unwrap(),
            "--shape",
            "32x32",
            "--target-linf",
            "1e-3",
        ]))
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&["compress"])).is_err());
        assert!(run(&sv(&["diff", "only-one.blz"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&sv(&["help"])).is_ok());
    }

    #[test]
    fn store_cli_pipeline() {
        // ingest → stat → query (pruned and full scan agree; the range
        // predicate prunes at least one chunk of the row ramp).
        let raw = tmp("series.f64");
        let blzs = tmp("series.blzs");
        // 64 rows ramping 0..64 by row: chunks of 16 rows span disjoint
        // value ranges, so a [40, 50] predicate keeps only chunk 2 (rows
        // 32..48) and its neighbors' zone maps prune the rest.
        let a = NdArray::from_fn(vec![64, 16], |i| i[0] as f64 + (i[1] as f64) * 0.01);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "64x16",
            "--chunk-rows",
            "16",
            "--block",
            "8x8",
            "-o",
            blzs.to_str().unwrap(),
        ]))
        .unwrap();
        run(&sv(&["store", "stat", blzs.to_str().unwrap()])).unwrap();
        run(&sv(&[
            "store",
            "query",
            blzs.to_str().unwrap(),
            "--min",
            "40",
            "--max",
            "50",
            "--agg",
            "mean",
        ]))
        .unwrap();
        run(&sv(&[
            "store",
            "query",
            blzs.to_str().unwrap(),
            "--from",
            "16",
            "--to",
            "47",
            "--agg",
            "sum",
            "--full-scan",
        ]))
        .unwrap();

        // The library-level views agree with what the CLI just did.
        let store = blazr_store::Store::open(&blzs).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.labels(), vec![0, 16, 32, 48]);
        let q = blazr_store::Query {
            from_label: 0,
            to_label: u64::MAX,
            predicate: Some(blazr_store::Predicate::ValueInRange { lo: 40.0, hi: 50.0 }),
            aggregate: blazr_store::Aggregate::Mean,
        };
        let pruned = store.query(&q).unwrap();
        let full = store.query_full_scan(&q).unwrap();
        assert!(pruned.chunks_pruned >= 1);
        assert_eq!(pruned.value.to_bits(), full.value.to_bits());
        assert_eq!(pruned.matched_labels, full.matched_labels);
    }

    #[test]
    fn store_stat_json_and_telemetry_commands() {
        let raw = tmp("tele.f64");
        let blzs = tmp("tele.blzs");
        let a = NdArray::from_fn(vec![32, 8], |i| i[0] as f64);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "32x8",
            "--chunk-rows",
            "8",
            "--block",
            "8x8",
            "-o",
            blzs.to_str().unwrap(),
        ]))
        .unwrap();
        run(&sv(&["store", "stat", blzs.to_str().unwrap(), "--json"])).unwrap();
        run(&sv(&[
            "telemetry",
            blzs.to_str().unwrap(),
            "--min",
            "10",
            "--max",
            "20",
        ]))
        .unwrap();
        run(&sv(&[
            "telemetry",
            blzs.to_str().unwrap(),
            "--format",
            "prom",
            "--mode",
            "counters",
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "telemetry",
            blzs.to_str().unwrap(),
            "--format",
            "yaml"
        ]))
        .is_err());
        assert!(run(&sv(&[
            "telemetry",
            blzs.to_str().unwrap(),
            "--mode",
            "loud"
        ]))
        .is_err());
        // The query behind the dump actually recorded store metrics.
        let snap = tel::registry().snapshot();
        assert!(snap.counter("store.queries").unwrap_or(0) >= 2);
        tel::set_mode(tel::Mode::Off);
    }

    #[test]
    fn store_cli_errors_are_reported() {
        assert!(run(&sv(&["store"])).is_err());
        assert!(run(&sv(&["store", "frobnicate"])).is_err());
        assert!(run(&sv(&["store", "ingest"])).is_err());
        assert!(run(&sv(&["store", "query", "/no/such/file.blzs"])).is_err());
        let raw = tmp("tiny.f64");
        write_f64(&raw, &NdArray::from_fn(vec![4, 4], |_| 1.0)).unwrap();
        // Zero chunk rows rejected.
        assert!(run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "4x4",
            "--chunk-rows",
            "0",
            "-o",
            tmp("bad.blzs").to_str().unwrap(),
        ]))
        .is_err());
        // Conflicting predicate families rejected.
        let blzs = tmp("tiny.blzs");
        run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "4x4",
            "--chunk-rows",
            "4",
            "--block",
            "4x4",
            "-o",
            blzs.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "store",
            "query",
            blzs.to_str().unwrap(),
            "--min",
            "0",
            "--mean-min",
            "0",
        ]))
        .is_err());
        assert!(run(&sv(&[
            "store",
            "query",
            blzs.to_str().unwrap(),
            "--agg",
            "median",
        ]))
        .is_err());
    }

    #[test]
    fn store_verify_repair_and_degraded_query() {
        let raw = tmp("fault.f64");
        let blzs = tmp("fault.blzs");
        let a = NdArray::from_fn(vec![32, 8], |i| i[0] as f64);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "32x8",
            "--chunk-rows",
            "8",
            "--block",
            "8x8",
            "-o",
            blzs.to_str().unwrap(),
        ]))
        .unwrap();
        let p = blzs.to_str().unwrap();

        // Pristine store: everything reports clean.
        assert_eq!(run(&sv(&["store", "verify", p])).unwrap(), Outcome::Clean);
        assert_eq!(
            run(&sv(&["store", "verify", p, "--json"])).unwrap(),
            Outcome::Clean
        );
        assert_eq!(
            run(&sv(&["store", "query", p, "--degraded"])).unwrap(),
            Outcome::Clean
        );

        // Flip a byte inside chunk 1's payload (label 8).
        let off = {
            let store = blazr_store::Store::open(&blzs).unwrap();
            store.entries()[1].offset as usize
        };
        let mut bytes = fs::read(&blzs).unwrap();
        bytes[off + 4] ^= 0xFF;
        fs::write(&blzs, &bytes).unwrap();

        // Full-fidelity query refuses (exit 20); degraded answers from
        // the surviving chunks (exit 10); verify flags the chunk.
        assert_eq!(run(&sv(&["store", "query", p])).unwrap(), Outcome::Corrupt);
        assert_eq!(
            run(&sv(&["store", "query", p, "--degraded"])).unwrap(),
            Outcome::Degraded
        );
        assert_eq!(
            run(&sv(&["store", "verify", p])).unwrap(),
            Outcome::Degraded
        );

        // Repair rewrites the survivors; the result verifies clean and
        // holds exactly the undamaged labels.
        let fixed = tmp("fault_fixed.blzs");
        let fp = fixed.to_str().unwrap().to_string();
        assert_eq!(
            run(&sv(&["store", "repair", p, "-o", &fp])).unwrap(),
            Outcome::Degraded
        );
        assert_eq!(run(&sv(&["store", "verify", &fp])).unwrap(), Outcome::Clean);
        let repaired = blazr_store::Store::open(&fixed).unwrap();
        assert_eq!(repaired.labels(), vec![0, 16, 24]);
        drop(repaired);

        // Smash the trailer too: open fails, salvage takes over, and the
        // verdict is still degraded — never a hard error.
        let n = bytes.len();
        bytes[n - 16..].fill(0xAA);
        fs::write(&blzs, &bytes).unwrap();
        assert_eq!(
            run(&sv(&["store", "verify", p])).unwrap(),
            Outcome::Degraded
        );
        assert_eq!(
            run(&sv(&["store", "query", p, "--degraded"])).unwrap(),
            Outcome::Degraded
        );
        assert_eq!(run(&sv(&["store", "query", p])).unwrap(), Outcome::Corrupt);

        // All-garbage file: corrupt verdict (exit 20), not a usage error.
        let junk = tmp("junk.blzs");
        fs::write(&junk, vec![0x5Au8; 256]).unwrap();
        let jp = junk.to_str().unwrap();
        assert_eq!(
            run(&sv(&["store", "verify", jp])).unwrap(),
            Outcome::Corrupt
        );
        assert_eq!(
            run(&sv(&["store", "verify", jp, "--json"])).unwrap(),
            Outcome::Corrupt
        );
        assert_eq!(
            run(&sv(&["store", "repair", jp, "-o", &fp])).unwrap(),
            Outcome::Corrupt
        );
    }

    #[test]
    fn garbage_compressed_file_is_rejected() {
        let p = tmp("garbage.blz");
        fs::write(&p, [0x55u8; 100]).unwrap();
        assert!(run(&sv(&["info", p.to_str().unwrap()])).is_err());
    }

    #[test]
    fn serve_command_roundtrip() {
        use blazr_serve::{http_get, TcpConn};
        use std::time::Duration;

        let raw = tmp("serve.f64");
        let blzs = tmp("serve.blzs");
        let a = NdArray::from_fn(vec![32, 8], |i| i[0] as f64);
        write_f64(&raw, &a).unwrap();
        run(&sv(&[
            "store",
            "ingest",
            raw.to_str().unwrap(),
            "--shape",
            "32x8",
            "--chunk-rows",
            "8",
            "--block",
            "8x8",
            "-o",
            blzs.to_str().unwrap(),
        ]))
        .unwrap();
        // Bit-rot one chunk so served query answers are 206/degraded.
        let off = {
            let store = blazr_store::Store::open(&blzs).unwrap();
            store.entries()[1].offset as usize
        };
        let mut bytes = fs::read(&blzs).unwrap();
        bytes[off + 4] ^= 0xFF;
        fs::write(&blzs, &bytes).unwrap();

        // Pick a free port, then let the command bind it for real.
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let server = std::thread::spawn({
            let p = blzs.to_str().unwrap().to_string();
            let addr = addr.clone();
            move || {
                run(&sv(&[
                    "serve",
                    &p,
                    "--addr",
                    &addr,
                    "--workers",
                    "2",
                    "--max-requests",
                    "2",
                ]))
            }
        });
        let get = |target: &str| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                if let Ok(mut conn) = TcpConn::connect(&addr) {
                    if let Ok(resp) = http_get(&mut conn, target, Duration::from_secs(5)) {
                        return resp;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "server never came up");
                std::thread::sleep(Duration::from_millis(20));
            }
        };
        assert_eq!(get("/healthz").status, 200);
        let resp = get("/query?agg=sum");
        assert_eq!(resp.status, 206, "bit-rotted store must answer degraded");
        assert!(resp.body_text().contains("\"degraded\":true"));
        // After --max-requests the server drains itself and the command
        // exits with the degraded taxonomy code.
        assert_eq!(server.join().unwrap().unwrap(), Outcome::Degraded);
    }
}
