//! `blazr` — command-line interface to the compressed-array codec.
//!
//! Raw inputs are flat little-endian `f64` files plus an explicit
//! `--shape`; compressed files use the bit-exact §IV-C layout produced by
//! `blazr::serialize` (so they are portable across the CLI and library).
//!
//! ```text
//! blazr compress  data.f64 --shape 100x200 --block 8x8 -o data.blz
//! blazr decompress data.blz -o roundtrip.f64
//! blazr info      data.blz
//! blazr stats     data.blz
//! blazr diff      a.blz b.blz [--wasserstein-p 2]
//! blazr tune      data.f64 --shape 100x200 --target-linf 1e-3
//! ```
#![forbid(unsafe_code)]

mod args;
mod commands;
mod io;

use commands::Outcome;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Store-health-aware commands report how they found the data through
    // distinct exit codes so scripts can branch: 0 clean, 10 degraded
    // (answered, but some chunks were skipped), 20 corrupt beyond
    // salvage. Anything else (bad usage, I/O failures) exits 1.
    match commands::run(&argv) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Degraded) => ExitCode::from(10),
        Ok(Outcome::Corrupt) => ExitCode::from(20),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `blazr help` for usage");
            ExitCode::FAILURE
        }
    }
}
