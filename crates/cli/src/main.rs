//! `blazr` — command-line interface to the compressed-array codec.
//!
//! Raw inputs are flat little-endian `f64` files plus an explicit
//! `--shape`; compressed files use the bit-exact §IV-C layout produced by
//! `blazr::serialize` (so they are portable across the CLI and library).
//!
//! ```text
//! blazr compress  data.f64 --shape 100x200 --block 8x8 -o data.blz
//! blazr decompress data.blz -o roundtrip.f64
//! blazr info      data.blz
//! blazr stats     data.blz
//! blazr diff      a.blz b.blz [--wasserstein-p 2]
//! blazr tune      data.f64 --shape 100x200 --target-linf 1e-3
//! ```
#![forbid(unsafe_code)]

mod args;
mod commands;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `blazr help` for usage");
            ExitCode::FAILURE
        }
    }
}
