//! Hand-rolled argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: positionals plus `--key value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    pub positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name). Options listed in
    /// `flag_names` take no value.
    pub fn parse(argv: &[String], flag_names: &[&str]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if flag_names.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("option --{name} needs a value"))?;
                    out.options.insert(name.to_string(), v.clone());
                }
            } else if let Some(name) = a.strip_prefix('-') {
                // Short options: only -o is defined.
                match name {
                    "o" => {
                        let v = it.next().ok_or("option -o needs a value")?;
                        out.options.insert("output".to_string(), v.clone());
                    }
                    _ => return Err(format!("unknown option -{name}")),
                }
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// True if the boolean flag `name` was given.
    #[allow(dead_code)] // parser API; currently only `--quick`-style flags use it
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.option(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }
}

/// Parses a shape like `3x224x224` or `1000`.
pub fn parse_shape(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X']).map(str::parse::<usize>).collect();
    let dims = dims.map_err(|e| format!("bad shape {s:?}: {e}"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("bad shape {s:?}: extents must be positive"));
    }
    Ok(dims)
}

/// Parses a float type name (`bf16|f16|f32|f64`, PyTorch-style aliases
/// accepted).
pub fn parse_float_type(s: &str) -> Result<blazr::ScalarType, String> {
    use blazr::ScalarType::*;
    Ok(match s {
        "bf16" | "bfloat16" => BF16,
        "f16" | "float16" | "half" => F16,
        "f32" | "float32" | "single" => F32,
        "f64" | "float64" | "double" => F64,
        _ => return Err(format!("unknown float type {s:?}")),
    })
}

/// Parses an index type name (`i8|i16|i32|i64`, `int8`-style accepted).
pub fn parse_index_type(s: &str) -> Result<blazr::IndexType, String> {
    use blazr::IndexType::*;
    Ok(match s {
        "i8" | "int8" => I8,
        "i16" | "int16" => I16,
        "i32" | "int32" => I32,
        "i64" | "int64" => I64,
        _ => return Err(format!("unknown index type {s:?}")),
    })
}

/// Parses a transform name.
pub fn parse_transform(s: &str) -> Result<blazr::TransformKind, String> {
    use blazr::TransformKind::*;
    Ok(match s {
        "dct" => Dct,
        "haar" => Haar,
        "wht" | "walsh-hadamard" | "hadamard" => WalshHadamard,
        "identity" | "none" => Identity,
        _ => return Err(format!("unknown transform {s:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let a = Args::parse(
            &sv(&["in.f64", "--shape", "4x4", "-o", "out.blz", "--verbose"]),
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.positionals, vec!["in.f64"]);
        assert_eq!(a.option("shape"), Some("4x4"));
        assert_eq!(a.option("output"), Some("out.blz"));
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&sv(&["--shape"]), &[]).is_err());
        assert!(Args::parse(&sv(&["-o"]), &[]).is_err());
        assert!(Args::parse(&sv(&["-x"]), &[]).is_err());
    }

    #[test]
    fn shape_parsing() {
        assert_eq!(parse_shape("3x224x224").unwrap(), vec![3, 224, 224]);
        assert_eq!(parse_shape("1000").unwrap(), vec![1000]);
        assert!(parse_shape("0x4").is_err());
        assert!(parse_shape("axb").is_err());
        assert!(parse_shape("").is_err());
    }

    #[test]
    fn type_parsing() {
        assert_eq!(parse_float_type("f32").unwrap(), blazr::ScalarType::F32);
        assert_eq!(
            parse_float_type("bfloat16").unwrap(),
            blazr::ScalarType::BF16
        );
        assert!(parse_float_type("f128").is_err());
        assert_eq!(parse_index_type("int16").unwrap(), blazr::IndexType::I16);
        assert!(parse_index_type("u8").is_err());
        assert_eq!(
            parse_transform("hadamard").unwrap(),
            blazr::TransformKind::WalshHadamard
        );
        assert!(parse_transform("fft").is_err());
    }
}
