//! The compressed representation `{s, i, N, F}` (paper §III-B).

use crate::{BinIndex, BlazError, Settings};
use blazr_precision::Real;
use blazr_telemetry as tel;
use blazr_tensor::blocking::{scatter_block, Blocked};
use blazr_tensor::shape::{ceil_div, ceil_div_count, num_elements};
use blazr_tensor::NdArray;
use blazr_transform::BlockTransform;
use rayon::prelude::*;

/// A compressed array: original shape `s`, settings (block shape `i`,
/// transform, pruning mask), per-block biggest coefficient `N`, and the
/// flattened kept bin indices `F` (block-major).
///
/// `P` is the floating-point format of all internal arithmetic and of the
/// stored `N`; `I` is the bin index type. Binary compressed-space
/// operations require both operands to share `P`, `I`, shape, and settings.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedArray<P, I> {
    pub(crate) shape: Vec<usize>,
    pub(crate) settings: Settings,
    /// `N`: the biggest-magnitude coefficient of each block.
    pub(crate) biggest: Vec<P>,
    /// `F`: kept bin indices, `kept_count` per block, block-major.
    pub(crate) indices: Vec<I>,
}

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// The original (uncompressed) shape `s`.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The compression settings.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// The block shape `i`.
    pub fn block_shape(&self) -> &[usize] {
        &self.settings.block_shape
    }

    /// The block arrangement `b = ⌈s ⊘ i⌉`.
    pub fn num_blocks(&self) -> Vec<usize> {
        ceil_div(&self.shape, &self.settings.block_shape)
    }

    /// Total number of blocks `Πb`. Allocation-free (per-chunk hot
    /// paths call this once per chunk).
    pub fn block_count(&self) -> usize {
        ceil_div_count(&self.shape, &self.settings.block_shape)
    }

    /// Kept coefficients per block `ΣP`.
    pub fn kept_per_block(&self) -> usize {
        self.settings.mask.kept_count()
    }

    /// The per-block biggest coefficients `N`.
    pub fn biggest(&self) -> &[P] {
        &self.biggest
    }

    /// The flattened bin indices `F` (block-major, `kept_per_block` each).
    pub fn indices(&self) -> &[I] {
        &self.indices
    }

    /// Bin indices of block `kb`.
    pub fn block_indices(&self, kb: usize) -> &[I] {
        let k = self.kept_per_block();
        &self.indices[kb * k..(kb + 1) * k]
    }

    /// Reconstructs the specified coefficient at kept slot `slot` of block
    /// `kb` (Algorithm 3, one element): `N_k · (F/r)`.
    #[inline]
    pub(crate) fn coeff(&self, kb: usize, slot: usize) -> P {
        let f = self.indices[kb * self.kept_per_block() + slot];
        P::from_f64(f.unbin()) * self.biggest[kb]
    }

    /// The specified coefficients `Ĉ` (Algorithm 3), unflattened into full
    /// blocks with zeros at pruned positions.
    pub fn specified_coefficients(&self) -> Blocked<P> {
        let nb = self.num_blocks();
        let mut out = Blocked::<P>::zeros(nb, self.settings.block_shape.clone());
        let kept = self.settings.mask.kept_positions();
        out.par_blocks_mut()
            .enumerate()
            .for_each(|(kb, block)| self.unbin_block(kb, kept, block));
        out
    }

    /// Unbins one block's specified coefficients into `block` (zeros at
    /// pruned positions) — the per-block equivalent of
    /// [`CompressedArray::specified_coefficients`].
    #[inline]
    fn unbin_block(&self, kb: usize, kept: &[usize], block: &mut [P]) {
        let k = kept.len();
        let n = self.biggest[kb];
        if k == block.len() {
            // Full mask: kept positions are exactly 0..block_len in order,
            // so no zero-fill or position indirection is needed.
            let idx = &self.indices[kb * k..(kb + 1) * k];
            for (b, &f) in block.iter_mut().zip(idx) {
                *b = P::from_f64(f.unbin()) * n;
            }
        } else {
            block.fill(P::zero());
            for (slot, &pos) in kept.iter().enumerate() {
                let f = self.indices[kb * k + slot];
                block[pos] = P::from_f64(f.unbin()) * n;
            }
        }
    }

    /// Decompresses back to an `f64` array: scale indices by `N`,
    /// unflatten, inverse-transform each block, merge, crop (§III-B).
    pub fn decompress(&self) -> NdArray<f64> {
        self.decompress_values().convert()
    }

    /// Decompresses into the working precision `P`, fusing unbin → inverse
    /// transform → block scatter: each block is reconstructed in
    /// thread-local scratch and its in-bounds region row-copied straight
    /// into the output, so no `n_blocks × block_len` coefficient buffer is
    /// materialized.
    ///
    /// Work is parallelized over outermost-axis slabs — the contiguous
    /// output region a row of blocks writes — so writes stay disjoint and
    /// the result is bit-identical to the staged path
    /// ([`CompressedArray::specified_coefficients`] → inverse →
    /// [`Blocked::merge`]) at any thread count. When the leading axis is
    /// too thin to feed the thread team (few slabs, many blocks each),
    /// the staged path — parallel per block and per output row — is used
    /// instead; both paths produce the same bits
    /// (`tests/fused_pipeline.rs`), so the choice never shows in results.
    pub fn decompress_values(&self) -> NdArray<P> {
        let _span = tel::span!("codec.decompress");
        tel::count!("codec.decompress.blocks", self.block_count() as u64);
        let bt = BlockTransform::<P>::new(self.settings.transform, &self.settings.block_shape);
        let block_len = bt.block_len().max(1);
        let kept = self.settings.mask.kept_positions();
        let nb = self.num_blocks();
        let d = self.shape.len();

        if d == 0 {
            let mut out = NdArray::<P>::full(self.shape.clone(), P::zero());
            let mut block = vec![P::zero(); block_len];
            let mut scratch = vec![P::zero(); block_len];
            self.unbin_block(0, kept, &mut block);
            bt.inverse(&mut block, &mut scratch);
            out.as_mut_slice()[0] = block[0];
            return out;
        }

        let blocks_per_slab = nb[1..].iter().product::<usize>();
        if nb[0] < rayon::current_num_threads() && blocks_per_slab > 1 {
            // Thin leading axis: slab parallelism would idle most of the
            // team, so take the staged per-block/per-row parallel path.
            return self.decompress_values_staged(&bt);
        }

        let mut out = NdArray::<P>::full(self.shape.clone(), P::zero());
        if out.is_empty() {
            return out;
        }

        // One slab = all output rows covered by blocks sharing the first
        // block coordinate: `bs[0]` leading-axis layers (fewer at a ragged
        // tail), each a contiguous `Π s[1..]` span.
        let slab_len = self.settings.block_shape[0] * self.shape[1..].iter().product::<usize>();
        let shape = &self.shape;
        let bs = &self.settings.block_shape;
        let min_slabs = (2048 / slab_len.max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(slab_len)
            .enumerate()
            .with_min_len(min_slabs)
            .for_each_init(
                || (vec![P::zero(); block_len], vec![P::zero(); block_len]),
                |(block, scratch), (j0, slab)| {
                    let slab_start = j0 * slab_len;
                    for kb in j0 * blocks_per_slab..(j0 + 1) * blocks_per_slab {
                        let mut sw = tel::Stopwatch::start();
                        self.unbin_block(kb, kept, block);
                        sw.lap(tel::histogram!("codec.decompress.unbin"));
                        bt.inverse(block, scratch);
                        sw.lap(tel::histogram!("codec.decompress.inverse"));
                        scatter_block(block, shape, &nb, bs, kb, slab, slab_start);
                        sw.lap(tel::histogram!("codec.decompress.scatter"));
                    }
                },
            );
        out
    }

    /// The staged decompression pipeline: materialize the specified
    /// coefficients, inverse-transform blocks in parallel, then merge
    /// (row-parallel). Slower than the fused path on wide arrays but
    /// parallel in the block count rather than the leading-axis extent.
    fn decompress_values_staged(&self, bt: &BlockTransform<P>) -> NdArray<P> {
        let mut blocked = self.specified_coefficients();
        let block_len = bt.block_len().max(1);
        blocked.par_blocks_mut().for_each_init(
            || vec![P::zero(); block_len],
            |scratch, block| bt.inverse(block, scratch),
        );
        blocked.merge(&self.shape)
    }

    /// Checks binary-operation compatibility (Table I operations require
    /// equal shapes and identical settings).
    pub(crate) fn check_compatible(&self, other: &Self) -> Result<(), BlazError> {
        if self.shape != other.shape {
            return Err(BlazError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        if self.settings != other.settings {
            return Err(BlazError::SettingsMismatch);
        }
        Ok(())
    }

    /// Ensures DC-based operations are possible.
    pub(crate) fn require_dc(&self) -> Result<(), BlazError> {
        if self.settings.dc_available() {
            Ok(())
        } else {
            Err(BlazError::DcUnavailable)
        }
    }
}

impl<P: blazr_precision::StorableReal, I: BinIndex> CompressedArray<P, I> {
    /// In-memory footprint of the compressed payload in bits, following
    /// the §IV-C accounting (see [`crate::ratio`] for the breakdown).
    pub fn payload_bits(&self) -> u64 {
        crate::ratio::serialized_bits(
            &self.shape,
            &self.settings.block_shape,
            P::BITS,
            I::BITS,
            self.kept_per_block(),
        )
    }

    /// Compression ratio achieved against a `u`-bit-per-element original.
    pub fn compression_ratio_from(&self, original_bits_per_element: u32) -> f64 {
        let raw = original_bits_per_element as u64 * num_elements(&self.shape) as u64;
        raw as f64 / self.payload_bits() as f64
    }

    /// Compression ratio against an FP64 original (the common case in the
    /// paper's experiments).
    pub fn compression_ratio(&self) -> f64 {
        self.compression_ratio_from(64)
    }
}
