//! Bin index types (paper §III-A(d)).
//!
//! Binned coefficients are stored as signed integers of a user-chosen
//! width. The *index type radius* is `r = 2^(b−1) − 1`, giving `2r + 1`
//! bins centered at zero; wider types mean finer coefficient rounding at
//! the cost of compression ratio.

/// Runtime tag for the bin index width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexType {
    /// 8-bit indices (radius 127).
    I8,
    /// 16-bit indices (radius 32767).
    I16,
    /// 32-bit indices.
    I32,
    /// 64-bit indices.
    I64,
}

impl IndexType {
    /// All variants in serialization-tag order.
    pub const ALL: [IndexType; 4] = [
        IndexType::I8,
        IndexType::I16,
        IndexType::I32,
        IndexType::I64,
    ];

    /// Width in bits (the `i` of §IV-C's accounting).
    pub fn bits(self) -> u32 {
        match self {
            IndexType::I8 => 8,
            IndexType::I16 => 16,
            IndexType::I32 => 32,
            IndexType::I64 => 64,
        }
    }

    /// The index type radius `r = 2^(b−1) − 1`.
    pub fn radius(self) -> i64 {
        match self {
            IndexType::I8 => i8::MAX as i64,
            IndexType::I16 => i16::MAX as i64,
            IndexType::I32 => i32::MAX as i64,
            IndexType::I64 => i64::MAX,
        }
    }

    /// Name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            IndexType::I8 => "int8",
            IndexType::I16 => "int16",
            IndexType::I32 => "int32",
            IndexType::I64 => "int64",
        }
    }

    /// 2-bit serialization tag.
    pub fn tag(self) -> u8 {
        match self {
            IndexType::I8 => 0,
            IndexType::I16 => 1,
            IndexType::I32 => 2,
            IndexType::I64 => 3,
        }
    }

    /// Inverse of [`IndexType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(IndexType::I8),
            1 => Some(IndexType::I16),
            2 => Some(IndexType::I32),
            3 => Some(IndexType::I64),
            _ => None,
        }
    }
}

impl std::fmt::Display for IndexType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A signed integer type usable as a bin index.
pub trait BinIndex: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The runtime tag for this width.
    const TYPE: IndexType;
    /// Width in bits.
    const BITS: u32;

    /// The radius `r` as `i64`.
    fn radius_i64() -> i64 {
        Self::TYPE.radius()
    }

    /// The radius `r` as `f64` (lossy for i64, which is unavoidable — the
    /// binning arithmetic is floating point).
    fn radius_f64() -> f64 {
        Self::TYPE.radius() as f64
    }

    /// Converts from a clamped `i64` (callers guarantee `|v| ≤ r`).
    fn from_i64(v: i64) -> Self;

    /// Widens to `i64`.
    fn to_i64(self) -> i64;

    /// Bins a ratio `q = c / N ∈ [−1, 1]` (possibly slightly outside from
    /// rounding, possibly NaN) into an index in `[−r, r]`.
    fn bin(q: f64) -> Self {
        if q.is_nan() {
            return Self::from_i64(0);
        }
        let r = Self::radius_f64();
        let v = (q * r).round().clamp(-r, r);
        // `as` saturates; the integer clamp keeps the i64 radius edge case
        // (where `r as f64` rounds up to 2^63) inside [−r, r].
        let ri = Self::radius_i64();
        Self::from_i64((v as i64).clamp(-ri, ri))
    }

    /// The reconstruction ratio `q = F / r ∈ [−1, 1]`.
    fn unbin(self) -> f64 {
        self.to_i64() as f64 / Self::radius_f64()
    }
}

impl BinIndex for i8 {
    const TYPE: IndexType = IndexType::I8;
    const BITS: u32 = 8;
    fn from_i64(v: i64) -> Self {
        v as i8
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i16 {
    const TYPE: IndexType = IndexType::I16;
    const BITS: u32 = 16;
    fn from_i64(v: i64) -> Self {
        v as i16
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i32 {
    const TYPE: IndexType = IndexType::I32;
    const BITS: u32 = 32;
    fn from_i64(v: i64) -> Self {
        v as i32
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i64 {
    const TYPE: IndexType = IndexType::I64;
    const BITS: u32 = 64;
    fn from_i64(v: i64) -> Self {
        v
    }
    fn to_i64(self) -> i64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_values() {
        assert_eq!(IndexType::I8.radius(), 127);
        assert_eq!(IndexType::I16.radius(), 32767);
        assert_eq!(IndexType::I32.radius(), 2_147_483_647);
        assert_eq!(IndexType::I64.radius(), i64::MAX);
    }

    #[test]
    fn tags_roundtrip() {
        for t in IndexType::ALL {
            assert_eq!(IndexType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(IndexType::from_tag(7), None);
    }

    #[test]
    fn bin_endpoints_and_center() {
        assert_eq!(<i8 as BinIndex>::bin(1.0), 127);
        assert_eq!(<i8 as BinIndex>::bin(-1.0), -127);
        assert_eq!(<i8 as BinIndex>::bin(0.0), 0);
        // Slightly out of range (rounding slop) clamps instead of wrapping.
        assert_eq!(<i8 as BinIndex>::bin(1.2), 127);
        assert_eq!(<i8 as BinIndex>::bin(-55.0), -127);
    }

    #[test]
    fn bin_nan_is_zero() {
        assert_eq!(<i16 as BinIndex>::bin(f64::NAN), 0);
    }

    #[test]
    fn bin_unbin_error_is_within_half_bin() {
        for t in 0..200 {
            let q = -1.0 + t as f64 / 100.0;
            for err in [
                (<i8 as BinIndex>::bin(q).unbin() - q).abs() * 127.0,
                (<i16 as BinIndex>::bin(q).unbin() - q).abs() * 32767.0,
            ] {
                assert!(err <= 0.5 + 1e-9, "q={q} err(in bins)={err}");
            }
        }
    }

    #[test]
    fn i16_is_finer_than_i8() {
        let q = 0.123456;
        let e8 = (<i8 as BinIndex>::bin(q).unbin() - q).abs();
        let e16 = (<i16 as BinIndex>::bin(q).unbin() - q).abs();
        assert!(e16 < e8);
    }

    #[test]
    fn i64_bins_do_not_overflow() {
        let v = <i64 as BinIndex>::bin(1.0);
        assert!(v > 0);
        assert_eq!(<i64 as BinIndex>::bin(-1.0), -v);
    }
}
