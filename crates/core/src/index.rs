//! Bin index types (paper §III-A(d)).
//!
//! Binned coefficients are stored as signed integers of a user-chosen
//! width. The *index type radius* is `r = 2^(b−1) − 1`, giving `2r + 1`
//! bins centered at zero; wider types mean finer coefficient rounding at
//! the cost of compression ratio.

/// Runtime tag for the bin index width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexType {
    /// 8-bit indices (radius 127).
    I8,
    /// 16-bit indices (radius 32767).
    I16,
    /// 32-bit indices.
    I32,
    /// 64-bit indices.
    I64,
}

impl IndexType {
    /// All variants in serialization-tag order.
    pub const ALL: [IndexType; 4] = [
        IndexType::I8,
        IndexType::I16,
        IndexType::I32,
        IndexType::I64,
    ];

    /// Width in bits (the `i` of §IV-C's accounting).
    pub fn bits(self) -> u32 {
        match self {
            IndexType::I8 => 8,
            IndexType::I16 => 16,
            IndexType::I32 => 32,
            IndexType::I64 => 64,
        }
    }

    /// The index type radius `r = 2^(b−1) − 1`.
    pub fn radius(self) -> i64 {
        match self {
            IndexType::I8 => i8::MAX as i64,
            IndexType::I16 => i16::MAX as i64,
            IndexType::I32 => i32::MAX as i64,
            IndexType::I64 => i64::MAX,
        }
    }

    /// Name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            IndexType::I8 => "int8",
            IndexType::I16 => "int16",
            IndexType::I32 => "int32",
            IndexType::I64 => "int64",
        }
    }

    /// 2-bit serialization tag.
    pub fn tag(self) -> u8 {
        match self {
            IndexType::I8 => 0,
            IndexType::I16 => 1,
            IndexType::I32 => 2,
            IndexType::I64 => 3,
        }
    }

    /// Inverse of [`IndexType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(IndexType::I8),
            1 => Some(IndexType::I16),
            2 => Some(IndexType::I32),
            3 => Some(IndexType::I64),
            _ => None,
        }
    }
}

impl std::fmt::Display for IndexType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A signed integer type usable as a bin index.
pub trait BinIndex: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The runtime tag for this width.
    const TYPE: IndexType;
    /// Width in bits.
    const BITS: u32;

    /// The radius `r` as `i64`.
    fn radius_i64() -> i64 {
        Self::TYPE.radius()
    }

    /// The radius `r` as `f64` (lossy for i64, which is unavoidable — the
    /// binning arithmetic is floating point).
    fn radius_f64() -> f64 {
        Self::TYPE.radius() as f64
    }

    /// Converts from a clamped `i64` (callers guarantee `|v| ≤ r`).
    fn from_i64(v: i64) -> Self;

    /// Widens to `i64`.
    fn to_i64(self) -> i64;

    /// Bins a ratio `q = c / N ∈ [−1, 1]` (possibly slightly outside from
    /// rounding, possibly NaN) into an index in `[−r, r]`.
    fn bin(q: f64) -> Self {
        if q.is_nan() {
            return Self::from_i64(0);
        }
        let r = Self::radius_f64();
        let v = round_half_away(q * r).clamp(-r, r);
        // `as` saturates; the integer clamp keeps the i64 radius edge case
        // (where `r as f64` rounds up to 2^63) inside [−r, r].
        let ri = Self::radius_i64();
        Self::from_i64((v as i64).clamp(-ri, ri))
    }

    /// The reconstruction ratio `q = F / r ∈ [−1, 1]`.
    fn unbin(self) -> f64 {
        self.to_i64() as f64 / Self::radius_f64()
    }
}

/// `f64::round` (half away from zero) without the libm call.
///
/// Below 2^53 every f64 has `ulp ≤ 1`, so truncation via `as i64` (and
/// back) is exact and the fractional part `x - trunc(x)` is exactly
/// representable; the select-based half-away adjustment then reproduces
/// `round` bit for bit (up to the sign of a zero result, which the
/// integer cast in [`BinIndex::bin`] erases). At or beyond 2^53 —
/// reachable only through the i64 radius — floats are already integral
/// and `f64::round` handles them (and ±∞).
#[inline]
fn round_half_away(x: f64) -> f64 {
    const INT_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.abs() < INT_EXACT {
        let t = x as i64 as f64;
        let f = x - t;
        // Select arithmetic, not branches: the fraction's side of 0.5 is
        // effectively random in the binning loop and would mispredict.
        let up = (f >= 0.5) as u8 as f64;
        let down = (f <= -0.5) as u8 as f64;
        t + up - down
    } else {
        x.round()
    }
}

impl BinIndex for i8 {
    const TYPE: IndexType = IndexType::I8;
    const BITS: u32 = 8;
    fn from_i64(v: i64) -> Self {
        v as i8
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i16 {
    const TYPE: IndexType = IndexType::I16;
    const BITS: u32 = 16;
    fn from_i64(v: i64) -> Self {
        v as i16
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i32 {
    const TYPE: IndexType = IndexType::I32;
    const BITS: u32 = 32;
    fn from_i64(v: i64) -> Self {
        v as i32
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
}

impl BinIndex for i64 {
    const TYPE: IndexType = IndexType::I64;
    const BITS: u32 = 64;
    fn from_i64(v: i64) -> Self {
        v
    }
    fn to_i64(self) -> i64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_values() {
        assert_eq!(IndexType::I8.radius(), 127);
        assert_eq!(IndexType::I16.radius(), 32767);
        assert_eq!(IndexType::I32.radius(), 2_147_483_647);
        assert_eq!(IndexType::I64.radius(), i64::MAX);
    }

    #[test]
    fn tags_roundtrip() {
        for t in IndexType::ALL {
            assert_eq!(IndexType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(IndexType::from_tag(7), None);
    }

    #[test]
    fn bin_endpoints_and_center() {
        assert_eq!(<i8 as BinIndex>::bin(1.0), 127);
        assert_eq!(<i8 as BinIndex>::bin(-1.0), -127);
        assert_eq!(<i8 as BinIndex>::bin(0.0), 0);
        // Slightly out of range (rounding slop) clamps instead of wrapping.
        assert_eq!(<i8 as BinIndex>::bin(1.2), 127);
        assert_eq!(<i8 as BinIndex>::bin(-55.0), -127);
    }

    #[test]
    fn bin_nan_is_zero() {
        assert_eq!(<i16 as BinIndex>::bin(f64::NAN), 0);
    }

    #[test]
    fn bin_unbin_error_is_within_half_bin() {
        for t in 0..200 {
            let q = -1.0 + t as f64 / 100.0;
            for err in [
                (<i8 as BinIndex>::bin(q).unbin() - q).abs() * 127.0,
                (<i16 as BinIndex>::bin(q).unbin() - q).abs() * 32767.0,
            ] {
                assert!(err <= 0.5 + 1e-9, "q={q} err(in bins)={err}");
            }
        }
    }

    #[test]
    fn i16_is_finer_than_i8() {
        let q = 0.123456;
        let e8 = (<i8 as BinIndex>::bin(q).unbin() - q).abs();
        let e16 = (<i16 as BinIndex>::bin(q).unbin() - q).abs();
        assert!(e16 < e8);
    }

    #[test]
    fn i64_bins_do_not_overflow() {
        let v = <i64 as BinIndex>::bin(1.0);
        assert!(v > 0);
        assert_eq!(<i64 as BinIndex>::bin(-1.0), -v);
    }

    #[test]
    fn round_half_away_matches_f64_round() {
        // Dense sweep plus the exact .5 boundaries and their neighbours,
        // where a naive `trunc(x + 0.5)` rewrite would diverge.
        let mut probes: Vec<f64> = Vec::new();
        for t in -4000..=4000 {
            probes.push(t as f64 / 16.0); // hits k + {0, .25, .5, .75} exactly
        }
        for k in 0..200 {
            let half = k as f64 + 0.5;
            for v in [half, -half] {
                probes.push(v);
                let mut lo = v;
                let mut hi = v;
                for _ in 0..2 {
                    lo = f64::from_bits(if lo > 0.0 {
                        lo.to_bits() - 1
                    } else {
                        lo.to_bits() + 1
                    });
                    hi = f64::from_bits(if hi > 0.0 {
                        hi.to_bits() + 1
                    } else {
                        hi.to_bits() - 1
                    });
                    probes.push(lo);
                    probes.push(hi);
                }
            }
        }
        // The largest double below 0.5 — the classic x + 0.5 == 1.0 trap.
        probes.push(0.49999999999999994);
        probes.push(-0.49999999999999994);
        // Values around and beyond the integer-exact threshold.
        for v in [
            2f64.powi(52) - 1.5,
            2f64.powi(52),
            2f64.powi(53) - 0.5,
            2f64.powi(53),
            2f64.powi(60),
            f64::INFINITY,
        ] {
            probes.push(v);
            probes.push(-v);
        }
        for &x in &probes {
            let got = round_half_away(x);
            let want = x.round();
            // ±0.0 may differ in sign (invisible to the integer cast in
            // `bin`); everything else must match bit for bit.
            if want == 0.0 {
                assert_eq!(got, 0.0, "x = {x:e}");
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "x = {x:e}");
            }
        }
    }

    #[test]
    fn bin_matches_round_based_reference_densely() {
        // The emitted index must equal the original `round()`-based
        // formula everywhere, including far out of range.
        fn reference<I: BinIndex>(q: f64) -> I {
            if q.is_nan() {
                return I::from_i64(0);
            }
            let r = I::radius_f64();
            let v = (q * r).round().clamp(-r, r);
            let ri = I::radius_i64();
            I::from_i64((v as i64).clamp(-ri, ri))
        }
        for t in -30000..=30000 {
            let q = t as f64 / 10007.0;
            assert_eq!(<i8 as BinIndex>::bin(q), reference::<i8>(q), "q = {q}");
            assert_eq!(<i16 as BinIndex>::bin(q), reference::<i16>(q), "q = {q}");
            assert_eq!(<i32 as BinIndex>::bin(q), reference::<i32>(q), "q = {q}");
            assert_eq!(<i64 as BinIndex>::bin(q), reference::<i64>(q), "q = {q}");
        }
        for q in [f64::INFINITY, f64::NEG_INFINITY, 1e300, -1e300] {
            assert_eq!(<i64 as BinIndex>::bin(q), reference::<i64>(q), "q = {q}");
            assert_eq!(<i8 as BinIndex>::bin(q), reference::<i8>(q), "q = {q}");
        }
    }
}
