//! Compression: the five-step pipeline of paper §III-A.

use crate::report::CompressionReport;
use crate::{BinIndex, BlazError, CompressedArray, Settings};
use blazr_precision::Real;
use blazr_telemetry as tel;
use blazr_tensor::blocking::{gather_block, Blocked};
use blazr_tensor::shape::{ceil_div, num_elements};
use blazr_tensor::NdArray;
use blazr_transform::BlockTransform;
use rayon::prelude::*;

/// Compresses `input` with the given settings, choosing the internal
/// float format `P` and bin index type `I` at the type level.
///
/// ```
/// use blazr::{compress, Settings};
/// use blazr_tensor::NdArray;
/// let a = NdArray::from_fn(vec![16, 16], |i| (i[0] as f64).sin() + i[1] as f64 / 16.0);
/// let c = compress::<f32, i8>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
/// assert_eq!(c.shape(), &[16, 16]);
/// ```
pub fn compress<P: Real, I: BinIndex>(
    input: &NdArray<f64>,
    settings: &Settings,
) -> Result<CompressedArray<P, I>, BlazError> {
    compress_impl(input, settings, false).map(|(c, _)| c)
}

/// Like [`compress`], but also returns a [`CompressionReport`] with the
/// actual per-block coefficient errors and the §IV-D error bounds.
pub fn compress_with_report<P: Real, I: BinIndex>(
    input: &NdArray<f64>,
    settings: &Settings,
) -> Result<(CompressedArray<P, I>, CompressionReport), BlazError> {
    compress_impl(input, settings, true).map(|(c, r)| (c, r.expect("report requested")))
}

/// Compresses an array already expressed in the working precision `P`,
/// skipping the data-type-conversion step.
///
/// This is how differentiation through the codec works: instantiate with
/// `P =` [`blazr_precision::Dual`] and seed derivative directions in the
/// input; every compressed-space operation then propagates the tangent
/// (see `tests/differentiability.rs`). For ordinary numeric types this is
/// also useful when the data is already in `P`.
pub fn compress_values<P: Real, I: BinIndex>(
    input: &NdArray<P>,
    settings: &Settings,
) -> Result<CompressedArray<P, I>, BlazError> {
    compress_fused(input, input.shape().to_vec(), settings)
}

fn compress_impl<P: Real, I: BinIndex>(
    input: &NdArray<f64>,
    settings: &Settings,
    want_report: bool,
) -> Result<(CompressedArray<P, I>, Option<CompressionReport>), BlazError> {
    // Step (a): data type conversion to the working precision.
    let mut sw = tel::Stopwatch::start();
    let converted: NdArray<P> = input.convert();
    sw.lap(tel::histogram!("codec.compress.convert"));
    if !want_report {
        let compressed = compress_fused(&converted, input.shape().to_vec(), settings)?;
        return Ok((compressed, None));
    }
    // The report needs the exact transform coefficients of every block, so
    // it takes the staged path that materializes them.
    let (compressed, blocked) = compress_converted(&converted, input.shape().to_vec(), settings)?;
    let report = build_report(input, &converted, &blocked, &compressed);
    Ok((compressed, Some(report)))
}

/// Steps (b)–(e) fused into one pass over blocks: gather each block into
/// thread-local scratch, transform it there, and bin straight into the
/// output `biggest`/`indices` slices — no `n_blocks × block_len`
/// coefficient buffer is ever materialized.
///
/// Per-block work is independent and writes disjoint output slices, and
/// every block's arithmetic matches the staged path
/// ([`Blocked::partition`] → forward → bin) operation for operation, so
/// the result is bit-identical to it at any thread count
/// (`tests/fused_pipeline.rs` locks this in).
fn compress_fused<P: Real, I: BinIndex>(
    converted: &NdArray<P>,
    shape: Vec<usize>,
    settings: &Settings,
) -> Result<CompressedArray<P, I>, BlazError> {
    settings.validate_for_ndim(converted.ndim())?;
    let _span = tel::span!("codec.compress");

    let bt = BlockTransform::<P>::new(settings.transform, &settings.block_shape);
    let block_len = bt.block_len().max(1);
    let kept = settings.mask.kept_positions();
    let k = kept.len();
    let num_blocks = ceil_div(&shape, &settings.block_shape);
    let n_blocks = num_elements(&num_blocks);
    tel::count!("codec.compress.blocks", n_blocks as u64);
    let mut biggest = vec![P::zero(); n_blocks];
    let mut indices = vec![I::from_i64(0); n_blocks * k];

    let src = converted.as_slice();
    let s = converted.shape();
    let bs = &settings.block_shape;
    // Cover a few thousand elements per piece before fanning out, like
    // `Blocked::partition`.
    let min_blocks = (2048 / block_len).max(1);
    biggest
        .par_iter_mut()
        .zip(indices.par_chunks_mut(k))
        .enumerate()
        .with_min_len(min_blocks)
        .for_each_init(
            || (vec![P::zero(); block_len], vec![P::zero(); block_len]),
            |(block, scratch), (kb, (n_out, idx_out))| {
                let mut sw = tel::Stopwatch::start();
                gather_block(src, s, &num_blocks, bs, kb, block);
                sw.lap(tel::histogram!("codec.compress.gather"));
                bt.forward(block, scratch);
                sw.lap(tel::histogram!("codec.compress.transform"));
                // `scratch` is free again after the transform; reuse it
                // for the binning ratios.
                *n_out = bin_block::<P, I>(block, kept, idx_out, scratch);
                sw.lap(tel::histogram!("codec.compress.bin"));
            },
        );

    Ok(CompressedArray {
        shape,
        settings: settings.clone(),
        biggest,
        indices,
    })
}

/// Steps (d)+(e) for one transformed block: computes `N = ‖C‖∞` and bins
/// the kept coefficients into `idx_out`. Shared by the fused and staged
/// compress paths so both emit identical bits.
///
/// `ratios` is caller scratch of at least `block.len()` elements (the
/// fused path reuses the transform's ping-pong buffer). Splitting the
/// divisions into their own pass over it lets them vectorize — IEEE
/// division is correctly rounded in both scalar and SIMD form, so the
/// ratios (and therefore the emitted bins) are unchanged.
#[inline]
fn bin_block<P: Real, I: BinIndex>(
    block: &[P],
    kept: &[usize],
    idx_out: &mut [I],
    ratios: &mut [P],
) -> P {
    // N = ‖C‖∞ over the whole block (binning precedes pruning).
    let mut n = P::zero();
    for &c in block {
        n = n.max_val(c.abs());
    }
    if n == P::zero() {
        // All ratios would bin to the center; skip the per-coefficient
        // zero test and division entirely (`I::bin(0.0)` is exactly 0).
        for v in idx_out.iter_mut() {
            *v = I::from_i64(0);
        }
    } else if kept.len() == block.len() {
        // Full mask: kept positions are exactly 0..block_len in order, so
        // the position indirection drops out (same coefficients, same
        // order, same bits).
        for (r, &c) in ratios.iter_mut().zip(block) {
            *r = c / n;
        }
        for (v, &q) in idx_out.iter_mut().zip(ratios.iter()) {
            *v = I::bin(q.to_f64());
        }
    } else {
        for (slot, &pos) in kept.iter().enumerate() {
            idx_out[slot] = I::bin((block[pos] / n).to_f64());
        }
    }
    n
}

/// Steps (b)–(e) on data already in precision `P`, staged through a full
/// coefficient buffer, which it returns alongside the compressed array
/// (the error report needs the exact coefficients). The hot no-report path
/// is [`compress_fused`]; this produces bit-identical output.
fn compress_converted<P: Real, I: BinIndex>(
    converted: &NdArray<P>,
    shape: Vec<usize>,
    settings: &Settings,
) -> Result<(CompressedArray<P, I>, Blocked<P>), BlazError> {
    settings.validate_for_ndim(converted.ndim())?;

    // Step (b): blocking with zero padding.
    let mut blocked = Blocked::partition(converted, &settings.block_shape);

    // Step (c): orthonormal transform, per block, in `P` arithmetic.
    let bt = BlockTransform::<P>::new(settings.transform, &settings.block_shape);
    let block_len = bt.block_len().max(1);
    blocked.par_blocks_mut().for_each_init(
        || vec![P::zero(); block_len],
        |scratch, block| bt.forward(block, scratch),
    );

    // Steps (d)+(e): binning and pruning.
    let kept = settings.mask.kept_positions();
    let k = kept.len();
    let n_blocks = blocked.block_count();
    let mut biggest = vec![P::zero(); n_blocks];
    let mut indices = vec![I::from_i64(0); n_blocks * k];

    let blocked_ref = &blocked;
    biggest
        .par_iter_mut()
        .zip(indices.par_chunks_mut(k))
        .enumerate()
        .for_each_init(
            || vec![P::zero(); block_len],
            |ratios, (kb, (n_out, idx_out))| {
                *n_out = bin_block::<P, I>(blocked_ref.block(kb), kept, idx_out, ratios);
            },
        );

    let compressed = CompressedArray {
        shape,
        settings: settings.clone(),
        biggest,
        indices,
    };
    Ok((compressed, blocked))
}

/// Measures actual coefficient errors (binning + pruning) and evaluates
/// the §IV-D bounds, given the exact coefficients produced during
/// compression.
fn build_report<P: Real, I: BinIndex>(
    input: &NdArray<f64>,
    converted: &NdArray<P>,
    coefficients: &Blocked<P>,
    compressed: &CompressedArray<P, I>,
) -> CompressionReport {
    let mask = &compressed.settings.mask;
    let block_len = compressed.settings.block_len();
    let n_blocks = compressed.block_count();
    let r = I::radius_f64();

    let mut per_block_l2 = vec![0.0f64; n_blocks];
    let mut per_block_linf = vec![0.0f64; n_blocks];
    let mut binning_bound = vec![0.0f64; n_blocks];
    let mut paper_binning_bound = vec![0.0f64; n_blocks];
    let mut loose_linf_bound = vec![0.0f64; n_blocks];
    let mut abs_bound = vec![0.0f64; n_blocks];

    per_block_l2
        .par_iter_mut()
        .zip(per_block_linf.par_iter_mut())
        .zip(binning_bound.par_iter_mut())
        .zip(paper_binning_bound.par_iter_mut())
        .zip(loose_linf_bound.par_iter_mut())
        .zip(abs_bound.par_iter_mut())
        .enumerate()
        .for_each(|(kb, (((((l2, linf), bb), pbb), loose), ab))| {
            let block = coefficients.block(kb);
            let n = compressed.biggest[kb].to_f64();
            let mut sum_sq = 0.0f64;
            let mut max_abs = 0.0f64;
            let mut sum_abs = 0.0f64;
            let mut slot = 0usize;
            for (pos, &c) in block.iter().enumerate() {
                let c = c.to_f64();
                let reconstructed = if mask.is_kept(pos) {
                    let v = compressed.coeff(kb, slot).to_f64();
                    slot += 1;
                    v
                } else {
                    0.0
                };
                let e = (c - reconstructed).abs();
                sum_sq += e * e;
                max_abs = max_abs.max(e);
                sum_abs += e;
            }
            *l2 = sum_sq.sqrt();
            *linf = max_abs;
            // §IV-D bounds. Our binning convention (round(r·c/N)) gives a
            // half-step of N/(2r); the paper's 2r+1-bin statement is
            // N/(2r+1). Both are reported.
            *bb = n / (2.0 * r);
            *pbb = n / (2.0 * r + 1.0);
            *loose = n.abs() * block_len as f64;
            // Sum of per-coefficient error magnitudes: a valid (tighter
            // than the paper's loose) L∞ bound on any decompressed element
            // since basis entries have magnitude ≤ 1.
            *ab = sum_abs;
        });

    let total_l2 = per_block_l2.iter().map(|e| e * e).sum::<f64>().sqrt();

    // Data-type conversion error (step (a)), reported separately as the
    // paper excludes it from the coefficient-error analysis.
    let dtype_max_err = input
        .as_slice()
        .iter()
        .zip(converted.as_slice())
        .map(|(&x, &c)| (x - c.to_f64()).abs())
        .fold(0.0f64, f64::max);

    CompressionReport {
        per_block_coeff_l2: per_block_l2,
        per_block_coeff_linf: per_block_linf,
        binning_bound_per_block: binning_bound,
        paper_binning_bound_per_block: paper_binning_bound,
        paper_loose_linf_bound_per_block: loose_linf_bound,
        abs_sum_linf_bound_per_block: abs_bound,
        total_coeff_l2: total_l2,
        dtype_max_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PruningMask;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn roundtrip_error_small_for_f64_i16() {
        let a = random_array(vec![16, 16], 1);
        let c = compress::<f64, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let d = c.decompress();
        let max_err = a
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        // 16-bit bins on coefficients of magnitude ≲ 4 ⇒ error ≲ 4/65534·16.
        assert!(max_err < 2e-3, "max err {max_err}");
        assert!(max_err > 0.0, "lossy codec should not be exact");
    }

    #[test]
    fn roundtrip_exact_for_constant_blocks() {
        // A constant array has only DC energy; with the DC kept and N = DC,
        // the ratio c/N is exactly ±1 and binning is exact.
        let a = NdArray::full(vec![8, 8], 0.5f64);
        let c = compress::<f64, i8>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let d = c.decompress();
        for (&x, &y) in a.as_slice().iter().zip(d.as_slice()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn index_width_orders_error() {
        let a = random_array(vec![32, 32], 2);
        let s = Settings::new(vec![8, 8]).unwrap();
        let e8 = {
            let c = compress::<f64, i8>(&a, &s).unwrap();
            let d = c.decompress();
            blazr_util::stats::rms_diff(a.as_slice(), d.as_slice())
        };
        let e16 = {
            let c = compress::<f64, i16>(&a, &s).unwrap();
            let d = c.decompress();
            blazr_util::stats::rms_diff(a.as_slice(), d.as_slice())
        };
        assert!(e16 < e8, "int16 ({e16}) should beat int8 ({e8})");
    }

    #[test]
    fn float_precision_orders_error() {
        let a = random_array(vec![32, 32], 3);
        let s = Settings::new(vec![8, 8]).unwrap();
        let rms = |d: &NdArray<f64>| blazr_util::stats::rms_diff(a.as_slice(), d.as_slice());
        let e64 = rms(&compress::<f64, i16>(&a, &s).unwrap().decompress());
        let e32 = rms(&compress::<f32, i16>(&a, &s).unwrap().decompress());
        let e16 = rms(&compress::<crate::F16, i16>(&a, &s).unwrap().decompress());
        let ebf = rms(&compress::<crate::BF16, i16>(&a, &s).unwrap().decompress());
        assert!(e64 <= e32 * 1.5);
        assert!(e32 < e16, "f32 {e32} vs f16 {e16}");
        assert!(e16 < ebf, "f16 {e16} vs bf16 {ebf}");
    }

    #[test]
    fn pruning_discards_high_frequencies() {
        let a = random_array(vec![16, 16], 4);
        let full = Settings::new(vec![4, 4]).unwrap();
        let pruned = Settings::new(vec![4, 4])
            .unwrap()
            .with_mask(PruningMask::keep_low_frequency_box(&[4, 4], &[2, 2]).unwrap())
            .unwrap();
        let e_full = {
            let d = compress::<f64, i16>(&a, &full).unwrap().decompress();
            blazr_util::stats::rms_diff(a.as_slice(), d.as_slice())
        };
        let e_pruned = {
            let d = compress::<f64, i16>(&a, &pruned).unwrap().decompress();
            blazr_util::stats::rms_diff(a.as_slice(), d.as_slice())
        };
        assert!(e_pruned > e_full * 5.0, "pruned {e_pruned} full {e_full}");
    }

    #[test]
    fn padding_shapes_roundtrip() {
        for shape in [vec![5], vec![7, 3], vec![3, 5, 6], vec![9, 2, 4]] {
            let bs: Vec<usize> = shape.iter().map(|_| 4).collect();
            let a = random_array(shape.clone(), 5);
            let c = compress::<f64, i32>(&a, &Settings::new(bs).unwrap()).unwrap();
            let d = c.decompress();
            assert_eq!(d.shape(), a.shape());
            let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
            assert!(err < 1e-6, "shape {shape:?} err {err}");
        }
    }

    #[test]
    fn zero_array_compresses_to_zeros() {
        let a = NdArray::<f64>::zeros(vec![8, 8]);
        let c = compress::<f32, i8>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        assert!(c.biggest().iter().all(|&n| n.to_f64() == 0.0));
        let d = c.decompress();
        assert!(d.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = random_array(vec![8, 8], 6);
        let s = Settings::new(vec![4, 4, 4]).unwrap();
        assert!(compress::<f64, i8>(&a, &s).is_err());
    }

    #[test]
    fn f16_overflow_produces_nan_or_inf_blocks() {
        // Values near the f16 max overflow during the transform
        // (coefficients scale by √Πi), reproducing the paper's observation
        // that f16 hits NaNs where bf16 does not.
        let a = NdArray::full(vec![8, 8], 60000.0f64);
        let c = compress::<crate::F16, i16>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let d = c.decompress();
        assert!(
            d.as_slice().iter().any(|x| !x.is_finite()),
            "expected overflow artifacts"
        );
        let cb = compress::<crate::BF16, i16>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let db = cb.decompress();
        assert!(
            db.as_slice().iter().all(|x| x.is_finite()),
            "bf16 range should absorb this"
        );
    }

    #[test]
    fn report_bounds_hold() {
        let a = random_array(vec![24, 24], 7);
        let s = Settings::new(vec![8, 8]).unwrap();
        let (c, report) = compress_with_report::<f64, i8>(&a, &s).unwrap();
        let d = c.decompress();
        // Whole-array L2 error equals the L2 norm of coefficient errors
        // (orthonormal transform), up to padding (none here) and fp noise.
        let l2_actual: f64 = a
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(
            (l2_actual - report.total_coeff_l2).abs() < 1e-9 * (1.0 + l2_actual),
            "actual {l2_actual} vs reported {}",
            report.total_coeff_l2
        );
        // Binning-only max coefficient error per block respects N/(2r).
        for (kb, &linf) in report.per_block_coeff_linf.iter().enumerate() {
            // No pruning ⇒ all coefficient error comes from binning; allow
            // fp slop on the half-bin bound.
            assert!(
                linf <= report.binning_bound_per_block[kb] * (1.0 + 1e-9) + 1e-15,
                "block {kb}: {linf} vs bound {}",
                report.binning_bound_per_block[kb]
            );
        }
        assert_eq!(report.dtype_max_err, 0.0); // f64 → f64 conversion is exact
    }

    #[test]
    fn report_linf_bound_holds_on_decompressed_elements() {
        let a = random_array(vec![16, 16], 8);
        let s = Settings::new(vec![4, 4]).unwrap();
        let (c, report) = compress_with_report::<f64, i8>(&a, &s).unwrap();
        let d = c.decompress();
        let global_abs_bound = report
            .abs_sum_linf_bound_per_block
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let max_err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        assert!(
            max_err <= global_abs_bound * (1.0 + 1e-9),
            "err {max_err} bound {global_abs_bound}"
        );
    }

    #[test]
    fn num_elements_consistency() {
        let a = random_array(vec![10, 6], 9);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        assert_eq!(c.block_count(), 3 * 2);
        assert_eq!(c.indices().len(), 6 * 16);
        assert_eq!(c.biggest().len(), 6);
        assert_eq!(blazr_tensor::shape::num_elements(c.shape()), 60);
    }
}
