//! Compression-error accounting (paper §IV-D).
//!
//! Binning contributes at most half a bin width per coefficient
//! (`N_k/(2r)` in our convention; the paper's 2r+1-bin phrasing gives
//! `N_k/(2r+1)`); pruning contributes the full magnitude of each dropped
//! coefficient. Because the transform is orthonormal, the L2 error of a
//! decompressed block equals the L2 norm of its coefficient errors, and
//! any single element's error is bounded by the sum of coefficient error
//! magnitudes (basis entries have magnitude ≤ 1). The paper's looser
//! per-block L∞ bound `‖C_k‖∞ · Πi` is also provided for comparison.

/// Error measurements and bounds produced by
/// [`crate::compress_with_report`].
#[derive(Debug, Clone)]
pub struct CompressionReport {
    /// Actual L2 norm of coefficient errors per block (binning + pruning).
    pub per_block_coeff_l2: Vec<f64>,
    /// Actual largest coefficient error per block.
    pub per_block_coeff_linf: Vec<f64>,
    /// Half-bin binning bound per block, our convention: `N_k / (2r)`.
    pub binning_bound_per_block: Vec<f64>,
    /// The paper's binning bound per block: `N_k / (2r + 1)`.
    pub paper_binning_bound_per_block: Vec<f64>,
    /// The paper's loose per-block L∞ bound: `‖C_k‖∞ · Πi`.
    pub paper_loose_linf_bound_per_block: Vec<f64>,
    /// Σ|Δc| per block — a valid L∞ bound on any decompressed element of
    /// that block, tighter than the paper's loose bound.
    pub abs_sum_linf_bound_per_block: Vec<f64>,
    /// L2 norm of all coefficient errors — equals the whole-array L2
    /// decompression error (up to floating-point noise and padding).
    pub total_coeff_l2: f64,
    /// Largest element change introduced by step (a), the data type
    /// conversion (excluded from the paper's coefficient-error analysis).
    pub dtype_max_err: f64,
}

impl CompressionReport {
    /// The largest per-block L2 coefficient error.
    pub fn worst_block_l2(&self) -> f64 {
        self.per_block_coeff_l2.iter().cloned().fold(0.0, f64::max)
    }

    /// A global L∞ bound on decompressed elements: the worst per-block
    /// absolute-sum bound.
    pub fn linf_bound(&self) -> f64 {
        self.abs_sum_linf_bound_per_block
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// The paper's loose global L∞ bound (for comparison; typically orders
    /// of magnitude above [`CompressionReport::linf_bound`]).
    pub fn paper_loose_linf_bound(&self) -> f64 {
        self.paper_loose_linf_bound_per_block
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_take_maxima() {
        let r = CompressionReport {
            per_block_coeff_l2: vec![1.0, 3.0, 2.0],
            per_block_coeff_linf: vec![0.1, 0.2, 0.3],
            binning_bound_per_block: vec![0.5; 3],
            paper_binning_bound_per_block: vec![0.5; 3],
            paper_loose_linf_bound_per_block: vec![10.0, 40.0, 20.0],
            abs_sum_linf_bound_per_block: vec![0.7, 0.9, 0.8],
            total_coeff_l2: 3.74,
            dtype_max_err: 0.0,
        };
        assert_eq!(r.worst_block_l2(), 3.0);
        assert_eq!(r.linf_bound(), 0.9);
        assert_eq!(r.paper_loose_linf_bound(), 40.0);
    }
}
