//! # blazr — compressed-array computation
//!
//! A Rust implementation of the PyBlaz compressor from *"What Operations
//! can be Performed Directly on Compressed Arrays, and with What Error?"*
//! (SC 2023 workshops / arXiv:2406.11209): a lossy block-transform
//! compressor for arbitrary-dimensional floating-point arrays that supports
//! a dozen operations **directly on the compressed representation** —
//! without decompressing.
//!
//! ## Pipeline (paper §III-A)
//!
//! 1. **Data type conversion** — inputs are rounded into the chosen
//!    precision `P` ∈ {bf16, f16, f32, f64} ([`blazr_precision`]).
//! 2. **Blocking** — zero-pad and partition into power-of-two blocks
//!    ([`blazr_tensor::blocking`]).
//! 3. **Orthonormal transform** — per-block separable DCT-II (or Haar)
//!    ([`blazr_transform`]).
//! 4. **Binning** — per-block scalar quantization of coefficients into
//!    `2r+1` bins indexed by an integer type `I` ∈ {i8, i16, i32, i64}.
//! 5. **Pruning** — a boolean mask selects which coefficient positions
//!    are stored.
//!
//! The compressed form is `{s, i, N, F}`: original shape, block shape,
//! per-block biggest coefficient, and flattened bin indices, plus the mask
//! (paper §III-B). [`serialize`] provides the exact bit layout of §IV-C.
//!
//! ## Compressed-space operations (paper §IV, Table I)
//!
//! [`CompressedArray`] supports negation, element-wise addition, scalar
//! addition, scalar multiplication, dot product, mean, covariance,
//! variance, L2 norm, cosine similarity, SSIM, and the approximate
//! Wasserstein distance — most with *no error beyond compression error*.
//!
//! ## Quick example
//!
//! ```
//! use blazr::{compress, Settings};
//! use blazr_tensor::NdArray;
//!
//! let a = NdArray::from_fn(vec![32, 32], |i| (i[0] + i[1]) as f64 / 64.0);
//! let b = NdArray::from_fn(vec![32, 32], |i| (i[0] * i[1]) as f64 / 1024.0);
//! let settings = Settings::new(vec![8, 8]).unwrap();
//!
//! let ca = compress::<f32, i16>(&a, &settings).unwrap();
//! let cb = compress::<f32, i16>(&b, &settings).unwrap();
//!
//! // Operate without decompressing:
//! let mean = ca.mean().unwrap();
//! let dot = ca.dot(&cb).unwrap();
//! let diff_norm = ca.sub(&cb).unwrap().l2_norm();
//! # let _ = (mean, dot, diff_norm);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod compressed;
mod error;
mod index;
mod mask;
mod settings;

pub mod coder;
pub mod dynamic;
pub mod ops;
pub mod ratio;
pub mod report;
pub mod serialize;
pub mod series;
pub mod tune;

pub use codec::{compress, compress_values, compress_with_report};
pub use coder::Coder;
pub use compressed::CompressedArray;
pub use error::BlazError;
pub use index::{BinIndex, IndexType};
pub use mask::PruningMask;
pub use settings::Settings;

// Re-export the pieces callers need to use the API comfortably.
pub use blazr_precision::{Dual, Real, ScalarType, StorableReal, BF16, F16};
pub use blazr_transform::TransformKind;
