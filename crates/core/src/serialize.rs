//! Bit-exact serialization of the compressed form (paper §IV-C, grown an
//! entropy-coded index payload).
//!
//! v2 layout, in order:
//!
//! | field | bits |
//! |---|---|
//! | float type tag | 2 |
//! | index type tag | 2 |
//! | transform tag (our extension; see DESIGN.md) | 4 |
//! | coder tag ([`Coder`]) | 8 |
//! | each extent of `s` | 64 |
//! | end-of-shape marker (all ones) | 64 |
//! | each extent of `i` | 64 |
//! | pruning mask `P`, row-major | `Πi` × 1 |
//! | biggest coefficients `N`, block-major | `f` each |
//! | index payload (coder-specific, below) | — |
//!
//! With [`Coder::FixedWidth`] the index payload is the paper's: bin
//! indices `F`, block-major, kept slots ascending, `i` bits each — and
//! the stream's bit count is exactly [`crate::ratio::serialized_bits`].
//! With [`Coder::Rans`] it is the entropy-coded §IV-C payload:
//!
//! | field | bits |
//! |---|---|
//! | table symbol count `n` | 16 |
//! | escape frequency | 13 |
//! | per table symbol: value, frequency − 1 | `i` + 12 |
//! | per piece: word count, escape count | 32 + 32 |
//! | per piece: rANS words, then raw escaped values | 32 each, `i` each |
//!
//! Pieces cover [`BLOCKS_PER_PIECE`] blocks each — the same block ranges
//! the fixed-width path parallelizes over — and are encoded
//! independently and spliced in piece order, so serialized bytes are
//! bit-identical at any thread count. Entropy coding is lossless: the
//! decoded [`CompressedArray`] is equal under either coder, and every
//! §IV-D error bound is untouched.
//!
//! The v1 (pre-coder-tag) stream — the byte layout store format v1
//! chunks use — omits the 8-bit coder tag and always stores fixed-width
//! indices. [`CompressedArray::from_bytes_v1`] and
//! [`CompressedArray::to_bytes_v1`] keep that layout readable and
//! writable; the two layouts are not self-distinguishing (the v1 stream
//! has no version field), so the container (store header, caller) picks
//! the parser.

use crate::coder::histogram::{Histogram, SymbolTable, MAX_TABLE_SYMS, SCALE_BITS};
use crate::coder::{ans, batch_decode, Coder};
use crate::{BinIndex, BlazError, CompressedArray, PruningMask, Settings};
use blazr_precision::StorableReal;
use blazr_telemetry as tel;
use blazr_tensor::shape::ceil_div_count;
use blazr_transform::TransformKind;
use blazr_util::bits::{BitReader, BitWriter};
use rayon::prelude::*;
use std::cell::RefCell;

/// Sentinel terminating the shape list. Valid extents are far smaller.
const SHAPE_END: u64 = u64::MAX;

/// Reusable per-thread state for one rANS index-payload decode: the
/// deserialized symbol table and the per-piece header/offset lists. All
/// fields are rebuilt from the stream on every decode; pooling them (plus
/// the [`batch_decode::with_dec_table`] slot table) makes the
/// steady-state decode loop allocation-free.
struct RansScratch {
    table: SymbolTable,
    /// Per piece: `(n_words, n_escapes, symbols)`.
    headers: Vec<(usize, usize, usize)>,
    /// Per piece: body start bit.
    offsets: Vec<usize>,
}

std::thread_local! {
    static RANS_SCRATCH: RefCell<RansScratch> = const {
        RefCell::new(RansScratch {
            table: SymbolTable {
                vals: Vec::new(),
                freqs: Vec::new(),
                cums: Vec::new(),
                esc_freq: 0,
                esc_cum: 0,
            },
            headers: Vec::new(),
            offsets: Vec::new(),
        })
    };
}

/// Which prologue layout a stream uses. v1 is the PR-5 layout without a
/// coder tag; v2 adds the 8-bit coder tag and coder-specific index
/// payloads. The stream does not carry this itself — the container does
/// (the store's header magic, or the caller's knowledge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamVersion {
    /// PR-5 layout: no coder tag, fixed-width indices.
    V1,
    /// Coder-tagged layout with entropy-coded payloads.
    V2,
}

/// Reads the leading float/index type tags of a §IV-C stream without
/// decoding it (`None` for an empty stream or invalid tags). This is the
/// single owner of the prologue's bit positions — callers that need to
/// sniff a stream's types (dynamic dispatch, store diagnostics) go
/// through here rather than re-deriving the layout. Both stream versions
/// share byte 0, so this works on either.
pub fn peek_types(bytes: &[u8]) -> Option<(crate::ScalarType, crate::IndexType)> {
    let b = *bytes.first()?;
    Some((
        crate::ScalarType::from_tag(b >> 6)?,
        crate::IndexType::from_tag((b >> 4) & 0b11)?,
    ))
}

/// Reads the coder tag of a **v2** stream without decoding it (`None`
/// for a short stream or an invalid tag). Byte 1 of the prologue.
pub fn peek_coder(bytes: &[u8]) -> Option<Coder> {
    Coder::from_tag(*bytes.get(1)?)
}

/// Everything a stream's header says about it, parsed without touching
/// the payload. Used by store diagnostics (`store stat`) to report
/// per-chunk entropy-coding ratios from a bounded prefix read.
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// The stream layout version the caller parsed with.
    pub version: StreamVersion,
    /// The float format of the biggest-coefficient payload.
    pub float_type: crate::ScalarType,
    /// The bin index type.
    pub index_type: crate::IndexType,
    /// The block transform.
    pub transform: TransformKind,
    /// The index payload's entropy coder (fixed-width for v1 streams).
    pub coder: Coder,
    /// The original array shape `s`.
    pub shape: Vec<usize>,
    /// The block shape `i`.
    pub block_shape: Vec<usize>,
    /// Kept coefficients per block `ΣP`.
    pub kept_per_block: usize,
}

impl StreamInfo {
    /// The §IV-C fixed-width bit count for this stream's geometry — the
    /// ablation baseline an entropy-coded payload is compared against.
    pub fn fixed_width_bits(&self) -> u64 {
        let bits = crate::ratio::serialized_bits(
            &self.shape,
            &self.block_shape,
            self.float_type.bits(),
            self.index_type.bits(),
            self.kept_per_block,
        );
        match self.version {
            StreamVersion::V1 => bits - 8, // no coder tag in v1
            StreamVersion::V2 => bits,
        }
    }
}

/// Parses a stream's header fields without decoding any payload.
/// Returns `None` if the prefix is too short or malformed; callers that
/// only hold a bounded prefix of the stream can retry with more bytes.
pub fn peek_info(bytes: &[u8], version: StreamVersion) -> Option<StreamInfo> {
    let h = parse_header(bytes, version).ok()?;
    Some(StreamInfo {
        version,
        float_type: h.float_type,
        index_type: h.index_type,
        transform: h.settings.transform,
        coder: h.coder,
        kept_per_block: h.settings.mask.kept_count(),
        shape: h.shape,
        block_shape: h.settings.block_shape.clone(),
    })
}

/// Blocks per parallel piece when encoding/decoding the payload.
/// Fixed-width fields have computable bit offsets; rANS pieces carry
/// their word/escape counts in per-piece headers, so either way any
/// piece can be processed independently and the spliced stream is
/// bit-identical to a sequential pass regardless of thread count.
const BLOCKS_PER_PIECE: usize = 512;

/// Contiguous block ranges `[lo, hi)` covering `0..n_blocks`.
fn block_ranges(n_blocks: usize) -> Vec<(usize, usize)> {
    (0..n_blocks.div_ceil(BLOCKS_PER_PIECE))
        .map(|i| {
            (
                i * BLOCKS_PER_PIECE,
                ((i + 1) * BLOCKS_PER_PIECE).min(n_blocks),
            )
        })
        .collect()
}

/// The low-`n`-bits mask for raw index writes.
fn index_mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Sign-extends the low `bits` of `raw`.
#[inline]
fn sign_extend(raw: u64, bits: u32) -> i64 {
    ((raw as i64) << (64 - bits)) >> (64 - bits)
}

fn bad(msg: &str) -> BlazError {
    BlazError::Deserialize(msg.to_string())
}

/// The header fields shared by both stream versions, plus the bit
/// position where the payload (biggest section) starts.
struct ParsedHeader {
    float_type: crate::ScalarType,
    index_type: crate::IndexType,
    coder: Coder,
    shape: Vec<usize>,
    settings: Settings,
    payload_start: usize,
}

/// Parses prologue, shape, block shape, and mask — everything before the
/// biggest-coefficient section — validating as it goes.
fn parse_header(bytes: &[u8], version: StreamVersion) -> Result<ParsedHeader, BlazError> {
    let mut r = BitReader::new(bytes);
    let ftag = r.read_bits(2).ok_or_else(|| bad("truncated float tag"))? as u8;
    let itag = r.read_bits(2).ok_or_else(|| bad("truncated index tag"))? as u8;
    let float_type =
        crate::ScalarType::from_tag(ftag).ok_or_else(|| bad("unknown float type tag"))?;
    let index_type =
        crate::IndexType::from_tag(itag).ok_or_else(|| bad("unknown index type tag"))?;
    let ttag = r
        .read_bits(4)
        .ok_or_else(|| bad("truncated transform tag"))? as u8;
    let transform = TransformKind::from_tag(ttag).ok_or_else(|| bad("unknown transform tag"))?;
    let coder = match version {
        StreamVersion::V1 => Coder::FixedWidth,
        StreamVersion::V2 => {
            let ctag = r.read_bits(8).ok_or_else(|| bad("truncated coder tag"))? as u8;
            Coder::from_tag(ctag).ok_or_else(|| bad("unknown coder tag"))?
        }
    };

    let mut shape = Vec::new();
    loop {
        let v = r.read_u64().ok_or_else(|| bad("truncated shape"))?;
        if v == SHAPE_END {
            break;
        }
        if shape.len() > 64 {
            return Err(bad("shape list too long (missing end marker?)"));
        }
        if v > (1 << 48) {
            return Err(bad("implausible shape extent"));
        }
        shape.push(v as usize);
    }
    if blazr_tensor::shape::checked_num_elements(&shape)
        .filter(|&n| n <= (1usize << 48))
        .is_none()
    {
        return Err(bad("implausible total element count"));
    }
    let d = shape.len();
    let mut block_shape = Vec::with_capacity(d);
    for _ in 0..d {
        let v = r.read_u64().ok_or_else(|| bad("truncated block shape"))? as usize;
        if v == 0 || v > (1 << 30) {
            return Err(bad("implausible block extent"));
        }
        block_shape.push(v);
    }
    let block_len = blazr_tensor::shape::checked_num_elements(&block_shape)
        .ok_or_else(|| bad("block shape overflows"))?;
    if block_len == 0 || block_len > (1 << 30) {
        return Err(bad("implausible block shape"));
    }
    if r.remaining() < block_len {
        return Err(bad("truncated mask"));
    }
    let mut keep = Vec::with_capacity(block_len);
    for _ in 0..block_len {
        keep.push(r.read_bit().ok_or_else(|| bad("truncated mask"))?);
    }
    let mask = PruningMask::from_keep(block_shape.clone(), keep)
        .map_err(|_| bad("mask keeps no coefficients"))?;
    let settings = Settings::new(block_shape)
        .map_err(|e| bad(&format!("invalid block shape: {e}")))?
        .with_transform(transform)
        .with_mask(mask)
        .map_err(|e| bad(&format!("mask/shape mismatch: {e}")))?;
    Ok(ParsedHeader {
        float_type,
        index_type,
        coder,
        shape,
        settings,
        payload_start: r.bit_pos(),
    })
}

impl<P: StorableReal, I: BinIndex> CompressedArray<P, I> {
    /// Serializes to bytes (v2 layout), choosing the index-payload coder
    /// automatically: rANS when the optimized bin histogram is skewed
    /// enough to beat fixed width, the fixed-width fallback otherwise
    /// (see [`CompressedArray::choose_coder`]). Deterministic for given
    /// data at any thread count.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with(self.choose_coder())
    }

    /// Serializes to bytes (v2 layout) with an explicitly chosen index
    /// coder — the ablation/benchmark entry point.
    pub fn to_bytes_with(&self, coder: Coder) -> Vec<u8> {
        let _span = tel::span!("codec.serialize");
        let mut w = BitWriter::new();
        w.write_bits(P::TYPE.tag() as u64, 2);
        w.write_bits(I::TYPE.tag() as u64, 2);
        w.write_bits(self.settings.transform.tag() as u64, 4);
        w.write_bits(coder.tag() as u64, 8);
        self.write_header_and_biggest(&mut w);
        match coder {
            Coder::FixedWidth => {
                self.write_indices_fixed(&mut w);
                debug_assert_eq!(
                    w.bit_len() as u64,
                    crate::ratio::serialized_bits(
                        &self.shape,
                        &self.settings.block_shape,
                        P::BITS,
                        I::BITS,
                        self.kept_per_block(),
                    ),
                    "serializer and §IV-C accounting must agree"
                );
            }
            Coder::Rans => self.write_indices_rans(&mut w),
        }
        w.into_bytes()
    }

    /// Serializes to the legacy v1 layout (no coder tag, fixed-width
    /// indices) — what store format v1 files hold.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(P::TYPE.tag() as u64, 2);
        w.write_bits(I::TYPE.tag() as u64, 2);
        w.write_bits(self.settings.transform.tag() as u64, 4);
        self.write_header_and_biggest(&mut w);
        self.write_indices_fixed(&mut w);
        w.into_bytes()
    }

    /// Picks the index coder [`CompressedArray::to_bytes`] will use:
    /// builds the optimized symbol table and compares its integer
    /// (platform-independent) size estimate against the fixed-width
    /// payload. Depends only on the data, never on thread count.
    pub fn choose_coder(&self) -> Coder {
        if self.indices.is_empty() {
            return Coder::FixedWidth;
        }
        let hist = Histogram::of(&self.indices);
        let table = SymbolTable::optimize(&hist);
        tel::count!("coder.table_builds", 1);
        let n_pieces = self.biggest.len().div_ceil(BLOCKS_PER_PIECE) as u64;
        let est = table.estimated_bits(&hist, I::BITS, n_pieces);
        let fixed = I::BITS as u64 * self.indices.len() as u64;
        if est < fixed {
            Coder::Rans
        } else {
            Coder::FixedWidth
        }
    }

    /// Writes shape, end marker, block shape, mask, and the
    /// biggest-coefficient section (identical in every version/coder).
    fn write_header_and_biggest(&self, w: &mut BitWriter) {
        for &e in &self.shape {
            w.write_bits(e as u64, 64);
        }
        w.write_bits(SHAPE_END, 64);
        for &e in &self.settings.block_shape {
            w.write_bits(e as u64, 64);
        }
        for &b in self.settings.mask.as_bools() {
            w.write_bit(b);
        }
        let biggest = &self.biggest;
        let parts: Vec<(Vec<u8>, usize)> = block_ranges(biggest.len())
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pw = BitWriter::new();
                for &n in &biggest[lo..hi] {
                    pw.write_bits(n.to_bits_u64(), P::BITS);
                }
                let bit_len = pw.bit_len();
                (pw.into_bytes(), bit_len)
            })
            .collect();
        for (bytes, bit_len) in &parts {
            w.append_bits(bytes, *bit_len);
        }
    }

    /// Writes the fixed-width index payload: per-piece sub-streams
    /// encoded in parallel, spliced in block order.
    fn write_indices_fixed(&self, w: &mut BitWriter) {
        let k = self.kept_per_block();
        let mask = index_mask(I::BITS);
        let indices = &self.indices;
        let parts: Vec<(Vec<u8>, usize)> = block_ranges(self.biggest.len())
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pw = BitWriter::new();
                for &f in &indices[lo * k..hi * k] {
                    pw.write_bits(f.to_i64() as u64 & mask, I::BITS);
                }
                let bit_len = pw.bit_len();
                (pw.into_bytes(), bit_len)
            })
            .collect();
        for (bytes, bit_len) in &parts {
            w.append_bits(bytes, *bit_len);
        }
    }

    /// Writes the rANS index payload: table header, per-piece
    /// word/escape counts, then the piece bodies (encoded in parallel,
    /// spliced in piece order).
    fn write_indices_rans(&self, w: &mut BitWriter) {
        let k = self.kept_per_block();
        let mut sw = tel::Stopwatch::start();
        let hist = Histogram::of(&self.indices);
        sw.lap(tel::histogram!("codec.entropy.histogram"));
        let table = SymbolTable::optimize(&hist);
        tel::count!("coder.table_builds", 1);
        sw.lap(tel::histogram!("codec.entropy.table"));
        w.write_bits(table.vals.len() as u64, 16);
        w.write_bits(table.esc_freq as u64, 13);
        let imask = index_mask(I::BITS);
        for (&v, &f) in table.vals.iter().zip(&table.freqs) {
            w.write_bits(v as u64 & imask, I::BITS);
            w.write_bits((f - 1) as u64, SCALE_BITS);
        }
        let enc = ans::EncTable::new::<I>(&table);
        let indices = &self.indices;
        let pieces: Vec<(Vec<u8>, usize, usize, usize)> = block_ranges(self.biggest.len())
            .into_par_iter()
            .map(|(lo, hi)| {
                let (words, escapes) = ans::encode_piece(&indices[lo * k..hi * k], &enc);
                let mut pw = BitWriter::new();
                for &word in &words {
                    pw.write_u32(word);
                }
                for &v in &escapes {
                    pw.write_bits(v.to_i64() as u64 & imask, I::BITS);
                }
                let bit_len = pw.bit_len();
                (pw.into_bytes(), bit_len, words.len(), escapes.len())
            })
            .collect();
        sw.lap(tel::histogram!("codec.entropy.encode"));
        if tel::counters_enabled() {
            tel::counter!("coder.symbols").add(self.indices.len() as u64);
            let n_escapes: u64 = pieces.iter().map(|&(_, _, _, e)| e as u64).sum();
            tel::counter!("coder.escapes").add(n_escapes);
        }
        for &(_, _, n_words, n_escapes) in &pieces {
            w.write_bits(n_words as u64, 32);
            w.write_bits(n_escapes as u64, 32);
        }
        for (bytes, bit_len, _, _) in &pieces {
            w.append_bits(bytes, *bit_len);
        }
    }

    /// Deserializes from bytes (v2 layout). Fails if the stream's type
    /// tags do not match `P` and `I`, or the stream is malformed —
    /// truncated, bit-flipped, or header-inconsistent streams return
    /// [`BlazError`], never panic or over-read.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BlazError> {
        Self::parse(bytes, StreamVersion::V2)
    }

    /// Deserializes a legacy v1 stream (no coder tag, fixed-width
    /// indices) — the parser store format v1 chunks go through.
    pub fn from_bytes_v1(bytes: &[u8]) -> Result<Self, BlazError> {
        Self::parse(bytes, StreamVersion::V1)
    }

    /// Deserializes a v2 stream into `slot`, reusing the previous
    /// occupant's buffers instead of allocating fresh ones.
    ///
    /// This is the scan-loop entry point: when `slot` already holds the
    /// previous chunk of a homogeneous sequence, the header is checked
    /// bit-for-bit against that chunk's shape/settings without
    /// allocating, and a match decodes the payload straight into the
    /// existing `biggest`/`indices` vectors — zero heap allocation on
    /// the steady-state path. A header mismatch falls back to a full
    /// parse (still reusing the vectors' capacity where possible). On
    /// error `slot` is left `None`; the decoded result is exactly
    /// [`CompressedArray::from_bytes`]'s.
    pub fn from_bytes_into(bytes: &[u8], slot: &mut Option<Self>) -> Result<(), BlazError> {
        Self::parse_into(bytes, StreamVersion::V2, slot)
    }

    /// [`CompressedArray::from_bytes_into`] for legacy v1 streams.
    pub fn from_bytes_v1_into(bytes: &[u8], slot: &mut Option<Self>) -> Result<(), BlazError> {
        Self::parse_into(bytes, StreamVersion::V1, slot)
    }

    fn parse(bytes: &[u8], version: StreamVersion) -> Result<Self, BlazError> {
        let mut slot = None;
        Self::parse_into(bytes, version, &mut slot)?;
        Ok(slot.expect("parse_into fills the slot on success"))
    }

    /// Streams over the header of `bytes`, comparing every field (type
    /// tags, transform, shape, block shape, mask) against this array's
    /// without allocating. Returns the stream's coder and payload start
    /// bit on a full match; `None` on any mismatch or truncation, in
    /// which case the caller re-parses the header from scratch.
    fn header_matches(&self, bytes: &[u8], version: StreamVersion) -> Option<(Coder, usize)> {
        let mut r = BitReader::new(bytes);
        if r.read_bits(2)? as u8 != P::TYPE.tag() || r.read_bits(2)? as u8 != I::TYPE.tag() {
            return None;
        }
        if r.read_bits(4)? as u8 != self.settings.transform.tag() {
            return None;
        }
        let coder = match version {
            StreamVersion::V1 => Coder::FixedWidth,
            StreamVersion::V2 => Coder::from_tag(r.read_bits(8)? as u8)?,
        };
        for &e in &self.shape {
            if r.read_u64()? != e as u64 {
                return None;
            }
        }
        if r.read_u64()? != SHAPE_END {
            return None;
        }
        for &e in &self.settings.block_shape {
            if r.read_u64()? != e as u64 {
                return None;
            }
        }
        for &b in self.settings.mask.as_bools() {
            if r.read_bit()? != b {
                return None;
            }
        }
        Some((coder, r.bit_pos()))
    }

    fn parse_into(
        bytes: &[u8],
        version: StreamVersion,
        slot: &mut Option<Self>,
    ) -> Result<(), BlazError> {
        let _span = tel::span!("codec.deserialize");
        let matched = slot
            .as_ref()
            .and_then(|prev| prev.header_matches(bytes, version));
        let (shape, settings, coder, payload_start, mut biggest, mut indices) =
            match (matched, slot.take()) {
                (Some((coder, payload_start)), Some(prev)) => (
                    prev.shape,
                    prev.settings,
                    coder,
                    payload_start,
                    prev.biggest,
                    prev.indices,
                ),
                (_, prev) => {
                    let h = parse_header(bytes, version)?;
                    if h.float_type != P::TYPE {
                        return Err(bad(&format!(
                            "float type tag {} does not match requested {}",
                            h.float_type,
                            P::TYPE
                        )));
                    }
                    if h.index_type != I::TYPE {
                        return Err(bad(&format!(
                            "index type tag {} does not match requested {}",
                            h.index_type,
                            I::TYPE
                        )));
                    }
                    let (biggest, indices) = match prev {
                        Some(p) => (p.biggest, p.indices),
                        None => (Vec::new(), Vec::new()),
                    };
                    (
                        h.shape,
                        h.settings,
                        h.coder,
                        h.payload_start,
                        biggest,
                        indices,
                    )
                }
            };
        let n_blocks = ceil_div_count(&shape, &settings.block_shape);
        let k = settings.mask.kept_count();
        let mut r = BitReader::at(bytes, payload_start);
        // Before touching the buffers, confirm the stream actually holds
        // the biggest section the header claims.
        let biggest_bits = (P::BITS as u64)
            .checked_mul(n_blocks as u64)
            .ok_or_else(|| bad("biggest section size overflows"))?;
        if (r.remaining() as u64) < biggest_bits {
            return Err(bad("stream shorter than its header claims"));
        }
        let biggest_start = r.bit_pos();
        biggest.clear();
        biggest.resize(n_blocks, P::from_bits_u64(0));
        biggest
            .par_chunks_mut(BLOCKS_PER_PIECE)
            .enumerate()
            .for_each(|(piece, chunk)| {
                let lo = piece * BLOCKS_PER_PIECE;
                let mut pr = BitReader::at(bytes, biggest_start + lo * P::BITS as usize);
                for n in chunk {
                    *n = P::from_bits_u64(pr.read_bits(P::BITS).expect("payload length validated"));
                }
            });
        r.skip(n_blocks * P::BITS as usize);
        match coder {
            Coder::FixedWidth => {
                decode_indices_fixed_into::<I>(bytes, &mut r, n_blocks, k, &mut indices)?
            }
            Coder::Rans => decode_indices_rans_into::<I>(bytes, &mut r, n_blocks, k, &mut indices)?,
        }
        *slot = Some(Self {
            shape,
            settings,
            biggest,
            indices,
        });
        Ok(())
    }
}

/// Decodes the fixed-width index payload in parallel pieces straight
/// into `out`: every field is fixed-width, so each piece's bit offset is
/// computable and a private `BitReader` can start right there.
fn decode_indices_fixed_into<I: BinIndex>(
    bytes: &[u8],
    r: &mut BitReader<'_>,
    n_blocks: usize,
    k: usize,
    out: &mut Vec<I>,
) -> Result<(), BlazError> {
    let index_bits = (I::BITS as u64)
        .checked_mul(k as u64)
        .and_then(|b| b.checked_mul(n_blocks as u64))
        .ok_or_else(|| bad("index payload size overflows"))?;
    if (r.remaining() as u64) < index_bits {
        return Err(bad("stream shorter than its header claims"));
    }
    let index_start = r.bit_pos();
    out.clear();
    out.resize(n_blocks * k, I::from_i64(0));
    // `k ≥ 1` (the mask always keeps a coefficient), so the chunk size
    // is nonzero and the chunks are exactly the `block_ranges` pieces.
    let piece_len = BLOCKS_PER_PIECE * k.max(1);
    out.par_chunks_mut(piece_len)
        .enumerate()
        .for_each(|(p, chunk)| {
            let mut pr = BitReader::at(bytes, index_start + p * piece_len * I::BITS as usize);
            for f in chunk {
                let raw = pr.read_bits(I::BITS).expect("payload length validated");
                *f = I::from_i64(sign_extend(raw, I::BITS));
            }
        });
    Ok(())
}

/// Decodes the rANS index payload straight into `out`: validate the
/// symbol table, read the per-piece headers, prefix-sum the piece body
/// offsets, then decode pieces in parallel into disjoint sub-slices.
fn decode_indices_rans_into<I: BinIndex>(
    bytes: &[u8],
    r: &mut BitReader<'_>,
    n_blocks: usize,
    k: usize,
    out: &mut Vec<I>,
) -> Result<(), BlazError> {
    let n_syms = r
        .read_bits(16)
        .ok_or_else(|| bad("truncated rANS table header"))? as usize;
    if n_syms > MAX_TABLE_SYMS {
        return Err(bad("rANS table too large"));
    }
    let esc_freq = r
        .read_bits(13)
        .ok_or_else(|| bad("truncated rANS escape frequency"))? as u32;
    RANS_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let RansScratch {
            table,
            headers,
            offsets,
        } = scratch;
        table.vals.clear();
        table.freqs.clear();
        for _ in 0..n_syms {
            let raw = r
                .read_bits(I::BITS)
                .ok_or_else(|| bad("truncated rANS table entry"))?;
            table.vals.push(sign_extend(raw, I::BITS));
            table.freqs.push(
                r.read_bits(SCALE_BITS)
                    .ok_or_else(|| bad("truncated rANS table entry"))? as u32
                    + 1,
            );
        }
        table
            .rebuild(esc_freq)
            .map_err(|e| bad(&format!("invalid rANS table: {e}")))?;
        tel::count!("coder.rans_decodes", 1);
        tel::count!("coder.table_rebuilds", 1);
        // Piece headers. Guard the count against the remaining bits before
        // growing anything proportional to it — a lying shape cannot
        // force a huge allocation.
        let n_pieces = n_blocks.div_ceil(BLOCKS_PER_PIECE);
        if (n_pieces as u128) * 64 > r.remaining() as u128 {
            return Err(bad("stream shorter than its piece headers claim"));
        }
        headers.clear();
        let mut total_bits: u128 = 0;
        for p in 0..n_pieces {
            let (lo, hi) = (
                p * BLOCKS_PER_PIECE,
                ((p + 1) * BLOCKS_PER_PIECE).min(n_blocks),
            );
            let n_words = r
                .read_bits(32)
                .ok_or_else(|| bad("truncated piece header"))? as usize;
            let n_escapes = r
                .read_bits(32)
                .ok_or_else(|| bad("truncated piece header"))? as usize;
            let m = (hi - lo) * k;
            if n_escapes > m {
                return Err(bad("piece claims more escapes than symbols"));
            }
            total_bits += n_words as u128 * 32 + n_escapes as u128 * I::BITS as u128;
            headers.push((n_words, n_escapes, m));
        }
        if total_bits > r.remaining() as u128 {
            return Err(bad("stream shorter than its piece bodies claim"));
        }
        if tel::counters_enabled() {
            tel::counter!("coder.symbols_decoded").add((n_blocks * k) as u64);
            let esc: u64 = headers.iter().map(|&(_, e, _)| e as u64).sum();
            tel::counter!("coder.escapes_decoded").add(esc);
        }
        offsets.clear();
        let mut pos = r.bit_pos();
        for &(n_words, n_escapes, _) in headers.iter() {
            offsets.push(pos);
            pos += n_words * 32 + n_escapes * I::BITS as usize;
        }
        batch_decode::with_dec_table::<I, _>(table, |dec| {
            out.clear();
            out.resize(n_blocks * k, I::from_i64(0));
            // `k ≥ 1`, so these chunks are exactly the piece block ranges
            // the headers describe, one disjoint output sub-slice per
            // piece. Piece errors land in a stack-held latch keeping the
            // lowest piece index (deterministic at any thread count),
            // rather than a collected result vector — the success path
            // performs no allocation at all.
            let piece_len = BLOCKS_PER_PIECE * k.max(1);
            let first_err: std::sync::Mutex<Option<(usize, BlazError)>> =
                std::sync::Mutex::new(None);
            out.par_chunks_mut(piece_len)
                .enumerate()
                .for_each(|(p, chunk)| {
                    let (n_words, n_escapes, m) = headers[p];
                    let res = if chunk.len() != m {
                        Err(bad("piece layout mismatch"))
                    } else {
                        batch_decode::decode_piece_into(
                            bytes, offsets[p], n_words, n_escapes, chunk, dec,
                        )
                    };
                    if let Err(e) = res {
                        let mut latch = first_err.lock().expect("no panics hold this lock");
                        if latch.as_ref().is_none_or(|&(q, _)| p < q) {
                            *latch = Some((p, e));
                        }
                    }
                });
            match first_err.into_inner().expect("no panics hold this lock") {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, CompressedArray, PruningMask, Settings};
    use blazr_precision::{BF16, F16};
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-2.0, 2.0))
    }

    /// A smooth field whose bin histogram is skewed (DCT energy compacts
    /// into few coefficients), so rANS engages.
    fn smooth_array(shape: Vec<usize>) -> NdArray<f64> {
        NdArray::from_fn(shape, |ix| {
            ix.iter().map(|&i| (i as f64 * 0.07).sin()).sum::<f64>()
        })
    }

    #[test]
    fn roundtrip_f32_i16() {
        let a = random_array(vec![12, 20], 1);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        let back = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_all_type_combinations() {
        let a = random_array(vec![9, 10], 2);
        let s = Settings::new(vec![4, 4]).unwrap();
        macro_rules! rt {
            ($p:ty, $i:ty) => {{
                let c = compress::<$p, $i>(&a, &s).unwrap();
                for coder in Coder::ALL {
                    let back =
                        CompressedArray::<$p, $i>::from_bytes(&c.to_bytes_with(coder)).unwrap();
                    assert_eq!(back, c);
                }
                let back = CompressedArray::<$p, $i>::from_bytes_v1(&c.to_bytes_v1()).unwrap();
                assert_eq!(back, c);
            }};
        }
        rt!(f64, i8);
        rt!(f64, i64);
        rt!(f32, i32);
        rt!(F16, i8);
        rt!(F16, i16);
        rt!(BF16, i16);
        rt!(BF16, i32);
    }

    #[test]
    fn serialized_size_matches_formula() {
        let a = random_array(vec![30, 50], 3);
        let c = compress::<f32, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let bytes = c.to_bytes_with(Coder::FixedWidth);
        let bits = crate::ratio::serialized_bits(&[30, 50], &[8, 8], 32, 8, 64);
        assert_eq!(bytes.len(), (bits as usize).div_ceil(8));
        // The v1 stream is the coder tag (8 bits) shorter.
        let v1 = c.to_bytes_v1();
        assert_eq!(v1.len(), (bits as usize - 8).div_ceil(8));
    }

    #[test]
    fn rans_beats_fixed_on_smooth_data() {
        let a = smooth_array(vec![96, 96]);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let fixed = c.to_bytes_with(Coder::FixedWidth);
        let rans = c.to_bytes_with(Coder::Rans);
        assert!(
            (rans.len() as f64) < 0.85 * fixed.len() as f64,
            "rans {} not ≪ fixed {}",
            rans.len(),
            fixed.len()
        );
        // And the automatic choice takes the win.
        assert_eq!(c.choose_coder(), Coder::Rans);
        assert_eq!(peek_coder(&c.to_bytes()), Some(Coder::Rans));
    }

    #[test]
    fn near_uniform_histogram_falls_back_to_fixed_width() {
        // Identity transform over uniform data: indices spread evenly
        // over the whole i8 range, so a table cannot win.
        let a = random_array(vec![64, 64], 17);
        let s = Settings::new(vec![4, 4])
            .unwrap()
            .with_transform(crate::TransformKind::Identity);
        let c = compress::<f32, i8>(&a, &s).unwrap();
        assert_eq!(c.choose_coder(), Coder::FixedWidth);
        assert_eq!(peek_coder(&c.to_bytes()), Some(Coder::FixedWidth));
    }

    #[test]
    fn pruned_roundtrip() {
        let a = random_array(vec![16, 16], 4);
        let s = Settings::new(vec![4, 4])
            .unwrap()
            .with_mask(PruningMask::keep_low_frequency_box(&[4, 4], &[2, 2]).unwrap())
            .unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        for coder in Coder::ALL {
            let back = CompressedArray::<f64, i16>::from_bytes(&c.to_bytes_with(coder)).unwrap();
            assert_eq!(back, c);
            assert_eq!(back.decompress().as_slice(), c.decompress().as_slice());
        }
    }

    #[test]
    fn negative_indices_sign_extend() {
        let a = random_array(vec![8, 8], 5).mul_scalar(-1.0);
        let c = compress::<f64, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        assert!(c.indices().iter().any(|&f| f < 0), "need negative indices");
        for coder in Coder::ALL {
            let back = CompressedArray::<f64, i8>::from_bytes(&c.to_bytes_with(coder)).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn buffer_reusing_decode_matches_fresh_decode() {
        let s = Settings::new(vec![4, 4]).unwrap();
        let mut slot: Option<CompressedArray<f32, i16>> = None;
        // Same geometry, different data: the header-match fast path must
        // deliver each chunk's own payload, not the previous one's.
        for seed in 0..4 {
            let a = random_array(vec![12, 20], 100 + seed);
            let c = compress::<f32, i16>(&a, &s).unwrap();
            for coder in Coder::ALL {
                CompressedArray::from_bytes_into(&c.to_bytes_with(coder), &mut slot).unwrap();
                assert_eq!(slot.as_ref().unwrap(), &c, "seed {seed} {coder}");
            }
            CompressedArray::from_bytes_v1_into(&c.to_bytes_v1(), &mut slot).unwrap();
            assert_eq!(slot.as_ref().unwrap(), &c, "seed {seed} v1");
        }
        // A geometry change mid-sequence falls back to the full parse.
        let b = random_array(vec![9, 7], 200);
        let cb = compress::<f32, i16>(&b, &s).unwrap();
        CompressedArray::from_bytes_into(&cb.to_bytes(), &mut slot).unwrap();
        assert_eq!(slot.as_ref().unwrap(), &cb);
        // Errors clear the slot rather than leaving stale data behind.
        assert!(CompressedArray::from_bytes_into(&[0xFFu8; 8], &mut slot).is_err());
        assert!(slot.is_none());
    }

    #[test]
    fn wrong_type_params_rejected() {
        let a = random_array(vec![8, 8], 6);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        assert!(CompressedArray::<f64, i16>::from_bytes(&bytes).is_err());
        assert!(CompressedArray::<f32, i8>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let a = random_array(vec![8, 8], 7);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        for coder in Coder::ALL {
            let bytes = c.to_bytes_with(coder);
            for cut in [1, 3, 8, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    CompressedArray::<f32, i16>::from_bytes(&bytes[..cut]).is_err(),
                    "{coder}: cut {cut}"
                );
            }
        }
    }

    #[test]
    fn garbage_rejected() {
        let garbage = vec![0xFFu8; 64];
        assert!(CompressedArray::<f32, i16>::from_bytes(&garbage).is_err());
        assert!(CompressedArray::<f32, i16>::from_bytes_v1(&garbage).is_err());
    }

    #[test]
    fn corrupt_rans_table_rejected() {
        let a = smooth_array(vec![40, 40]);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes_with(Coder::Rans);
        // The table header follows the (fixed-size-for-this-geometry)
        // prologue + shape + mask + biggest section. Corrupt the symbol
        // count: frequencies no longer sum to SCALE.
        let h = peek_info(&bytes, StreamVersion::V2).unwrap();
        assert_eq!(h.coder, Coder::Rans);
        let n_blocks = 100u64;
        let table_start_bits = 16 + 3 * 64 + 2 * 64 + 16 + 32 * n_blocks;
        let byte = (table_start_bits / 8) as usize;
        let mut bad = bytes.clone();
        bad[byte] ^= 0xFF;
        assert!(CompressedArray::<f32, i16>::from_bytes(&bad).is_err());
    }

    #[test]
    fn peek_types_reads_the_prologue() {
        let a = random_array(vec![8, 8], 9);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        assert_eq!(
            crate::serialize::peek_types(&c.to_bytes()),
            Some((crate::ScalarType::F32, crate::IndexType::I16))
        );
        assert_eq!(crate::serialize::peek_types(&[]), None);
        assert_eq!(peek_coder(&[0u8]), None);
    }

    #[test]
    fn peek_info_reports_header_fields() {
        let a = random_array(vec![10, 11], 10);
        let s = Settings::new(vec![4, 4])
            .unwrap()
            .with_mask(PruningMask::keep_lowest_frequencies(&[4, 4], 5).unwrap())
            .unwrap();
        let c = compress::<f32, i8>(&a, &s).unwrap();
        for coder in Coder::ALL {
            let info = peek_info(&c.to_bytes_with(coder), StreamVersion::V2).unwrap();
            assert_eq!(info.coder, coder);
            assert_eq!(info.shape, vec![10, 11]);
            assert_eq!(info.block_shape, vec![4, 4]);
            assert_eq!(info.kept_per_block, 5);
            assert_eq!(info.float_type, crate::ScalarType::F32);
            assert_eq!(info.index_type, crate::IndexType::I8);
        }
        let v1 = peek_info(&c.to_bytes_v1(), StreamVersion::V1).unwrap();
        assert_eq!(v1.coder, Coder::FixedWidth);
        assert_eq!(
            v1.fixed_width_bits() + 8,
            peek_info(&c.to_bytes(), StreamVersion::V2)
                .unwrap()
                .fixed_width_bits()
        );
        assert!(peek_info(&[1, 2, 3], StreamVersion::V2).is_none());
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let a = random_array(vec![5, 6, 7], 8);
        let s = Settings::new(vec![2, 4, 4]).unwrap();
        let c = compress::<f32, i16>(&a, &s).unwrap();
        for coder in Coder::ALL {
            let back = CompressedArray::<f32, i16>::from_bytes(&c.to_bytes_with(coder)).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn scalar_and_empty_arrays_roundtrip_under_both_coders() {
        let scalar = NdArray::from_vec(vec![], vec![0.375f64]);
        let c = compress::<f32, i16>(&scalar, &Settings::new(vec![]).unwrap()).unwrap();
        for coder in Coder::ALL {
            let back = CompressedArray::<f32, i16>::from_bytes(&c.to_bytes_with(coder)).unwrap();
            assert_eq!(back, c);
        }
        let empty = NdArray::<f64>::zeros(vec![0, 4]);
        let c = compress::<f32, i16>(&empty, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        for coder in Coder::ALL {
            let back = CompressedArray::<f32, i16>::from_bytes(&c.to_bytes_with(coder)).unwrap();
            assert_eq!(back, c);
        }
    }
}
