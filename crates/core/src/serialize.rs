//! Bit-exact serialization of the compressed form (paper §IV-C).
//!
//! Layout, in order:
//!
//! | field | bits |
//! |---|---|
//! | float type tag | 2 |
//! | index type tag | 2 |
//! | transform tag (our extension; see DESIGN.md) | 4 |
//! | each extent of `s` | 64 |
//! | end-of-shape marker (all ones) | 64 |
//! | each extent of `i` | 64 |
//! | pruning mask `P`, row-major | `Πi` × 1 |
//! | biggest coefficients `N`, block-major | `f` each |
//! | bin indices `F`, block-major, kept slots in ascending position | `i` each |
//!
//! The stream's bit count is exactly [`crate::ratio::serialized_bits`],
//! which is what makes the §IV-C compression-ratio formula testable
//! against real bytes.

use crate::{BinIndex, BlazError, CompressedArray, PruningMask, Settings};
use blazr_precision::StorableReal;
use blazr_tensor::shape::{ceil_div, num_elements};
use blazr_transform::TransformKind;
use blazr_util::bits::{BitReader, BitWriter};
use rayon::prelude::*;

/// Sentinel terminating the shape list. Valid extents are far smaller.
const SHAPE_END: u64 = u64::MAX;

/// Reads the leading float/index type tags of a §IV-C stream without
/// decoding it (`None` for an empty stream or invalid tags). This is the
/// single owner of the prologue's bit positions — callers that need to
/// sniff a stream's types (dynamic dispatch, store diagnostics) go
/// through here rather than re-deriving the layout.
pub fn peek_types(bytes: &[u8]) -> Option<(crate::ScalarType, crate::IndexType)> {
    let b = *bytes.first()?;
    Some((
        crate::ScalarType::from_tag(b >> 6)?,
        crate::IndexType::from_tag((b >> 4) & 0b11)?,
    ))
}

/// Blocks per parallel piece when encoding/decoding the payload. The
/// payload's fields are fixed-width, so any block range has a computable
/// bit offset and pieces can be processed independently; the spliced
/// stream is bit-identical to a sequential pass regardless of piece size
/// or thread count.
const BLOCKS_PER_PIECE: usize = 512;

/// Contiguous block ranges `[lo, hi)` covering `0..n_blocks`.
fn block_ranges(n_blocks: usize) -> Vec<(usize, usize)> {
    (0..n_blocks.div_ceil(BLOCKS_PER_PIECE))
        .map(|i| {
            (
                i * BLOCKS_PER_PIECE,
                ((i + 1) * BLOCKS_PER_PIECE).min(n_blocks),
            )
        })
        .collect()
}

impl<P: StorableReal, I: BinIndex> CompressedArray<P, I> {
    /// Serializes to bytes using the §IV-C layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(P::TYPE.tag() as u64, 2);
        w.write_bits(I::TYPE.tag() as u64, 2);
        w.write_bits(self.settings.transform.tag() as u64, 4);
        for &e in &self.shape {
            w.write_bits(e as u64, 64);
        }
        w.write_bits(SHAPE_END, 64);
        for &e in &self.settings.block_shape {
            w.write_bits(e as u64, 64);
        }
        for &b in self.settings.mask.as_bools() {
            w.write_bit(b);
        }
        let n_blocks = self.biggest.len();
        let k = self.kept_per_block();
        let mask = if I::BITS == 64 {
            u64::MAX
        } else {
            (1u64 << I::BITS) - 1
        };
        // Payload: per-piece sub-streams encoded in parallel, spliced in
        // block order (bit-identical to a sequential pass).
        let biggest = &self.biggest;
        let biggest_parts: Vec<(Vec<u8>, usize)> = block_ranges(n_blocks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pw = BitWriter::new();
                for &n in &biggest[lo..hi] {
                    pw.write_bits(n.to_bits_u64(), P::BITS);
                }
                let bit_len = pw.bit_len();
                (pw.into_bytes(), bit_len)
            })
            .collect();
        for (bytes, bit_len) in &biggest_parts {
            w.append_bits(bytes, *bit_len);
        }
        let indices = &self.indices;
        let index_parts: Vec<(Vec<u8>, usize)> = block_ranges(n_blocks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pw = BitWriter::new();
                for &f in &indices[lo * k..hi * k] {
                    pw.write_bits(f.to_i64() as u64 & mask, I::BITS);
                }
                let bit_len = pw.bit_len();
                (pw.into_bytes(), bit_len)
            })
            .collect();
        for (bytes, bit_len) in &index_parts {
            w.append_bits(bytes, *bit_len);
        }
        debug_assert_eq!(
            w.bit_len() as u64,
            crate::ratio::serialized_bits(
                &self.shape,
                &self.settings.block_shape,
                P::BITS,
                I::BITS,
                self.kept_per_block(),
            ),
            "serializer and §IV-C accounting must agree"
        );
        w.into_bytes()
    }

    /// Deserializes from bytes. Fails if the stream's type tags do not
    /// match `P` and `I`, or the stream is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BlazError> {
        let mut r = BitReader::new(bytes);
        let bad = |msg: &str| BlazError::Deserialize(msg.to_string());
        let ftag = r.read_bits(2).ok_or_else(|| bad("truncated float tag"))? as u8;
        let itag = r.read_bits(2).ok_or_else(|| bad("truncated index tag"))? as u8;
        if ftag != P::TYPE.tag() {
            return Err(bad(&format!(
                "float type tag {ftag} does not match requested {}",
                P::TYPE
            )));
        }
        if itag != I::TYPE.tag() {
            return Err(bad(&format!(
                "index type tag {itag} does not match requested {}",
                I::TYPE
            )));
        }
        let ttag = r
            .read_bits(4)
            .ok_or_else(|| bad("truncated transform tag"))? as u8;
        let transform =
            TransformKind::from_tag(ttag).ok_or_else(|| bad("unknown transform tag"))?;

        let mut shape = Vec::new();
        loop {
            let v = r.read_u64().ok_or_else(|| bad("truncated shape"))?;
            if v == SHAPE_END {
                break;
            }
            if shape.len() > 64 {
                return Err(bad("shape list too long (missing end marker?)"));
            }
            if v > (1 << 48) {
                return Err(bad("implausible shape extent"));
            }
            shape.push(v as usize);
        }
        if blazr_tensor::shape::checked_num_elements(&shape)
            .filter(|&n| n <= (1usize << 48))
            .is_none()
        {
            return Err(bad("implausible total element count"));
        }
        let d = shape.len();
        let mut block_shape = Vec::with_capacity(d);
        for _ in 0..d {
            let v = r.read_u64().ok_or_else(|| bad("truncated block shape"))? as usize;
            if v == 0 || v > (1 << 30) {
                return Err(bad("implausible block extent"));
            }
            block_shape.push(v);
        }
        let block_len = blazr_tensor::shape::checked_num_elements(&block_shape)
            .ok_or_else(|| bad("block shape overflows"))?;
        if block_len == 0 || block_len > (1 << 30) {
            return Err(bad("implausible block shape"));
        }
        let mut keep = Vec::with_capacity(block_len);
        for _ in 0..block_len {
            keep.push(r.read_bit().ok_or_else(|| bad("truncated mask"))?);
        }
        let mask = PruningMask::from_keep(block_shape.clone(), keep)
            .map_err(|_| bad("mask keeps no coefficients"))?;
        let settings = Settings::new(block_shape)
            .map_err(|e| bad(&format!("invalid block shape: {e}")))?
            .with_transform(transform)
            .with_mask(mask)
            .map_err(|e| bad(&format!("mask/shape mismatch: {e}")))?;

        let n_blocks = num_elements(&ceil_div(&shape, &settings.block_shape));
        // Before allocating, confirm the stream actually holds the payload
        // the header claims.
        let kept_count = settings.mask.kept_count() as u64;
        let payload_bits = (P::BITS as u64 + I::BITS as u64 * kept_count)
            .checked_mul(n_blocks as u64)
            .ok_or_else(|| bad("payload size overflows"))?;
        if (r.remaining() as u64) < payload_bits {
            return Err(bad("stream shorter than its header claims"));
        }
        // Decode the payload in parallel pieces: every field is
        // fixed-width, so each piece's bit offset is computable and a
        // private `BitReader` can start right there. Lengths were
        // validated above, so in-piece reads cannot run out.
        let kept = settings.mask.kept_count();
        let biggest_start = r.bit_pos();
        let index_start = biggest_start + n_blocks * P::BITS as usize;
        let biggest_parts: Vec<Vec<P>> = block_ranges(n_blocks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pr = BitReader::at(bytes, biggest_start + lo * P::BITS as usize);
                (lo..hi)
                    .map(|_| {
                        P::from_bits_u64(pr.read_bits(P::BITS).expect("payload length validated"))
                    })
                    .collect::<Vec<P>>()
            })
            .collect();
        let mut biggest = Vec::with_capacity(n_blocks);
        for part in biggest_parts {
            biggest.extend(part);
        }
        let index_parts: Vec<Vec<I>> = block_ranges(n_blocks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut pr = BitReader::at(bytes, index_start + lo * kept * I::BITS as usize);
                (lo * kept..hi * kept)
                    .map(|_| {
                        let raw = pr.read_bits(I::BITS).expect("payload length validated");
                        // Sign-extend from I::BITS.
                        let shifted = (raw as i64) << (64 - I::BITS);
                        I::from_i64(shifted >> (64 - I::BITS))
                    })
                    .collect::<Vec<I>>()
            })
            .collect();
        let mut indices = Vec::with_capacity(n_blocks * kept);
        for part in index_parts {
            indices.extend(part);
        }
        Ok(Self {
            shape,
            settings,
            biggest,
            indices,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{compress, CompressedArray, PruningMask, Settings};
    use blazr_precision::{BF16, F16};
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-2.0, 2.0))
    }

    #[test]
    fn roundtrip_f32_i16() {
        let a = random_array(vec![12, 20], 1);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        let back = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_all_type_combinations() {
        let a = random_array(vec![9, 10], 2);
        let s = Settings::new(vec![4, 4]).unwrap();
        macro_rules! rt {
            ($p:ty, $i:ty) => {{
                let c = compress::<$p, $i>(&a, &s).unwrap();
                let back = CompressedArray::<$p, $i>::from_bytes(&c.to_bytes()).unwrap();
                assert_eq!(back, c);
            }};
        }
        rt!(f64, i8);
        rt!(f64, i64);
        rt!(f32, i32);
        rt!(F16, i8);
        rt!(F16, i16);
        rt!(BF16, i16);
        rt!(BF16, i32);
    }

    #[test]
    fn serialized_size_matches_formula() {
        let a = random_array(vec![30, 50], 3);
        let c = compress::<f32, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        let bits = crate::ratio::serialized_bits(&[30, 50], &[8, 8], 32, 8, 64);
        assert_eq!(bytes.len(), (bits as usize).div_ceil(8));
    }

    #[test]
    fn pruned_roundtrip() {
        let a = random_array(vec![16, 16], 4);
        let s = Settings::new(vec![4, 4])
            .unwrap()
            .with_mask(PruningMask::keep_low_frequency_box(&[4, 4], &[2, 2]).unwrap())
            .unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        let back = CompressedArray::<f64, i16>::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        // And the decompressed output is identical too.
        assert_eq!(back.decompress().as_slice(), c.decompress().as_slice());
    }

    #[test]
    fn negative_indices_sign_extend() {
        let a = random_array(vec![8, 8], 5).mul_scalar(-1.0);
        let c = compress::<f64, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        assert!(c.indices().iter().any(|&f| f < 0), "need negative indices");
        let back = CompressedArray::<f64, i8>::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn wrong_type_params_rejected() {
        let a = random_array(vec![8, 8], 6);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        assert!(CompressedArray::<f64, i16>::from_bytes(&bytes).is_err());
        assert!(CompressedArray::<f32, i8>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let a = random_array(vec![8, 8], 7);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let bytes = c.to_bytes();
        for cut in [1, 3, 8, bytes.len() / 2] {
            assert!(
                CompressedArray::<f32, i16>::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        let garbage = vec![0xFFu8; 64];
        assert!(CompressedArray::<f32, i16>::from_bytes(&garbage).is_err());
    }

    #[test]
    fn peek_types_reads_the_prologue() {
        let a = random_array(vec![8, 8], 9);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        assert_eq!(
            crate::serialize::peek_types(&c.to_bytes()),
            Some((crate::ScalarType::F32, crate::IndexType::I16))
        );
        assert_eq!(crate::serialize::peek_types(&[]), None);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let a = random_array(vec![5, 6, 7], 8);
        let s = Settings::new(vec![2, 4, 4]).unwrap();
        let c = compress::<f32, i16>(&a, &s).unwrap();
        let back = CompressedArray::<f32, i16>::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }
}
