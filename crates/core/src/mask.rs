//! Pruning masks (paper §III-A(e)).
//!
//! A pruning mask `P` is a boolean array shaped like one block; positions
//! marked `true` are kept in the compressed representation, the rest are
//! rounded to zero. The mask is part of the compressed form (it is needed
//! to unflatten `F`), and its population count `ΣP` is the dominant term
//! of the compression-ratio formula in §IV-C.

use crate::BlazError;
use blazr_tensor::shape::{advance, num_elements, ravel};

/// Which coefficient positions of each block survive pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruningMask {
    shape: Vec<usize>,
    keep: Vec<bool>,
    kept_positions: Vec<usize>,
}

impl PruningMask {
    /// Keeps every coefficient (no pruning).
    pub fn all(block_shape: &[usize]) -> Self {
        let n = num_elements(block_shape);
        Self::from_keep(block_shape.to_vec(), vec![true; n]).expect("all-true mask is valid")
    }

    /// Builds a mask from an explicit boolean array (row-major over the
    /// block shape). Fails if no position is kept.
    pub fn from_keep(block_shape: Vec<usize>, keep: Vec<bool>) -> Result<Self, BlazError> {
        assert_eq!(
            keep.len(),
            num_elements(&block_shape),
            "mask length must match block shape"
        );
        let kept_positions: Vec<usize> = (0..keep.len()).filter(|&i| keep[i]).collect();
        if kept_positions.is_empty() {
            return Err(BlazError::EmptyMask);
        }
        Ok(Self {
            shape: block_shape,
            keep,
            kept_positions,
        })
    }

    /// Keeps only the low-frequency box of extents `kept_extents` (e.g.
    /// keep the 2×2×2 lowest-frequency corner of an 8×8×8 block).
    pub fn keep_low_frequency_box(
        block_shape: &[usize],
        kept_extents: &[usize],
    ) -> Result<Self, BlazError> {
        assert_eq!(block_shape.len(), kept_extents.len());
        for (k, (&b, &e)) in block_shape.iter().zip(kept_extents).enumerate() {
            if e > b {
                return Err(BlazError::InvalidBlockShape(format!(
                    "kept extent {e} exceeds block extent {b} in dimension {k}"
                )));
            }
        }
        let n = num_elements(block_shape);
        let mut keep = vec![false; n];
        if n > 0 {
            let mut idx = vec![0usize; block_shape.len()];
            loop {
                if idx.iter().zip(kept_extents).all(|(&i, &e)| i < e) {
                    keep[ravel(&idx, block_shape)] = true;
                }
                if !advance(&mut idx, block_shape) {
                    break;
                }
            }
        }
        Self::from_keep(block_shape.to_vec(), keep)
    }

    /// Drops the high-frequency corner box of extents `corner_extents`
    /// (Blaz prunes the 6×6 high-index corner of its 8×8 blocks this way).
    pub fn drop_high_frequency_corner(
        block_shape: &[usize],
        corner_extents: &[usize],
    ) -> Result<Self, BlazError> {
        assert_eq!(block_shape.len(), corner_extents.len());
        let n = num_elements(block_shape);
        let mut keep = vec![true; n];
        if n > 0 {
            let mut idx = vec![0usize; block_shape.len()];
            loop {
                let in_corner = idx
                    .iter()
                    .zip(block_shape.iter().zip(corner_extents))
                    .all(|(&i, (&b, &c))| c <= b && i >= b - c);
                if in_corner {
                    keep[ravel(&idx, block_shape)] = false;
                }
                if !advance(&mut idx, block_shape) {
                    break;
                }
            }
        }
        Self::from_keep(block_shape.to_vec(), keep)
    }

    /// Keeps the `count` positions with the lowest total frequency (sum of
    /// coordinates, ties broken row-major) — a sequency-style mask.
    pub fn keep_lowest_frequencies(block_shape: &[usize], count: usize) -> Result<Self, BlazError> {
        let n = num_elements(block_shape);
        let count = count.min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let sums: Vec<usize> = {
            let mut sums = Vec::with_capacity(n);
            let mut idx = vec![0usize; block_shape.len()];
            for _ in 0..n {
                sums.push(idx.iter().sum());
                advance(&mut idx, block_shape);
            }
            sums
        };
        order.sort_by_key(|&i| (sums[i], i));
        let mut keep = vec![false; n];
        for &i in order.iter().take(count) {
            keep[i] = true;
        }
        Self::from_keep(block_shape.to_vec(), keep)
    }

    /// The mask's block shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of kept positions `ΣP`.
    pub fn kept_count(&self) -> usize {
        self.kept_positions.len()
    }

    /// Flat (row-major) positions that are kept, ascending.
    pub fn kept_positions(&self) -> &[usize] {
        &self.kept_positions
    }

    /// The raw boolean mask, row-major.
    pub fn as_bools(&self) -> &[bool] {
        &self.keep
    }

    /// Whether flat position `i` is kept.
    pub fn is_kept(&self, i: usize) -> bool {
        self.keep[i]
    }

    /// Whether the DC position (all-zero multi-index, flat 0) is kept —
    /// required by mean, scalar addition, covariance, variance, SSIM, and
    /// the approximate Wasserstein distance.
    pub fn dc_kept(&self) -> bool {
        self.keep.first().copied().unwrap_or(false)
    }

    /// Position of the DC coefficient inside the *kept* (flattened)
    /// sequence, if kept. Always 0 when present because kept positions are
    /// ascending, but exposed for clarity.
    pub fn dc_kept_slot(&self) -> Option<usize> {
        if self.dc_kept() {
            Some(0)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_keeps_everything() {
        let m = PruningMask::all(&[4, 4]);
        assert_eq!(m.kept_count(), 16);
        assert!(m.dc_kept());
        assert_eq!(m.kept_positions().len(), 16);
    }

    #[test]
    fn empty_mask_is_rejected() {
        let e = PruningMask::from_keep(vec![2, 2], vec![false; 4]);
        assert_eq!(e.unwrap_err(), BlazError::EmptyMask);
    }

    #[test]
    fn low_frequency_box() {
        let m = PruningMask::keep_low_frequency_box(&[4, 4], &[2, 2]).unwrap();
        assert_eq!(m.kept_count(), 4);
        assert!(m.is_kept(0)); // (0,0)
        assert!(m.is_kept(1)); // (0,1)
        assert!(m.is_kept(4)); // (1,0)
        assert!(m.is_kept(5)); // (1,1)
        assert!(!m.is_kept(2));
        assert!(m.dc_kept());
    }

    #[test]
    fn blaz_style_corner_drop() {
        // 8×8 block, drop 6×6 high corner → keep 64−36 = 28 (Blaz §II-A(c)).
        let m = PruningMask::drop_high_frequency_corner(&[8, 8], &[6, 6]).unwrap();
        assert_eq!(m.kept_count(), 28);
        assert!(m.dc_kept());
        // Position (2,2) is the first dropped corner element.
        assert!(!m.is_kept(2 * 8 + 2));
        assert!(m.is_kept(8 + 7)); // row 1 fully kept
    }

    #[test]
    fn lowest_frequency_selection() {
        let m = PruningMask::keep_lowest_frequencies(&[4, 4], 3).unwrap();
        assert_eq!(m.kept_count(), 3);
        // Sum-0: (0,0); sum-1: (0,1) then (1,0) in row-major tie order.
        assert!(m.is_kept(0));
        assert!(m.is_kept(1));
        assert!(m.is_kept(4));
    }

    #[test]
    fn keep_half_matches_paper_ratio_example() {
        // §IV-C: "pruning half the indices" of a 4×4×4 block keeps 32.
        let m = PruningMask::keep_lowest_frequencies(&[4, 4, 4], 32).unwrap();
        assert_eq!(m.kept_count(), 32);
    }

    #[test]
    fn dc_can_be_pruned_and_detected() {
        let mut keep = vec![true; 16];
        keep[0] = false;
        let m = PruningMask::from_keep(vec![4, 4], keep).unwrap();
        assert!(!m.dc_kept());
        assert_eq!(m.dc_kept_slot(), None);
        assert_eq!(m.kept_count(), 15);
    }

    #[test]
    fn kept_positions_are_sorted_ascending() {
        let m = PruningMask::drop_high_frequency_corner(&[4, 4], &[2, 2]).unwrap();
        let pos = m.kept_positions();
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }
}
