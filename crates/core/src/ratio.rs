//! Compression-ratio accounting (paper §IV-C).
//!
//! The compressed form stores: a 4-bit type nibble, the original shape `s`
//! (64 bits per dimension plus a 64-bit end marker), the block shape `i`
//! (64 bits per dimension), the pruning mask (`Πi` bits), the per-block
//! biggest coefficients (`f·Π⌈s⊘i⌉` bits), and the bin indices
//! (`i·(ΣP)·Π⌈s⊘i⌉` bits). Our serializer adds a 4-bit transform tag and
//! an 8-bit coder tag the paper does not account for (documented in
//! DESIGN.md); both are included in [`serialized_bits`] and excluded from
//! [`paper_asymptotic_ratio`].
//!
//! The **fixed-width** ratio is **independent of the data** — a design
//! point the paper contrasts with error-bounded compressors like SZ. The
//! rANS coder (see [`crate::coder`]) trades that invariant away for a
//! smaller payload; this module accounts the fixed-width baseline, which
//! is also an upper bound on what [`crate::CompressedArray::to_bytes`]
//! emits (up to the one-byte coder tag already counted here).

use blazr_tensor::shape::{ceil_div, num_elements};

/// Exact size in bits of the serialized compressed form produced by
/// [`crate::serialize`] under the fixed-width coder (v2 stream layout,
/// including the coder tag).
pub fn serialized_bits(
    shape: &[usize],
    block_shape: &[usize],
    float_bits: u32,
    index_bits: u32,
    kept_per_block: usize,
) -> u64 {
    let d = shape.len() as u64;
    let n_blocks = num_elements(&ceil_div(shape, block_shape)) as u64;
    let block_len = num_elements(block_shape) as u64;
    let header = 4 + 4 + 8 + 64 * d + 64 + 64 * d; // types + transform + coder + s + marker + i
    let mask = block_len;
    let biggest = float_bits as u64 * n_blocks;
    let indices = index_bits as u64 * kept_per_block as u64 * n_blocks;
    header + mask + biggest + indices
}

/// Exact compression ratio against a `u`-bit-per-element original,
/// including all header overhead.
pub fn exact_ratio(
    original_bits: u32,
    shape: &[usize],
    block_shape: &[usize],
    float_bits: u32,
    index_bits: u32,
    kept_per_block: usize,
) -> f64 {
    let raw = original_bits as u64 * num_elements(shape) as u64;
    raw as f64 / serialized_bits(shape, block_shape, float_bits, index_bits, kept_per_block) as f64
}

/// The paper's asymptotic formula:
/// `u·Πs / ((f + i·ΣP)·Π⌈s⊘i⌉)` — header terms dropped.
pub fn paper_asymptotic_ratio(
    original_bits: u32,
    shape: &[usize],
    block_shape: &[usize],
    float_bits: u32,
    index_bits: u32,
    kept_per_block: usize,
) -> f64 {
    let n_blocks = num_elements(&ceil_div(shape, block_shape)) as f64;
    let raw = original_bits as f64 * num_elements(shape) as f64;
    raw / ((float_bits as f64 + index_bits as f64 * kept_per_block as f64) * n_blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fp32_int16_no_pruning() {
        // §IV-C: shape (3,224,224), u=64, blocks (4,4,4), FP32, int16,
        // no pruning → ratio ≈ 2.91.
        let r = paper_asymptotic_ratio(64, &[3, 224, 224], &[4, 4, 4], 32, 16, 64);
        assert!((r - 2.91).abs() < 0.01, "got {r}");
    }

    #[test]
    fn paper_example_int8_half_pruning() {
        // §IV-C: int8 and half the indices pruned → ratio ≈ 10.66.
        let r = paper_asymptotic_ratio(64, &[3, 224, 224], &[4, 4, 4], 32, 8, 32);
        assert!((r - 10.66).abs() < 0.01, "got {r}");
    }

    #[test]
    fn exact_ratio_approaches_asymptotic_for_large_arrays() {
        let small = exact_ratio(64, &[16, 16], &[4, 4], 32, 8, 16);
        let large = exact_ratio(64, &[1024, 1024], &[4, 4], 32, 8, 16);
        let asym = paper_asymptotic_ratio(64, &[1024, 1024], &[4, 4], 32, 8, 16);
        assert!((large - asym).abs() / asym < 1e-3);
        assert!(small < large, "headers dominate small arrays");
    }

    #[test]
    fn ratio_is_data_independent_by_construction() {
        // The formula takes no data — this test documents the §III claim.
        let a = exact_ratio(64, &[100, 100], &[8, 8], 32, 8, 64);
        assert!(a > 1.0);
    }

    #[test]
    fn serialized_bits_component_accounting() {
        // 1-D, shape (8), blocks (4): 2 blocks.
        let bits = serialized_bits(&[8], &[4], 32, 8, 4);
        let expect = 4 + 4 + 8 + 64 + 64 + 64 // header (incl. coder tag)
            + 4                              // mask
            + 32 * 2                         // N
            + 8 * 4 * 2; // F
        assert_eq!(bits, expect);
    }
}
