//! Scalar-valued compressed-space reductions: dot product, mean, L2 norm,
//! cosine similarity (Algorithms 6, 7, 10, 11).
//!
//! Accumulation happens in the compressed array's precision `P`, mirroring
//! how PyBlaz reduces tensors in the configured dtype on the GPU — so
//! float16/bfloat16 settings show genuine accumulation error (and the
//! overflow-induced NaNs of the paper's Fig. 5).

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;
use rayon::prelude::*;

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// Sums `f(coeff_a, coeff_b)` over every kept coefficient, in `P`.
    /// Per-block partial sums are computed in parallel and combined in
    /// block order, keeping results deterministic.
    pub(crate) fn coeff_fold2(&self, other: &Self, f: impl Fn(P, P) -> P + Send + Sync) -> P {
        let k = self.kept_per_block();
        let partials: Vec<P> = (0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mut acc = P::zero();
                for slot in 0..k {
                    acc = acc + f(self.coeff(kb, slot), other.coeff(kb, slot));
                }
                acc
            })
            .collect();
        let mut total = P::zero();
        for p in partials {
            total = total + p;
        }
        total
    }

    /// Sums `f(coeff)` over every kept coefficient, in `P`.
    pub(crate) fn coeff_fold(&self, f: impl Fn(P) -> P + Send + Sync) -> P {
        let k = self.kept_per_block();
        let partials: Vec<P> = (0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mut acc = P::zero();
                for slot in 0..k {
                    acc = acc + f(self.coeff(kb, slot));
                }
                acc
            })
            .collect();
        let mut total = P::zero();
        for p in partials {
            total = total + p;
        }
        total
    }

    /// Per-block DC coefficients `Ĉ…₁` (requires the DC slot).
    pub(crate) fn dc_coefficients(&self) -> Result<Vec<P>, BlazError> {
        self.require_dc()?;
        let slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        // Each item is two loads and a multiply: only worth fanning out
        // for thousands of blocks (the min-length hint keeps small
        // gathers on the calling thread).
        Ok((0..self.block_count())
            .into_par_iter()
            .with_min_len(1024)
            .map(|kb| self.coeff(kb, slot))
            .collect())
    }

    /// Dot product (Algorithm 6): `Σ(Ĉ₁ ⊙ Ĉ₂)`. Exact with respect to the
    /// compressed data because the orthonormal transform preserves dot
    /// products; zero-padded regions contribute (approximately) zero.
    pub fn dot(&self, other: &Self) -> Result<P, BlazError> {
        self.check_compatible(other)?;
        Ok(self.coeff_fold2(other, |a, b| a * b))
    }

    /// Mean (Algorithm 7): average the per-block DC coefficients and
    /// divide by `√(Πi)`.
    ///
    /// Paper-faithful: averages over *all* blocks, so zero padding dilutes
    /// the result for shapes that are not block multiples — see
    /// [`CompressedArray::mean_exact`] for the corrected version.
    pub fn mean(&self) -> Result<P, BlazError> {
        let dcs = self.dc_coefficients()?;
        let mut acc = P::zero();
        for &c in &dcs {
            acc = acc + c;
        }
        let nb = P::from_f64(dcs.len() as f64);
        let scale = P::from_f64(self.settings.dc_scale());
        Ok(acc / nb / scale)
    }

    /// Padding-corrected mean: `√(Πi)·ΣĈ…₁ / Πs`, exact for any shape
    /// (up to compression error). Returned in `f64`.
    pub fn mean_exact(&self) -> Result<f64, BlazError> {
        let dcs = self.dc_coefficients()?;
        let sum: f64 = dcs.iter().map(|c| c.to_f64()).sum();
        let n: usize = self.shape.iter().product();
        Ok(sum * self.settings.dc_scale() / n as f64)
    }

    /// Block-wise means (§IV-A-6): `Ĉ…₁ ⊘ √(Πi)` as a flat vector in block
    /// order (one entry per block).
    pub fn block_means(&self) -> Result<Vec<f64>, BlazError> {
        let dcs = self.dc_coefficients()?;
        let scale = self.settings.dc_scale();
        Ok(dcs.iter().map(|c| c.to_f64() / scale).collect())
    }

    /// L2 norm (Algorithm 10): `‖Ĉ‖₂`, exact thanks to orthonormality.
    pub fn l2_norm(&self) -> P {
        self.coeff_fold(|c| c * c).sqrt()
    }

    /// Cosine similarity (Algorithm 11): `⟨A,B⟩ / (‖A‖·‖B‖)`.
    pub fn cosine_similarity(&self, other: &Self) -> Result<P, BlazError> {
        let p = self.dot(other)?;
        let m = self.l2_norm() * other.l2_norm();
        Ok(p / m)
    }
}

#[cfg(test)]
mod tests {
    use crate::{compress, Settings};
    use blazr_tensor::reduce;
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    fn settings() -> Settings {
        Settings::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn dot_matches_reference() {
        let a = random_array(vec![16, 16], 1);
        let b = random_array(vec![16, 16], 2);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let got = ca.dot(&cb).unwrap();
        let expect = reduce::dot(&a, &b);
        assert!((got - expect).abs() < 0.05, "got {got} expect {expect}");
    }

    #[test]
    fn dot_of_decompressed_equals_compressed_dot() {
        // "No additional error": the compressed dot must match the dot of
        // the decompressed arrays to fp precision.
        let a = random_array(vec![16, 16], 3);
        let b = random_array(vec![16, 16], 4);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let compressed = ca.dot(&cb).unwrap();
        let decompressed = reduce::dot(&ca.decompress(), &cb.decompress());
        assert!(
            (compressed - decompressed).abs() < 1e-9,
            "{compressed} vs {decompressed}"
        );
    }

    #[test]
    fn mean_matches_reference_no_padding() {
        let a = random_array(vec![16, 16], 5);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let got = c.mean().unwrap();
        let expect = reduce::mean(&a);
        assert!((got - expect).abs() < 1e-3, "got {got} expect {expect}");
    }

    #[test]
    fn mean_exact_corrects_padding() {
        // Shape 6×6 with 4×4 blocks pads to 8×8: the paper-faithful mean
        // is diluted by 36/64; mean_exact is not.
        let a = NdArray::full(vec![6, 6], 1.0f64);
        let c = compress::<f64, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let faithful = c.mean().unwrap();
        let exact = c.mean_exact().unwrap();
        assert!((exact - 1.0).abs() < 1e-3, "exact {exact}");
        assert!((faithful - 36.0 / 64.0).abs() < 1e-3, "faithful {faithful}");
    }

    #[test]
    fn block_means_match_per_block_averages() {
        let a = random_array(vec![8, 8], 6);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let bm = c.block_means().unwrap();
        assert_eq!(bm.len(), 4);
        // Block (0,0) covers rows 0..4 × cols 0..4.
        let mut expect = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                expect += a.get(&[i, j]);
            }
        }
        expect /= 16.0;
        assert!((bm[0] - expect).abs() < 1e-3, "{} vs {expect}", bm[0]);
    }

    #[test]
    fn l2_norm_matches_reference() {
        let a = random_array(vec![16, 16], 7);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let got = c.l2_norm();
        let expect = reduce::norm_l2(&a);
        assert!(
            (got - expect).abs() / expect < 1e-3,
            "got {got} expect {expect}"
        );
    }

    #[test]
    fn cosine_similarity_self_is_one() {
        let a = random_array(vec![16, 16], 8);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let s = c.cosine_similarity(&c).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn cosine_similarity_matches_reference() {
        let a = random_array(vec![16, 16], 9);
        let b = random_array(vec![16, 16], 10);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let got = ca.cosine_similarity(&cb).unwrap();
        let expect = reduce::cosine_similarity(&a, &b);
        assert!((got - expect).abs() < 5e-3, "got {got} expect {expect}");
    }

    #[test]
    fn mean_requires_dc() {
        use crate::{PruningMask, TransformKind};
        let a = random_array(vec![8, 8], 11);
        let mut keep = vec![true; 16];
        keep[0] = false;
        let s = settings()
            .with_mask(PruningMask::from_keep(vec![4, 4], keep).unwrap())
            .unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        assert!(c.mean().is_err());
        // Identity transform has no DC basis either.
        let s2 = settings().with_transform(TransformKind::Identity);
        let c2 = compress::<f64, i16>(&a, &s2).unwrap();
        assert!(c2.mean().is_err());
    }

    #[test]
    fn f16_norm_of_large_array_can_overflow() {
        // Accumulating squares in f16 overflows 65504 quickly — the
        // mechanism behind the paper's missing (NaN) squares in Fig. 5.
        // Here each block's squared DC coefficient alone exceeds the f16
        // maximum, so the fold hits +inf.
        let a = NdArray::full(vec![64, 64], 50.0f64);
        let c = compress::<crate::F16, i16>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        let norm = c.l2_norm();
        assert!(!norm.is_finite(), "expected overflow, got {norm}");
    }
}
