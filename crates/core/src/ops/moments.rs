//! Covariance, variance, standard deviation, and their block-wise
//! variants (Algorithms 8, 9).

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;
use rayon::prelude::*;

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// Covariance (Algorithm 8): center both arrays' DC coefficients by
    /// the mean DC, then take the mean of the element-wise product of
    /// specified coefficients. Exact up to compression error because the
    /// transform preserves dot products.
    ///
    /// The divisor is the *total coefficient count* `Πb·Πi` (the padded
    /// element count), faithful to the paper's `mean(Ĉ₁ ⊙ Ĉ₂)`.
    pub fn covariance(&self, other: &Self) -> Result<P, BlazError> {
        self.check_compatible(other)?;
        self.require_dc()?;
        other.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;

        // Mean DC per array (the ā·√(Πi) correction of §IV-A-7). A plain
        // block-order fold: cheap enough that parallel dispatch would
        // cost more than the loads it distributes, and the combine order
        // is what the determinism contract fixes anyway.
        let nb = P::from_f64(self.block_count() as f64);
        let mean_dc = |c: &Self| -> P {
            let mut acc = P::zero();
            for kb in 0..c.block_count() {
                acc = acc + c.coeff(kb, dc_slot);
            }
            acc / nb
        };
        let m1 = mean_dc(self);
        let m2 = mean_dc(other);

        // Per-block partial products in parallel, combined in block order
        // (the deterministic fixed-shape reduction the parallelism tests
        // rely on).
        let k = self.kept_per_block();
        let partials: Vec<P> = (0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mut acc = P::zero();
                for slot in 0..k {
                    let mut a = self.coeff(kb, slot);
                    let mut b = other.coeff(kb, slot);
                    if slot == dc_slot {
                        a = a - m1;
                        b = b - m2;
                    }
                    acc = acc + a * b;
                }
                acc
            })
            .collect();
        let mut acc = P::zero();
        for p in partials {
            acc = acc + p;
        }
        let total = P::from_f64((self.block_count() * self.settings.block_len()) as f64);
        Ok(acc / total)
    }

    /// Variance (Algorithm 9): the covariance of the array with itself.
    pub fn variance(&self) -> Result<P, BlazError> {
        self.covariance(self)
    }

    /// Standard deviation: `√variance`.
    pub fn std_dev(&self) -> Result<P, BlazError> {
        Ok(self.variance()?.sqrt())
    }

    /// Block-wise variances (§IV-A-8): for each block, the mean of squared
    /// block-wise-centered coefficients, i.e. `(Σ_j c_j² − c_DC²) / Πi`.
    /// Returned in `f64`, one entry per block in block order.
    pub fn block_variances(&self) -> Result<Vec<f64>, BlazError> {
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let len = self.settings.block_len() as f64;
        Ok((0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mut sum_sq = 0.0;
                for slot in 0..k {
                    let c = self.coeff(kb, slot).to_f64();
                    if slot != dc_slot {
                        sum_sq += c * c;
                    }
                }
                sum_sq / len
            })
            .collect())
    }

    /// Block-wise standard deviations.
    pub fn block_std_devs(&self) -> Result<Vec<f64>, BlazError> {
        Ok(self.block_variances()?.into_iter().map(f64::sqrt).collect())
    }

    /// Block-wise covariances (§IV-A-7: "Block-wise covariance is also
    /// available by getting the block-wise means of this product"): for
    /// each block, the mean of the products of block-centered coefficients
    /// — i.e. `(Σ_j c1_j·c2_j − c1_DC·c2_DC) / Πi`.
    pub fn block_covariances(&self, other: &Self) -> Result<Vec<f64>, BlazError> {
        self.check_compatible(other)?;
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let len = self.settings.block_len() as f64;
        Ok((0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mut acc = 0.0;
                for slot in 0..k {
                    if slot == dc_slot {
                        continue; // centering removes the DC product
                    }
                    acc += self.coeff(kb, slot).to_f64() * other.coeff(kb, slot).to_f64();
                }
                acc / len
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::{compress, Settings};
    use blazr_tensor::reduce;
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    fn settings() -> Settings {
        Settings::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn variance_matches_reference() {
        let a = random_array(vec![16, 16], 1);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let got = c.variance().unwrap();
        let expect = reduce::variance(&a);
        assert!(
            (got - expect).abs() / expect < 5e-3,
            "got {got} expect {expect}"
        );
    }

    #[test]
    fn covariance_matches_reference() {
        let a = random_array(vec![16, 16], 2);
        let b = random_array(vec![16, 16], 3)
            .mul_scalar(0.5)
            .add(&a.mul_scalar(0.5)); // correlate with a
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let got = ca.covariance(&cb).unwrap();
        let expect = reduce::covariance(&a, &b);
        assert!((got - expect).abs() < 2e-3, "got {got} expect {expect}");
    }

    #[test]
    fn covariance_is_symmetric() {
        let a = random_array(vec![12, 12], 4);
        let b = random_array(vec![12, 12], 5);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let ab = ca.covariance(&cb).unwrap();
        let ba = cb.covariance(&ca).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn variance_is_nonnegative_and_std_is_sqrt() {
        let a = random_array(vec![16, 16], 6);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let v = c.variance().unwrap();
        let s = c.std_dev().unwrap();
        assert!(v >= 0.0);
        assert!((s * s - v).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let a = NdArray::full(vec![8, 8], 3.0f64);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let v = c.variance().unwrap();
        assert!(v.abs() < 1e-9, "got {v}");
    }

    #[test]
    fn block_variances_match_per_block_reference() {
        let a = random_array(vec![8, 8], 7);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let bv = c.block_variances().unwrap();
        assert_eq!(bv.len(), 4);
        // Reference variance of block (0,0).
        let vals: Vec<f64> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| a.get(&[i, j]))
            .collect();
        let m = vals.iter().sum::<f64>() / 16.0;
        let var = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / 16.0;
        assert!((bv[0] - var).abs() < 1e-3, "{} vs {var}", bv[0]);
    }

    #[test]
    fn block_covariance_of_self_is_block_variance() {
        let a = random_array(vec![12, 12], 9);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let bv = c.block_variances().unwrap();
        let bc = c.block_covariances(&c).unwrap();
        assert_eq!(bv.len(), bc.len());
        for (v, cv) in bv.iter().zip(&bc) {
            assert!((v - cv).abs() < 1e-12, "{v} vs {cv}");
        }
    }

    #[test]
    fn block_covariance_matches_per_block_reference() {
        let a = random_array(vec![8, 8], 10);
        let b = random_array(vec![8, 8], 11);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let bc = ca.block_covariances(&cb).unwrap();
        // Reference covariance of block (0,0) on the decompressed data
        // (the op is exact w.r.t. compressed content).
        let da = ca.decompress();
        let db = cb.decompress();
        let (mut ma, mut mb) = (0.0, 0.0);
        for i in 0..4 {
            for j in 0..4 {
                ma += da.get(&[i, j]);
                mb += db.get(&[i, j]);
            }
        }
        ma /= 16.0;
        mb /= 16.0;
        let mut cov = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                cov += (da.get(&[i, j]) - ma) * (db.get(&[i, j]) - mb);
            }
        }
        cov /= 16.0;
        assert!((bc[0] - cov).abs() < 1e-9, "{} vs {cov}", bc[0]);
    }

    #[test]
    fn moment_ops_compose_with_decompressed_equivalence() {
        // "No additional error" claim: variance computed in compressed
        // space equals variance of the decompressed array to fp precision
        // (same shape, no padding).
        let a = random_array(vec![16, 16], 8);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let comp = c.variance().unwrap();
        let dec = reduce::variance(&c.decompress());
        assert!((comp - dec).abs() < 1e-9, "{comp} vs {dec}");
    }
}
