//! Per-array reduction partials and error-model bounds for cross-chunk
//! combining.
//!
//! A chunked store (many compressed arrays behind one index) needs each
//! chunk to contribute a small, *combinable* summary so that aggregates
//! over any chunk subset — sum, mean, variance, L2 — can be assembled
//! without decompressing anything. [`ChunkStats`] is that summary,
//! computed entirely in compressed space from the `{s, i, N, F}` form:
//!
//! * `sum` comes from the per-block DC coefficients (Algorithm 7,
//!   padding-corrected as in [`CompressedArray::mean_exact`]);
//! * `sum_sq` is `Σ Ĉ²` — orthonormality makes coefficient energy equal
//!   element energy (the identity behind Algorithm 10);
//! * `min_bound`/`max_bound` envelope every reconstructed element: within
//!   a block, `element − mean = Σ_{j≠DC} c_j·φ_j(x)`, and because the
//!   transform matrix is orthogonal its columns are unit vectors —
//!   `Σ_j φ_j(x)² = 1` at every position `x` — so Cauchy–Schwarz gives
//!   `|element − mean| ≤ √(Σ_{j≠DC} c_j²)` (the block's AC energy).
//!
//! [`ErrorBounds`] carries the paper's §IV-D binning error model alongside:
//! each stored coefficient is off by at most half a bin (`N_k/(2r)`), and
//! orthonormality turns those coefficient bounds into L∞/L2/mean bounds on
//! the decompressed elements. Both types combine associatively in chunk
//! order, which keeps multi-chunk results bit-identical at any thread
//! count (the PR-2 determinism contract).

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;
use rayon::prelude::*;

/// Combinable compressed-space statistics of one array ("chunk").
///
/// All fields describe the *reconstruction* (the data the compressed form
/// actually stores); [`ErrorBounds`] relates them to the original data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Logical (unpadded) element count `Πs`.
    pub count: u64,
    /// Sum of the logical elements (padding-corrected, like
    /// [`CompressedArray::mean_exact`]).
    pub sum: f64,
    /// Sum of squared elements over the padded block grid (`Σ Ĉ²` by
    /// orthonormality). Padded positions reconstruct to (near) zero, so
    /// this matches the logical `Σx²` up to compression error.
    pub sum_sq: f64,
    /// Conservative lower bound on every reconstructed element.
    pub min_bound: f64,
    /// Conservative upper bound on every reconstructed element.
    pub max_bound: f64,
}

impl ChunkStats {
    /// The identity element: statistics of zero chunks.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min_bound: f64::INFINITY,
            max_bound: f64::NEG_INFINITY,
        }
    }

    /// Folds another chunk's statistics into this one. Callers must apply
    /// merges in chunk order for bit-deterministic multi-chunk results.
    pub fn merge(&mut self, other: &ChunkStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min_bound = self.min_bound.min(other.min_bound);
        self.max_bound = self.max_bound.max(other.max_bound);
    }

    /// Mean of the covered elements (NaN for zero chunks).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Population variance via `E[x²] − E[x]²` (NaN for zero chunks;
    /// clamped at zero against floating-point cancellation).
    pub fn variance(&self) -> f64 {
        let n = self.count as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// L2 norm of the covered elements: `√Σx²`.
    pub fn l2_norm(&self) -> f64 {
        self.sum_sq.sqrt()
    }

    /// True if the value interval `[min_bound, max_bound]` (widened by
    /// `slack ≥ 0` on both sides) intersects `[lo, hi]`.
    pub fn value_range_overlaps(&self, lo: f64, hi: f64, slack: f64) -> bool {
        self.min_bound - slack <= hi && self.max_bound + slack >= lo
    }
}

/// The paper's §IV-D binning error model, per statistic.
///
/// Every stored coefficient is within half a bin width `N_k/(2r)` of the
/// true coefficient. With `k` kept coefficients per block this gives, per
/// block, a coefficient-error L∞ of `h_k = N_k/(2r)` and hence:
///
/// * element L∞: `|x̂ − x| ≤ Σ|Δc_j| ≤ k·h_k` (basis entries ≤ 1);
/// * whole-array L2: `‖x̂ − x‖₂ = ‖ΔĈ‖₂ ≤ √(Σ_blocks k·h_k²)`;
/// * mean: `|Δmean| ≤ ‖Δx‖₂/√n` (Cauchy–Schwarz), and also ≤ the L∞.
///
/// The model covers *binning* error only: pruned-away coefficients are not
/// recoverable from the compressed form, so with a pruning mask these
/// bounds understate the total error by the dropped coefficients'
/// magnitudes (measure those at compression time via
/// [`crate::compress_with_report`] if needed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBounds {
    /// Bound on any single element's reconstruction error.
    pub linf: f64,
    /// Bound on the L2 norm of the whole reconstruction error.
    pub l2: f64,
}

impl ErrorBounds {
    /// The identity element: exact (zero-error) data.
    pub fn exact() -> Self {
        Self { linf: 0.0, l2: 0.0 }
    }

    /// Folds another chunk's bounds into this one: element bounds take the
    /// max, L2 bounds add in quadrature (disjoint element sets).
    pub fn merge(&mut self, other: &ErrorBounds) {
        self.linf = self.linf.max(other.linf);
        self.l2 = (self.l2 * self.l2 + other.l2 * other.l2).sqrt();
    }

    /// Bound on the error of a mean over `count` elements:
    /// `min(linf, l2/√count)`.
    pub fn mean_bound(&self, count: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        self.linf.min(self.l2 / (count as f64).sqrt())
    }

    /// Bound on the error of a sum over `count` elements:
    /// `l2·√count` (Cauchy–Schwarz), capped by `count·linf`.
    pub fn sum_bound(&self, count: u64) -> f64 {
        let n = count as f64;
        (self.l2 * n.sqrt()).min(n * self.linf)
    }
}

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// Per-block value envelopes `(block_mean − spread, block_mean +
    /// spread)` with `spread = √(Σ_{j≠DC} c_j²)` (Cauchy–Schwarz against
    /// the transform's unit column norms), in block order. Every
    /// reconstructed element of block `kb` lies inside envelope `kb`.
    pub fn block_envelopes(&self) -> Result<Vec<(f64, f64)>, BlazError> {
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let scale = self.settings.dc_scale();
        Ok((0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let mean = self.coeff(kb, dc_slot).to_f64() / scale;
                let mut ac_energy = 0.0;
                for slot in 0..k {
                    if slot != dc_slot {
                        let c = self.coeff(kb, slot).to_f64();
                        ac_energy += c * c;
                    }
                }
                let spread = ac_energy.sqrt();
                (mean - spread, mean + spread)
            })
            .collect())
    }

    /// The combinable compressed-space statistics of this array: sums from
    /// the DC coefficients, energy from `Σ Ĉ²`, and the block-envelope
    /// hull. Requires the DC coefficient (like [`CompressedArray::mean`]).
    ///
    /// One fused pass over the coefficients (this sits on the store's
    /// ingest and scan hot paths). Deterministic at any thread count:
    /// per-block partials are combined in block order, in `f64` so
    /// cross-chunk combining does not inherit narrow-precision
    /// accumulation error.
    pub fn stats_partial(&self) -> Result<ChunkStats, BlazError> {
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let scale = self.settings.dc_scale();
        // Per block: (DC, total energy, envelope low, envelope high).
        let per_block: Vec<(f64, f64, f64, f64)> = (0..self.block_count())
            .into_par_iter()
            .with_min_len(32)
            .map(|kb| {
                let dc = self.coeff(kb, dc_slot).to_f64();
                let mut energy = 0.0;
                let mut ac_energy = 0.0;
                for slot in 0..k {
                    let c = self.coeff(kb, slot).to_f64();
                    energy += c * c;
                    if slot != dc_slot {
                        ac_energy += c * c;
                    }
                }
                let mean = dc / scale;
                let spread = ac_energy.sqrt();
                (dc, energy, mean - spread, mean + spread)
            })
            .collect();
        let mut dc_sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min_bound = f64::INFINITY;
        let mut max_bound = f64::NEG_INFINITY;
        for &(dc, energy, lo, hi) in &per_block {
            dc_sum += dc;
            sum_sq += energy;
            min_bound = min_bound.min(lo);
            max_bound = max_bound.max(hi);
        }
        Ok(ChunkStats {
            count: self.shape().iter().product::<usize>() as u64,
            sum: dc_sum * scale,
            sum_sq,
            min_bound,
            max_bound,
        })
    }

    /// Sequential, allocation-free variant of
    /// [`CompressedArray::stats_partial`]: the identical per-block
    /// arithmetic folded in the identical block order — so the result is
    /// bit-for-bit equal at any thread count — fused into one pass with
    /// no per-block vector. This is the store's scan-loop entry point,
    /// where per-chunk allocations would dominate the query cost.
    pub fn stats_partial_seq(&self) -> Result<ChunkStats, BlazError> {
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let scale = self.settings.dc_scale();
        let mut dc_sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min_bound = f64::INFINITY;
        let mut max_bound = f64::NEG_INFINITY;
        for kb in 0..self.block_count() {
            let dc = self.coeff(kb, dc_slot).to_f64();
            let mut energy = 0.0;
            let mut ac_energy = 0.0;
            for slot in 0..k {
                let c = self.coeff(kb, slot).to_f64();
                energy += c * c;
                if slot != dc_slot {
                    ac_energy += c * c;
                }
            }
            let mean = dc / scale;
            let spread = ac_energy.sqrt();
            dc_sum += dc;
            sum_sq += energy;
            min_bound = min_bound.min(mean - spread);
            max_bound = max_bound.max(mean + spread);
        }
        Ok(ChunkStats {
            count: self.shape().iter().product::<usize>() as u64,
            sum: dc_sum * scale,
            sum_sq,
            min_bound,
            max_bound,
        })
    }

    /// Allocation-free zone test over the block envelopes: true if any
    /// envelope of [`CompressedArray::block_envelopes`], widened by
    /// `slack ≥ 0` on both sides, intersects `[lo, hi]`. Equivalent to
    /// collecting the envelopes and scanning them, but short-circuits on
    /// the first hit and allocates nothing.
    pub fn any_envelope_overlaps(&self, lo: f64, hi: f64, slack: f64) -> Result<bool, BlazError> {
        self.require_dc()?;
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let k = self.kept_per_block();
        let scale = self.settings.dc_scale();
        for kb in 0..self.block_count() {
            let mean = self.coeff(kb, dc_slot).to_f64() / scale;
            let mut ac_energy = 0.0;
            for slot in 0..k {
                if slot != dc_slot {
                    let c = self.coeff(kb, slot).to_f64();
                    ac_energy += c * c;
                }
            }
            let spread = ac_energy.sqrt();
            if mean - spread - slack <= hi && mean + spread + slack >= lo {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The §IV-D binning error-model bounds for this array (see
    /// [`ErrorBounds`] for what is and is not covered).
    pub fn error_bounds(&self) -> ErrorBounds {
        let k = self.kept_per_block() as f64;
        let two_r = 2.0 * I::radius_f64();
        let mut linf = 0.0f64;
        let mut l2_sq = 0.0f64;
        for &n in self.biggest() {
            let hb = n.to_f64().abs() / two_r;
            linf = linf.max(k * hb);
            l2_sq += k * hb * hb;
        }
        ErrorBounds {
            linf,
            l2: l2_sq.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, PruningMask, Settings, TransformKind};
    use blazr_tensor::{reduce, NdArray};
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.5, 1.5))
    }

    fn settings() -> Settings {
        Settings::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn stats_match_direct_reductions() {
        let a = random_array(vec![16, 16], 1);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let s = c.stats_partial().unwrap();
        assert_eq!(s.count, 256);
        assert!((s.mean() - c.mean_exact().unwrap()).abs() < 1e-12);
        assert!((s.l2_norm() - c.l2_norm()).abs() < 1e-9);
        assert!((s.mean() - reduce::mean(&a)).abs() < 1e-3);
        assert!((s.variance() - reduce::variance(&a)).abs() < 5e-3);
    }

    #[test]
    fn envelope_contains_every_reconstructed_element() {
        for seed in 0..4 {
            let a = random_array(vec![18, 14], seed); // padded shape
            let c = compress::<f32, i16>(&a, &settings()).unwrap();
            let s = c.stats_partial().unwrap();
            let d = c.decompress();
            for &x in d.as_slice() {
                assert!(
                    s.min_bound <= x && x <= s.max_bound,
                    "{x} outside [{}, {}]",
                    s.min_bound,
                    s.max_bound
                );
            }
        }
    }

    #[test]
    fn block_envelopes_bracket_blocks() {
        let a = random_array(vec![8, 8], 7);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let envs = c.block_envelopes().unwrap();
        assert_eq!(envs.len(), 4);
        let d = c.decompress();
        // Block (0,0) covers rows 0..4 × cols 0..4.
        for i in 0..4 {
            for j in 0..4 {
                let x = d.get(&[i, j]);
                assert!(envs[0].0 <= x && x <= envs[0].1);
            }
        }
    }

    #[test]
    fn merge_equals_whole_array_stats() {
        // Two stacked halves vs the whole: sums and energy must agree.
        let top = random_array(vec![8, 16], 2);
        let bot = random_array(vec![8, 16], 3);
        let whole = NdArray::from_fn(vec![16, 16], |i| {
            if i[0] < 8 {
                top.get(&[i[0], i[1]])
            } else {
                bot.get(&[i[0] - 8, i[1]])
            }
        });
        let s = settings();
        let ct = compress::<f64, i16>(&top, &s).unwrap();
        let cb = compress::<f64, i16>(&bot, &s).unwrap();
        let cw = compress::<f64, i16>(&whole, &s).unwrap();
        let mut merged = ChunkStats::empty();
        merged.merge(&ct.stats_partial().unwrap());
        merged.merge(&cb.stats_partial().unwrap());
        let wstats = cw.stats_partial().unwrap();
        assert_eq!(merged.count, wstats.count);
        assert!((merged.sum - wstats.sum).abs() < 1e-9);
        assert!((merged.sum_sq - wstats.sum_sq).abs() < 1e-9);
        assert!((merged.variance() - reduce::variance(&whole)).abs() < 5e-3);
    }

    #[test]
    fn binning_bounds_cover_actual_error() {
        // With no pruning, the §IV-D model must dominate the measured
        // reconstruction error.
        for seed in 0..4 {
            let a = random_array(vec![16, 16], 10 + seed);
            let c = compress::<f64, i16>(&a, &settings()).unwrap();
            let b = c.error_bounds();
            let d = c.decompress();
            let mut err_l2 = 0.0;
            let mut err_linf = 0.0f64;
            for (x, y) in a.as_slice().iter().zip(d.as_slice()) {
                let e = (x - y).abs();
                err_linf = err_linf.max(e);
                err_l2 += e * e;
            }
            let err_l2 = err_l2.sqrt();
            assert!(err_linf <= b.linf + 1e-12, "{err_linf} > {}", b.linf);
            assert!(err_l2 <= b.l2 + 1e-12, "{err_l2} > {}", b.l2);
            assert!(
                (c.mean_exact().unwrap() - reduce::mean(&a)).abs() <= b.mean_bound(256) + 1e-12
            );
        }
    }

    #[test]
    fn bounds_merge_semantics() {
        let mut b = ErrorBounds { linf: 0.1, l2: 3.0 };
        b.merge(&ErrorBounds { linf: 0.2, l2: 4.0 });
        assert_eq!(b.linf, 0.2);
        assert!((b.l2 - 5.0).abs() < 1e-12);
        assert!(b.mean_bound(100) <= 0.2);
        assert_eq!(ErrorBounds::exact().mean_bound(10), 0.0);
        assert_eq!(ErrorBounds::exact().sum_bound(10), 0.0);
    }

    #[test]
    fn sequential_stats_are_bit_identical_to_parallel() {
        for seed in 0..4 {
            let a = random_array(vec![19, 23], 30 + seed); // padded shape
            let c = compress::<f32, i16>(&a, &settings()).unwrap();
            let par = c.stats_partial().unwrap();
            let seq = c.stats_partial_seq().unwrap();
            assert_eq!(par, seq, "seed {seed}");
        }
    }

    #[test]
    fn envelope_overlap_scan_matches_collected_envelopes() {
        let a = random_array(vec![20, 20], 40);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let envs = c.block_envelopes().unwrap();
        for (lo, hi, slack) in [
            (-0.5, 0.5, 0.0),
            (2.0, 3.0, 0.0),
            (2.0, 3.0, 1.5),
            (-10.0, -9.0, 0.0),
            (f64::NEG_INFINITY, f64::INFINITY, 0.0),
        ] {
            let collected = envs
                .iter()
                .any(|&(bl, bh)| bl - slack <= hi && bh + slack >= lo);
            assert_eq!(
                c.any_envelope_overlaps(lo, hi, slack).unwrap(),
                collected,
                "[{lo}, {hi}] slack {slack}"
            );
        }
    }

    #[test]
    fn stats_require_dc() {
        let a = random_array(vec![8, 8], 5);
        let mut keep = vec![true; 16];
        keep[0] = false;
        let s = settings()
            .with_mask(PruningMask::from_keep(vec![4, 4], keep).unwrap())
            .unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        assert!(c.stats_partial().is_err());
        assert!(c.stats_partial_seq().is_err());
        assert!(c.any_envelope_overlaps(0.0, 1.0, 0.0).is_err());
        assert!(c.block_envelopes().is_err());
        let s2 = settings().with_transform(TransformKind::Identity);
        let c2 = compress::<f64, i16>(&a, &s2).unwrap();
        assert!(c2.stats_partial().is_err());
    }

    #[test]
    fn empty_stats_are_the_identity() {
        let a = random_array(vec![12, 12], 6);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let s = c.stats_partial().unwrap();
        let mut acc = ChunkStats::empty();
        acc.merge(&s);
        assert_eq!(acc, s);
        assert!(!ChunkStats::empty().value_range_overlaps(-1.0, 1.0, 0.0));
    }
}
