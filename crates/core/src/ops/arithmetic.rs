//! Array-valued compressed-space operations: negation, addition,
//! subtraction, scalar addition, scalar multiplication
//! (Algorithms 1, 2, 4, 5).

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;
use rayon::prelude::*;

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// Negation (Algorithm 1): negate every bin index. Introduces no error
    /// — the indices are proportional to the coefficients.
    pub fn negate(&self) -> Self {
        let mut out = self.clone();
        out.negate_in_place();
        out
    }

    /// In-place negation.
    pub fn negate_in_place(&mut self) {
        for f in &mut self.indices {
            *f = I::from_i64(-f.to_i64());
        }
    }

    /// Element-wise addition (Algorithm 2): sum the specified
    /// coefficients, find each block's new biggest coefficient, and rebin.
    /// The only new error is that rebinning.
    pub fn add(&self, other: &Self) -> Result<Self, BlazError> {
        self.check_compatible(other)?;
        self.combine_coefficients(other, |a, b| a + b)
    }

    /// Element-wise subtraction: `self − other`. The paper realizes the
    /// difference as negation followed by addition; this computes the same
    /// coefficients in one pass (tested equivalent).
    pub fn sub(&self, other: &Self) -> Result<Self, BlazError> {
        self.check_compatible(other)?;
        self.combine_coefficients(other, |a, b| a - b)
    }

    fn combine_coefficients(
        &self,
        other: &Self,
        f: impl Fn(P, P) -> P + Send + Sync,
    ) -> Result<Self, BlazError> {
        let k = self.kept_per_block();
        let n_blocks = self.block_count();
        let mut biggest = vec![P::zero(); n_blocks];
        let mut indices = vec![I::from_i64(0); n_blocks * k];
        biggest
            .par_iter_mut()
            .zip(indices.par_chunks_mut(k))
            .enumerate()
            .with_min_len(32)
            .for_each_init(
                || vec![P::zero(); k],
                |coeffs, (kb, (n_out, idx_out))| {
                    let mut n = P::zero();
                    for (slot, c_out) in coeffs.iter_mut().enumerate() {
                        let c = f(self.coeff(kb, slot), other.coeff(kb, slot));
                        *c_out = c;
                        n = n.max_val(c.abs());
                    }
                    *n_out = n;
                    for (&c, i_out) in coeffs.iter().zip(idx_out.iter_mut()) {
                        let q = if n == P::zero() {
                            0.0
                        } else {
                            (c / n).to_f64()
                        };
                        *i_out = I::bin(q);
                    }
                },
            );
        Ok(Self {
            shape: self.shape.clone(),
            settings: self.settings.clone(),
            biggest,
            indices,
        })
    }

    /// Scalar addition (Algorithm 4): add `x·√(Πi)` to every block's DC
    /// coefficient, then rebin. Requires the DC coefficient to be kept.
    ///
    /// Deviation from the paper noted in DESIGN.md: Algorithm 4 computes
    /// the new `N` *before* updating the DC coefficient, which can push
    /// indices out of range; we recompute `N` afterwards, matching
    /// Algorithm 2's convention.
    pub fn add_scalar(&self, x: f64) -> Result<Self, BlazError> {
        self.require_dc()?;
        let k = self.kept_per_block();
        let dc_slot = self
            .settings
            .mask
            .dc_kept_slot()
            .ok_or(BlazError::DcUnavailable)?;
        let delta = P::from_f64(x * self.settings.dc_scale());
        let n_blocks = self.block_count();
        let mut biggest = vec![P::zero(); n_blocks];
        let mut indices = vec![I::from_i64(0); n_blocks * k];
        biggest
            .par_iter_mut()
            .zip(indices.par_chunks_mut(k))
            .enumerate()
            .with_min_len(32)
            .for_each_init(
                || vec![P::zero(); k],
                |coeffs, (kb, (n_out, idx_out))| {
                    let mut n = P::zero();
                    for (slot, c_out) in coeffs.iter_mut().enumerate() {
                        let mut c = self.coeff(kb, slot);
                        if slot == dc_slot {
                            c = c + delta;
                        }
                        *c_out = c;
                        n = n.max_val(c.abs());
                    }
                    *n_out = n;
                    for (&c, i_out) in coeffs.iter().zip(idx_out.iter_mut()) {
                        let q = if n == P::zero() {
                            0.0
                        } else {
                            (c / n).to_f64()
                        };
                        *i_out = I::bin(q);
                    }
                },
            );
        Ok(Self {
            shape: self.shape.clone(),
            settings: self.settings.clone(),
            biggest,
            indices,
        })
    }

    /// Scalar multiplication (Algorithm 5): scale `N` by `|x|` and flip
    /// index signs if `x < 0`. Introduces no error.
    pub fn mul_scalar(&self, x: f64) -> Self {
        let mut out = self.clone();
        let ax = P::from_f64(x.abs());
        for n in &mut out.biggest {
            *n = *n * ax;
        }
        if x < 0.0 {
            out.negate_in_place();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{compress, Settings};
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;
    use blazr_util::stats::max_abs_diff;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    fn settings() -> Settings {
        Settings::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn negation_is_exact_in_compressed_space() {
        let a = random_array(vec![12, 12], 1);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let n = c.negate();
        // decompress(negate(c)) == -decompress(c) exactly (bit-level).
        let lhs = n.decompress();
        let rhs = c.decompress().neg();
        assert_eq!(lhs.as_slice(), rhs.as_slice());
    }

    #[test]
    fn double_negation_is_identity() {
        let a = random_array(vec![8, 8], 2);
        let c = compress::<f32, i8>(&a, &settings()).unwrap();
        assert_eq!(c.negate().negate(), c);
    }

    #[test]
    fn addition_approximates_uncompressed_sum() {
        let a = random_array(vec![16, 16], 3);
        let b = random_array(vec![16, 16], 4);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let sum = ca.add(&cb).unwrap().decompress();
        let expect = a.add(&b);
        let err = max_abs_diff(sum.as_slice(), expect.as_slice());
        assert!(err < 5e-3, "err {err}");
    }

    #[test]
    fn sub_equals_negate_then_add() {
        let a = random_array(vec![16, 16], 5);
        let b = random_array(vec![16, 16], 6);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let direct = ca.sub(&cb).unwrap();
        let via_neg = ca.add(&cb.negate()).unwrap();
        assert_eq!(direct, via_neg);
    }

    #[test]
    fn add_rejects_mismatched_shapes() {
        let a = random_array(vec![8, 8], 7);
        let b = random_array(vec![8, 12], 8);
        let ca = compress::<f64, i8>(&a, &settings()).unwrap();
        let cb = compress::<f64, i8>(&b, &settings()).unwrap();
        assert!(ca.add(&cb).is_err());
    }

    #[test]
    fn add_rejects_mismatched_settings() {
        let a = random_array(vec![16, 16], 9);
        let ca = compress::<f64, i8>(&a, &settings()).unwrap();
        let cb = compress::<f64, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
        assert!(ca.add(&cb).is_err());
    }

    #[test]
    fn scalar_addition_shifts_mean() {
        let a = random_array(vec![16, 16], 10);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let shifted = c.add_scalar(0.75).unwrap();
        let d = shifted.decompress();
        let expect = a.add_scalar(0.75);
        let err = max_abs_diff(d.as_slice(), expect.as_slice());
        assert!(err < 5e-3, "err {err}");
    }

    #[test]
    fn scalar_addition_requires_dc() {
        use crate::PruningMask;
        let a = random_array(vec![8, 8], 11);
        let mut keep = vec![true; 16];
        keep[0] = false;
        let s = settings()
            .with_mask(PruningMask::from_keep(vec![4, 4], keep).unwrap())
            .unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        assert!(matches!(
            c.add_scalar(1.0),
            Err(crate::BlazError::DcUnavailable)
        ));
    }

    #[test]
    fn scalar_multiplication_is_exact() {
        let a = random_array(vec![16, 16], 12);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        // mul by positive scalar: decompressed values scale exactly.
        let m = c.mul_scalar(3.0);
        let lhs = m.decompress();
        let rhs = c.decompress().mul_scalar(3.0);
        let err = max_abs_diff(lhs.as_slice(), rhs.as_slice());
        assert!(err < 1e-12, "err {err}");
        // Negative scalar flips signs exactly.
        let neg = c.mul_scalar(-2.0);
        let lhs = neg.decompress();
        let rhs = c.decompress().mul_scalar(-2.0);
        let err = max_abs_diff(lhs.as_slice(), rhs.as_slice());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn mul_by_zero_zeroes_everything() {
        let a = random_array(vec![8, 8], 13);
        let c = compress::<f64, i8>(&a, &settings()).unwrap();
        let z = c.mul_scalar(0.0).decompress();
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn paper_difference_recipe_finds_perturbations() {
        // The Fig. 4 recipe: difference via negation + addition highlights
        // where two fields diverge.
        let a = random_array(vec![32, 32], 14);
        let mut b = a.clone();
        // Perturb one region.
        for i in 8..12 {
            for j in 8..12 {
                let v = b.get(&[i, j]);
                b.set(&[i, j], v + 0.5);
            }
        }
        let s = Settings::new(vec![8, 8]).unwrap();
        let ca = compress::<f32, i16>(&a, &s).unwrap();
        let cb = compress::<f32, i16>(&b, &s).unwrap();
        let diff = cb.add(&ca.negate()).unwrap().decompress();
        // The perturbed region should carry most of the energy.
        let inside: f64 = (8..12)
            .flat_map(|i| (8..12).map(move |j| (i, j)))
            .map(|(i, j)| diff.get(&[i, j]).abs())
            .sum();
        let total: f64 = diff.as_slice().iter().map(|x| x.abs()).sum();
        assert!(inside / total > 0.5, "inside {inside} total {total}");
    }
}
