//! The compressed-space operations of paper §IV (Table I).
//!
//! All operations work on the `{s, i, N, F}` representation without
//! decompressing. Two properties make this possible (§IV-A):
//!
//! 1. Each block of `F` is proportional to its block of transform
//!    coefficients — scaling `F` by `N` recovers the specified
//!    coefficients (Algorithm 3).
//! 2. The transform is orthonormal, so dot products (and everything
//!    derived from them: norms, variances, similarities) are identical in
//!    coefficient space.
//!
//! | Operation | Result | Source of error |
//! |---|---|---|
//! | [negation](crate::CompressedArray::negate) | array | none |
//! | [element-wise addition](crate::CompressedArray::add) | array | rebinning |
//! | [scalar addition](crate::CompressedArray::add_scalar) | array | rebinning |
//! | [scalar multiplication](crate::CompressedArray::mul_scalar) | array | none |
//! | [dot product](crate::CompressedArray::dot) | scalar | none |
//! | [mean](crate::CompressedArray::mean) | scalar | none |
//! | [covariance](crate::CompressedArray::covariance) | scalar | none |
//! | [variance](crate::CompressedArray::variance) | scalar | none |
//! | [L2 norm](crate::CompressedArray::l2_norm) | scalar | none |
//! | [cosine similarity](crate::CompressedArray::cosine_similarity) | scalar | none |
//! | [SSIM](crate::CompressedArray::ssim) | scalar | none |
//! | [approx. Wasserstein](crate::CompressedArray::wasserstein) | scalar | block-size-dependent |
//!
//! "None" means no error beyond what compression already introduced.

mod arithmetic;
mod moments;
pub mod partials;
mod reductions;
mod similarity;
mod wasserstein;

pub use partials::{ChunkStats, ErrorBounds};
pub use similarity::SsimParams;
