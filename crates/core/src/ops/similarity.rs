//! Structural similarity (Algorithm 12).

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;

pub use blazr_tensor::reduce::SsimParams;

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// SSIM (Algorithm 12): luminance, contrast, and structure terms from
    /// the compressed-space mean, variance, and covariance, combined with
    /// the configured stabilizers and weights.
    pub fn ssim(&self, other: &Self, p: &SsimParams) -> Result<P, BlazError> {
        let mu_a = self.mean()?;
        let mu_b = other.mean()?;
        let var_a = self.variance()?;
        let var_b = other.variance()?;
        let sd_a = var_a.sqrt();
        let sd_b = var_b.sqrt();
        let cov = self.covariance(other)?;

        let two = P::from_f64(2.0);
        let sl = P::from_f64(p.luminance_stabilizer);
        let sc = P::from_f64(p.contrast_stabilizer);
        let half_sc = P::from_f64(p.contrast_stabilizer / 2.0);

        let l = (two * mu_a * mu_b + sl) / (mu_a * mu_a + mu_b * mu_b + sl);
        let c = (two * sd_a * sd_b + sc) / (var_a + var_b + sc);
        let s = (cov + half_sc) / (sd_a * sd_b + half_sc);

        // Weighted product. The paper's experiments use unit weights; we
        // honor arbitrary weights through f64 powf, rounding back into P.
        let result =
            if p.luminance_weight == 1.0 && p.contrast_weight == 1.0 && p.structure_weight == 1.0 {
                l * c * s
            } else {
                P::from_f64(
                    l.to_f64().powf(p.luminance_weight)
                        * c.to_f64().powf(p.contrast_weight)
                        * s.to_f64().powf(p.structure_weight),
                )
            };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::SsimParams;
    use crate::{compress, Settings};
    use blazr_tensor::reduce;
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_unit_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform())
    }

    fn settings() -> Settings {
        Settings::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn ssim_self_is_one() {
        let a = random_unit_array(vec![16, 16], 1);
        let c = compress::<f64, i16>(&a, &settings()).unwrap();
        let s = c.ssim(&c, &SsimParams::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn ssim_matches_reference() {
        let a = random_unit_array(vec![16, 16], 2);
        let b = random_unit_array(vec![16, 16], 3);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let got = ca.ssim(&cb, &SsimParams::default()).unwrap();
        let expect = reduce::ssim(&a, &b, &SsimParams::default());
        assert!((got - expect).abs() < 5e-3, "got {got} expect {expect}");
    }

    #[test]
    fn ssim_orders_similarity() {
        let a = random_unit_array(vec![16, 16], 4);
        // Near-identical: tiny perturbation.
        let near = a.add_scalar(0.001);
        // Unrelated noise.
        let far = random_unit_array(vec![16, 16], 5);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cn = compress::<f64, i16>(&near, &settings()).unwrap();
        let cf = compress::<f64, i16>(&far, &settings()).unwrap();
        let p = SsimParams::default();
        let s_near = ca.ssim(&cn, &p).unwrap();
        let s_far = ca.ssim(&cf, &p).unwrap();
        assert!(s_near > 0.99, "near {s_near}");
        assert!(s_near > s_far, "near {s_near} far {s_far}");
    }

    #[test]
    fn weighted_ssim_path() {
        let a = random_unit_array(vec![16, 16], 6);
        let b = random_unit_array(vec![16, 16], 7);
        let ca = compress::<f64, i16>(&a, &settings()).unwrap();
        let cb = compress::<f64, i16>(&b, &settings()).unwrap();
        let p = SsimParams {
            structure_weight: 2.0,
            ..SsimParams::default()
        };
        let got = ca.ssim(&cb, &p).unwrap();
        let unit = ca.ssim(&cb, &SsimParams::default()).unwrap();
        assert_ne!(got, unit);
        assert!(got.is_finite());
    }
}
