//! The approximate Wasserstein distance (Algorithm 13, §IV-B).
//!
//! The one *approximate* operation in the repertoire: block-wise means
//! serve as a coarse proxy for the decompressed arrays, so the error is a
//! function of the block size — one-element blocks would make it exact at
//! the cost of all compression (§IV-B). Because a sort is involved, this
//! operation is not differentiable.

use crate::{BinIndex, BlazError, CompressedArray};
use blazr_precision::Real;
use blazr_tensor::reduce::wasserstein_1d;

impl<P: Real, I: BinIndex> CompressedArray<P, I> {
    /// Approximate p-order Wasserstein distance (Algorithm 13): extract
    /// both arrays' block-wise means, softmax each if it does not already
    /// sum to 1, sort, and take `(Σ|PA′−PB′|^p / Π⌈s⊘i⌉)^(1/p)`.
    ///
    /// The power mean is max-normalized internally so large orders (the
    /// paper sweeps p up to 80) do not underflow to zero.
    pub fn wasserstein(&self, other: &Self, p: f64) -> Result<f64, BlazError> {
        self.check_compatible(other)?;
        let a = self.block_means()?;
        let b = other.block_means()?;
        Ok(wasserstein_1d(&a, &b, p))
    }

    /// Approximate p-norm distance on the block-mean proxies (the same
    /// §IV-B approximation idea, without the sort — so it compares
    /// *spatially aligned* structure rather than distributions):
    /// `(Σ_k |ā_k − b̄_k|^p / Πb)^(1/p)`, max-normalized against underflow.
    ///
    /// The paper's §V-C notes "higher-order norms such as L∞ are also able
    /// to ignore the noise"; this is that operation. See
    /// [`CompressedArray::approx_linf_distance`] for the p → ∞ limit.
    pub fn approx_lp_distance(&self, other: &Self, p: f64) -> Result<f64, BlazError> {
        self.check_compatible(other)?;
        assert!(p >= 1.0, "order must be >= 1");
        let a = self.block_means()?;
        let b = other.block_means()?;
        let diffs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).collect();
        let dmax = diffs.iter().cloned().fold(0.0, f64::max);
        if dmax == 0.0 {
            return Ok(0.0);
        }
        let sum: f64 = diffs.iter().map(|&d| (d / dmax).powf(p)).sum();
        Ok(dmax * (sum / diffs.len() as f64).powf(1.0 / p))
    }

    /// Approximate L∞ distance on the block-mean proxies: the largest
    /// per-block mean difference — the limit of
    /// [`CompressedArray::approx_lp_distance`] as p → ∞.
    pub fn approx_linf_distance(&self, other: &Self) -> Result<f64, BlazError> {
        self.check_compatible(other)?;
        let a = self.block_means()?;
        let b = other.block_means()?;
        Ok(a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use crate::{compress, Settings};
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn settings(bs: usize) -> Settings {
        Settings::new(vec![bs, bs]).unwrap()
    }

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform())
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = random_array(vec![16, 16], 1);
        let c = compress::<f64, i16>(&a, &settings(4)).unwrap();
        assert_eq!(c.wasserstein(&c, 2.0).unwrap(), 0.0);
    }

    #[test]
    fn is_symmetric() {
        let a = random_array(vec![16, 16], 2);
        let b = random_array(vec![16, 16], 3);
        let ca = compress::<f64, i16>(&a, &settings(4)).unwrap();
        let cb = compress::<f64, i16>(&b, &settings(4)).unwrap();
        let d1 = ca.wasserstein(&cb, 2.0).unwrap();
        let d2 = cb.wasserstein(&ca, 2.0).unwrap();
        assert!((d1 - d2).abs() < 1e-15);
        assert!(d1 > 0.0);
    }

    #[test]
    fn smaller_blocks_give_finer_approximation() {
        // §IV-B: approximation granularity follows block shape. Against a
        // localized perturbation, the 2×2-block distance should see
        // structure the 8×8-block distance smooths away; at the extreme,
        // 1×1 blocks reproduce the exact (uncompressed) distance.
        let a = random_array(vec![16, 16], 4);
        let mut b = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                let v = b.get(&[i, j]);
                b.set(&[i, j], v + 1.0);
            }
        }
        let exact = blazr_tensor::reduce::wasserstein_1d(a.as_slice(), b.as_slice(), 2.0);
        let approx_fine = {
            let ca = compress::<f64, i32>(&a, &settings(2)).unwrap();
            let cb = compress::<f64, i32>(&b, &settings(2)).unwrap();
            ca.wasserstein(&cb, 2.0).unwrap()
        };
        let approx_coarse = {
            let ca = compress::<f64, i32>(&a, &settings(8)).unwrap();
            let cb = compress::<f64, i32>(&b, &settings(8)).unwrap();
            ca.wasserstein(&cb, 2.0).unwrap()
        };
        // Finer blocks should land closer to the exact value.
        let err_fine = (approx_fine - exact).abs();
        let err_coarse = (approx_coarse - exact).abs();
        assert!(
            err_fine <= err_coarse,
            "fine {approx_fine} coarse {approx_coarse} exact {exact}"
        );
    }

    #[test]
    fn requires_matching_settings() {
        let a = random_array(vec![16, 16], 5);
        let ca = compress::<f64, i16>(&a, &settings(4)).unwrap();
        let cb = compress::<f64, i16>(&a, &settings(8)).unwrap();
        assert!(ca.wasserstein(&cb, 2.0).is_err());
    }

    #[test]
    fn lp_distance_identity_symmetry_and_limits() {
        let a = random_array(vec![16, 16], 10);
        let b = random_array(vec![16, 16], 11);
        let ca = compress::<f64, i16>(&a, &settings(4)).unwrap();
        let cb = compress::<f64, i16>(&b, &settings(4)).unwrap();
        assert_eq!(ca.approx_lp_distance(&ca, 2.0).unwrap(), 0.0);
        assert_eq!(ca.approx_linf_distance(&ca).unwrap(), 0.0);
        let d1 = ca.approx_lp_distance(&cb, 3.0).unwrap();
        let d2 = cb.approx_lp_distance(&ca, 3.0).unwrap();
        assert!((d1 - d2).abs() < 1e-15);
        // p-norm means are monotone nondecreasing in p and converge to L∞.
        let linf = ca.approx_linf_distance(&cb).unwrap();
        let mut last = 0.0;
        for p in [1.0, 2.0, 4.0, 16.0, 64.0] {
            let d = ca.approx_lp_distance(&cb, p).unwrap();
            assert!(d >= last - 1e-12, "p={p}: {d} < {last}");
            assert!(d <= linf * (1.0 + 1e-12), "p={p}: {d} > linf {linf}");
            last = d;
        }
        assert!(
            (ca.approx_lp_distance(&cb, 512.0).unwrap() - linf).abs() < 0.05 * linf,
            "high p should approach L∞"
        );
    }

    #[test]
    fn linf_ignores_diffuse_noise_like_the_paper_says() {
        // §V-C: higher-order norms suppress diffuse noise relative to a
        // localized topology change.
        let base = random_array(vec![32, 32], 12);
        let mut noisy = base.clone();
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        for i in 0..32 {
            for j in 0..32 {
                let v = noisy.get(&[i, j]);
                noisy.set(&[i, j], v + rng.uniform_in(-0.01, 0.01));
            }
        }
        let mut localized = base.clone();
        for i in 0..4 {
            for j in 0..4 {
                let v = localized.get(&[i, j]);
                localized.set(&[i, j], v + 1.0);
            }
        }
        let s = settings(4);
        let cb = compress::<f64, i32>(&base, &s).unwrap();
        let cn = compress::<f64, i32>(&noisy, &s).unwrap();
        let cl = compress::<f64, i32>(&localized, &s).unwrap();
        let sep_l1 =
            cl.approx_lp_distance(&cb, 1.0).unwrap() / cn.approx_lp_distance(&cb, 1.0).unwrap();
        let sep_linf =
            cl.approx_linf_distance(&cb).unwrap() / cn.approx_linf_distance(&cb).unwrap();
        assert!(
            sep_linf > sep_l1,
            "L∞ should separate the event better: L1 {sep_l1} vs L∞ {sep_linf}"
        );
    }

    #[test]
    fn higher_order_suppresses_small_differences() {
        // The Fig. 6(b) mechanism: many small diffs + one large diff; as p
        // grows the distance is dominated by the large one.
        let base = random_array(vec![32, 32], 6);
        let mut small = base.clone();
        for i in 0..32 {
            for j in 0..32 {
                let v = small.get(&[i, j]);
                small.set(&[i, j], v + 1e-4 * ((i + j) % 3) as f64);
            }
        }
        let mut large = base.clone();
        for i in 0..8 {
            for j in 0..8 {
                let v = large.get(&[i, j]);
                large.set(&[i, j], v + 2.0);
            }
        }
        let s = settings(4);
        let cb = compress::<f64, i32>(&base, &s).unwrap();
        let cs = compress::<f64, i32>(&small, &s).unwrap();
        let cl = compress::<f64, i32>(&large, &s).unwrap();
        let ratio_p2 =
            cl.wasserstein(&cb, 2.0).unwrap() / cs.wasserstein(&cb, 2.0).unwrap().max(1e-300);
        let ratio_p32 =
            cl.wasserstein(&cb, 32.0).unwrap() / cs.wasserstein(&cb, 32.0).unwrap().max(1e-300);
        assert!(
            ratio_p32 > ratio_p2,
            "peak separation should grow with p: p2 {ratio_p2} p32 {ratio_p32}"
        );
    }
}
