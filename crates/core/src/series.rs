//! Compressed time series (the paper's §I use case as an API).
//!
//! "Keeping the time-sequences of evolving simulation results in
//! compressed form" (§VI) and analyzing them — deviation detection between
//! two runs, scission-style event detection within one run — without
//! decompressing any snapshot. [`CompressedSeries`] is a thin, honest
//! wrapper: it stores compressed arrays and exposes the adjacent-step and
//! pairwise analyses the paper's three experiments perform.

use crate::{BinIndex, BlazError, CompressedArray, Settings};
use blazr_precision::{Real, StorableReal};
use blazr_tensor::NdArray;

/// A time-ordered sequence of compressed snapshots sharing one setting.
#[derive(Debug, Clone)]
pub struct CompressedSeries<P, I> {
    settings: Settings,
    labels: Vec<u64>,
    frames: Vec<CompressedArray<P, I>>,
}

impl<P: Real, I: BinIndex> CompressedSeries<P, I> {
    /// An empty series that will compress every pushed frame with
    /// `settings`.
    pub fn new(settings: Settings) -> Self {
        Self {
            settings,
            labels: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Compresses and appends a snapshot with a caller-chosen label
    /// (time step, wall-clock, …). Labels must be strictly increasing.
    pub fn push(&mut self, label: u64, frame: &NdArray<f64>) -> Result<(), BlazError> {
        if let Some(&last) = self.labels.last() {
            if label <= last {
                return Err(BlazError::InvalidArgument(format!(
                    "labels must increase: {label} after {last}"
                )));
            }
        }
        let c = crate::compress::<P, I>(frame, &self.settings)?;
        if let Some(first) = self.frames.first() {
            first.check_compatible(&c)?;
        }
        self.labels.push(label);
        self.frames.push(c);
        Ok(())
    }

    /// Rebuilds a series from already-compressed frames (the inverse of
    /// iterating [`CompressedSeries::frame`] — what a persistent store
    /// does when loading a series from disk). Labels must be strictly
    /// increasing and every frame must share shape and `settings`.
    pub fn from_parts(
        settings: Settings,
        labels: Vec<u64>,
        frames: Vec<CompressedArray<P, I>>,
    ) -> Result<Self, BlazError> {
        if labels.len() != frames.len() {
            return Err(BlazError::InvalidArgument(format!(
                "{} labels for {} frames",
                labels.len(),
                frames.len()
            )));
        }
        if let Some(w) = labels.windows(2).find(|w| w[1] <= w[0]) {
            return Err(BlazError::InvalidArgument(format!(
                "labels must increase: {} after {}",
                w[1], w[0]
            )));
        }
        for f in &frames {
            if *f.settings() != settings {
                return Err(BlazError::SettingsMismatch);
            }
        }
        if let Some(first) = frames.first() {
            for f in &frames[1..] {
                first.check_compatible(f)?;
            }
        }
        Ok(Self {
            settings,
            labels,
            frames,
        })
    }

    /// The settings every frame was compressed with.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The labels, in order.
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// Borrow of frame `i`.
    pub fn frame(&self, i: usize) -> &CompressedArray<P, I> {
        &self.frames[i]
    }

    /// L2 distance between adjacent snapshots: one entry per consecutive
    /// pair `(label_i, label_{i+1}, ‖A_i − A_{i+1}‖₂)` — the Fig. 6(a)
    /// analysis.
    pub fn adjacent_l2(&self) -> Result<Vec<(u64, u64, f64)>, BlazError> {
        let mut out = Vec::new();
        for w in 0..self.frames.len().saturating_sub(1) {
            let d = self.frames[w].sub(&self.frames[w + 1])?.l2_norm();
            out.push((self.labels[w], self.labels[w + 1], d.to_f64()));
        }
        Ok(out)
    }

    /// Approximate Wasserstein distance between adjacent snapshots at
    /// order `p` — the Fig. 6(b) analysis.
    pub fn adjacent_wasserstein(&self, p: f64) -> Result<Vec<(u64, u64, f64)>, BlazError> {
        let mut out = Vec::new();
        for w in 0..self.frames.len().saturating_sub(1) {
            let d = self.frames[w].wasserstein(&self.frames[w + 1], p)?;
            out.push((self.labels[w], self.labels[w + 1], d));
        }
        Ok(out)
    }

    /// The adjacent pair with the largest L2 jump (event detection).
    /// A NaN distance (NaN in the data) ranks above every finite jump —
    /// surfaced, not panicked on.
    pub fn largest_jump(&self) -> Result<Option<(u64, u64, f64)>, BlazError> {
        Ok(self
            .adjacent_l2()?
            .into_iter()
            .max_by(|a, b| a.2.total_cmp(&b.2)))
    }

    /// First label at which this series deviates from `other` by more
    /// than `threshold` in relative L2 (`‖A−B‖/‖A‖`) — the §I "two
    /// movies" divergence query. Series must share labels and settings.
    pub fn first_divergence(&self, other: &Self, threshold: f64) -> Result<Option<u64>, BlazError> {
        if self.labels != other.labels {
            return Err(BlazError::SettingsMismatch);
        }
        for (i, &label) in self.labels.iter().enumerate() {
            let diff = self.frames[i].sub(&other.frames[i])?.l2_norm().to_f64();
            let scale = self.frames[i].l2_norm().to_f64().max(f64::MIN_POSITIVE);
            if diff / scale > threshold {
                return Ok(Some(label));
            }
        }
        Ok(None)
    }
}

impl<P: StorableReal, I: BinIndex> CompressedSeries<P, I> {
    /// Total compressed payload across all snapshots, in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| f.payload_bits().div_ceil(8))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn frame(t: f64, jump: bool) -> NdArray<f64> {
        NdArray::from_fn(vec![16, 16], |i| {
            let base = ((i[0] as f64 + t) / 5.0).sin() * ((i[1] as f64) / 7.0).cos();
            if jump && i[0] < 4 {
                base + 3.0
            } else {
                base
            }
        })
    }

    fn series_with_event() -> CompressedSeries<f32, i16> {
        let mut s = CompressedSeries::new(Settings::new(vec![4, 4]).unwrap());
        for t in 0..10u64 {
            s.push(t * 10, &frame(t as f64 * 0.1, t >= 7)).unwrap();
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = series_with_event();
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.labels()[3], 30);
    }

    #[test]
    fn labels_must_increase() {
        let mut s = CompressedSeries::<f32, i16>::new(Settings::new(vec![4, 4]).unwrap());
        s.push(5, &frame(0.0, false)).unwrap();
        assert!(matches!(
            s.push(5, &frame(0.1, false)),
            Err(BlazError::InvalidArgument(_))
        ));
        assert!(matches!(
            s.push(4, &frame(0.1, false)),
            Err(BlazError::InvalidArgument(_))
        ));
        assert!(s.push(6, &frame(0.1, false)).is_ok());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let s = series_with_event();
        let settings = s.settings().clone();
        let labels = s.labels().to_vec();
        let frames: Vec<_> = (0..s.len()).map(|i| s.frame(i).clone()).collect();
        let rebuilt =
            CompressedSeries::from_parts(settings.clone(), labels.clone(), frames.clone()).unwrap();
        assert_eq!(rebuilt.len(), s.len());
        assert_eq!(rebuilt.labels(), s.labels());
        assert_eq!(
            rebuilt.largest_jump().unwrap().unwrap(),
            s.largest_jump().unwrap().unwrap()
        );
        // Count mismatch, non-increasing labels, and foreign settings all
        // reject with InvalidArgument / SettingsMismatch.
        assert!(matches!(
            CompressedSeries::from_parts(settings.clone(), labels[..3].to_vec(), frames.clone()),
            Err(BlazError::InvalidArgument(_))
        ));
        let mut bad = labels.clone();
        bad.swap(0, 1);
        assert!(matches!(
            CompressedSeries::from_parts(settings, bad, frames.clone()),
            Err(BlazError::InvalidArgument(_))
        ));
        assert!(matches!(
            CompressedSeries::from_parts(Settings::new(vec![8, 8]).unwrap(), labels, frames),
            Err(BlazError::SettingsMismatch)
        ));
    }

    #[test]
    fn largest_jump_finds_the_event() {
        let s = series_with_event();
        let (t1, t2, d) = s.largest_jump().unwrap().unwrap();
        // The jump turns on between labels 60 and 70.
        assert_eq!((t1, t2), (60, 70));
        assert!(d > 1.0);
    }

    #[test]
    fn adjacent_metrics_have_right_lengths() {
        let s = series_with_event();
        assert_eq!(s.adjacent_l2().unwrap().len(), 9);
        assert_eq!(s.adjacent_wasserstein(2.0).unwrap().len(), 9);
    }

    #[test]
    fn divergence_between_two_movies() {
        let settings = Settings::new(vec![4, 4]).unwrap();
        let mut a = CompressedSeries::<f32, i16>::new(settings.clone());
        let mut b = CompressedSeries::<f32, i16>::new(settings);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for t in 0..8u64 {
            let base = frame(t as f64 * 0.1, false);
            // Movie b drifts after label 40.
            let drift = rng.uniform_in(0.3, 0.4);
            let drifted = if t >= 4 {
                base.map(|x| x + drift)
            } else {
                base.clone()
            };
            a.push(t * 10, &base).unwrap();
            b.push(t * 10, &drifted).unwrap();
        }
        let div = a.first_divergence(&b, 0.05).unwrap();
        assert_eq!(div, Some(40));
        // Identical series never diverge.
        assert_eq!(a.first_divergence(&a, 0.05).unwrap(), None);
    }

    #[test]
    fn mismatched_series_error() {
        let s1 = series_with_event();
        let mut s2 = CompressedSeries::<f32, i16>::new(Settings::new(vec![4, 4]).unwrap());
        s2.push(0, &frame(0.0, false)).unwrap();
        assert!(s1.first_divergence(&s2, 0.1).is_err());
    }

    #[test]
    fn payload_accounting() {
        let s = series_with_event();
        let per_frame = s.frame(0).payload_bits().div_ceil(8);
        assert_eq!(s.payload_bytes(), per_frame * 10);
    }
}
