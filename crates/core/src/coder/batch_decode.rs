//! Branch-light batched rANS decoding.
//!
//! The decoder walks a piece's symbols forward in batches of 256,
//! alternating the two interleaved states two-at-a-time so the state
//! select is structural rather than a data-dependent branch. Each step
//! is: slot = state mod SCALE, table row lookup, one multiply-add, then
//! a (rarely taken) renormalization pull from the word section. Escaped
//! symbols read their raw value from the escape section that follows
//! the words.
//!
//! Robustness contract: any truncated or bit-flipped stream returns a
//! [`BlazError`] — never a panic, never a read past the piece. The word
//! and escape cursors are bounds-checked, every renormalization pull
//! consumes a word (so corrupt zero states cannot loop forever), and
//! both final states must land back on the encoder's initial `L`, which
//! catches most payload corruption outright.

use super::ans::RANS_L;
use super::histogram::{SymbolTable, SCALE, SCALE_BITS};
use crate::{BinIndex, BlazError};
use blazr_util::bits::BitReader;
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Symbols decoded per refill-check batch.
const BATCH: usize = 256;

/// One slot of the decode table: everything a decode step needs in a
/// single load. `bias` is the precomputed `slot - cum`, so the step is
/// one multiply-add with no second lookup and no subtraction.
#[derive(Clone, Copy)]
struct Slot<I> {
    freq: u16,
    bias: u16,
    esc: bool,
    val: I,
}

/// Decoder view of a [`SymbolTable`]: a dense slot→entry map over the
/// whole `SCALE` slot space (32 KiB at `i16` — L1/L2-resident). Escape
/// slots carry `esc = true` and a dummy value.
pub(crate) struct DecTable<I> {
    slots: Vec<Slot<I>>,
}

impl<I: BinIndex> DecTable<I> {
    /// Expands a (validated) symbol table into decode form. The table's
    /// symbol ranges plus the escape range tile the slot space exactly,
    /// so every slot is written once.
    #[cfg(test)]
    pub(crate) fn new(t: &SymbolTable) -> Self {
        let mut dec = Self { slots: Vec::new() };
        dec.rebuild(t);
        dec
    }

    /// [`DecTable::new`] in place: re-expands `t` into this table's slot
    /// vector, reusing its capacity. After the first chunk a thread
    /// decodes, rebuilding for the next chunk's table touches no
    /// allocator (the slot space is always exactly [`SCALE`] entries).
    pub(crate) fn rebuild(&mut self, t: &SymbolTable) {
        self.slots.clear();
        self.slots.resize(
            SCALE as usize,
            Slot {
                freq: 0,
                bias: 0,
                esc: true,
                val: I::from_i64(0),
            },
        );
        for ((&f, &c), &v) in t.freqs.iter().zip(&t.cums).zip(&t.vals) {
            let val = I::from_i64(v);
            for s in c..c + f {
                self.slots[s as usize] = Slot {
                    freq: f as u16,
                    bias: (s - c) as u16,
                    esc: false,
                    val,
                };
            }
        }
        for s in t.esc_cum..t.esc_cum + t.esc_freq {
            self.slots[s as usize] = Slot {
                freq: t.esc_freq as u16,
                bias: (s - t.esc_cum) as u16,
                esc: true,
                val: I::from_i64(0),
            };
        }
    }
}

std::thread_local! {
    /// Per-thread pool of decode tables, one per index type in use
    /// (`DecTable<I>` is generic, thread-locals cannot be — the map is
    /// keyed by `TypeId` and in practice holds one entry). Each rANS
    /// decode rebuilds the pooled table in place, so the steady-state
    /// scan pays zero allocations for the `SCALE`-slot expansion.
    static DEC_TABLES: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with this thread's pooled [`DecTable<I>`] rebuilt from `t`.
pub(crate) fn with_dec_table<I: BinIndex, R>(
    t: &SymbolTable,
    f: impl FnOnce(&DecTable<I>) -> R,
) -> R {
    DEC_TABLES.with(|cell| {
        let mut pool = cell.borrow_mut();
        if blazr_telemetry::counters_enabled() {
            if pool.contains_key(&TypeId::of::<I>()) {
                blazr_telemetry::counter!("coder.dec_pool.hits").add(1);
            } else {
                blazr_telemetry::counter!("coder.dec_pool.misses").add(1);
            }
        }
        let slot = pool
            .entry(TypeId::of::<I>())
            .or_insert_with(|| Box::new(DecTable::<I> { slots: Vec::new() }));
        let dec = slot
            .downcast_mut::<DecTable<I>>()
            .expect("pool entries are keyed by their concrete type");
        dec.rebuild(t);
        f(dec)
    })
}

/// Decodes one piece of `out.len()` symbols whose body (word section,
/// then escape section) starts at `start_bit` of `bytes`, writing the
/// symbols into `out`. `n_words` and `n_escapes` come from the piece
/// header. The renormalization words are consumed strictly forward, so
/// they are streamed from the bit reader on demand — no word buffer and
/// no output allocation; a scan loop that reuses `out` decodes pieces
/// with zero heap traffic.
pub(crate) fn decode_piece_into<I: BinIndex>(
    bytes: &[u8],
    start_bit: usize,
    n_words: usize,
    n_escapes: usize,
    out: &mut [I],
    t: &DecTable<I>,
) -> Result<(), BlazError> {
    let bad = |msg: &str| BlazError::Deserialize(format!("rANS: {msg}"));
    let mut wr = BitReader::at(bytes, start_bit);
    // One up-front bounds check stands in for the per-word checks the
    // streaming reads would otherwise need.
    let word_bits = n_words
        .checked_mul(32)
        .ok_or_else(|| bad("word section size overflows"))?;
    if wr.remaining() < word_bits {
        return Err(bad("word section truncated"));
    }
    if n_words < 4 {
        return Err(bad("word section shorter than the state flush"));
    }
    // The escape section starts right where the words end.
    let mut er = BitReader::at(bytes, start_bit + word_bits);
    let w0 = wr.read_u32().expect("word section length validated") as u64;
    let w1 = wr.read_u32().expect("word section length validated") as u64;
    let w2 = wr.read_u32().expect("word section length validated") as u64;
    let w3 = wr.read_u32().expect("word section length validated") as u64;
    let mut x0 = w0 << 32 | w1;
    let mut x1 = w2 << 32 | w3;
    if x0 < RANS_L || x1 < RANS_L {
        return Err(bad("initial states below the normalization bound"));
    }
    let mut w = 4usize;
    let mut escapes_read = 0usize;
    let mut pos = 0usize;
    let m = out.len();
    // Fixed-size view of the slot table so the `& (SCALE - 1)` mask is
    // enough for the compiler to drop the per-symbol bounds check.
    const N_SLOTS: usize = SCALE as usize;
    let slots: &[Slot<I>; N_SLOTS] = t
        .slots
        .as_slice()
        .try_into()
        .expect("DecTable has SCALE slots");

    // One decode step on one state; writes the decoded value.
    macro_rules! step {
        ($x:ident) => {{
            let e = slots[($x & (SCALE as u64 - 1)) as usize];
            $x = e.freq as u64 * ($x >> SCALE_BITS) + e.bias as u64;
            while $x < RANS_L {
                if w == n_words {
                    return Err(bad("renormalization words exhausted"));
                }
                let word = wr.read_u32().expect("word section length validated");
                $x = ($x << 32) | word as u64;
                w += 1;
            }
            if e.esc {
                if escapes_read == n_escapes {
                    return Err(bad("escape section exhausted"));
                }
                escapes_read += 1;
                let raw = er
                    .read_bits(I::BITS)
                    .ok_or_else(|| bad("escape section truncated"))?;
                let shifted = (raw as i64) << (64 - I::BITS);
                out[pos] = I::from_i64(shifted >> (64 - I::BITS));
            } else {
                out[pos] = e.val;
            }
            pos += 1;
        }};
    }

    // Batches keep the hot loop tight; all batches except the last are
    // even-sized, so the x0/x1 interleave stays aligned to symbol parity.
    let mut done = 0usize;
    while done < m {
        let n = BATCH.min(m - done);
        for _ in 0..n / 2 {
            step!(x0);
            step!(x1);
        }
        if n % 2 == 1 {
            step!(x0);
        }
        done += n;
    }

    // The encoder started both states at L and the decoder unwinds the
    // exact inverse, so anything else means corruption. Leftover words
    // or escapes mean the header lied.
    if x0 != RANS_L || x1 != RANS_L {
        return Err(bad("final states do not match the encoder's seed"));
    }
    if w != n_words {
        return Err(bad("unconsumed renormalization words"));
    }
    if escapes_read != n_escapes {
        return Err(bad("unconsumed escape values"));
    }
    Ok(())
}

/// Allocating wrapper over [`decode_piece_into`] — kept for the coder
/// unit tests, which exercise pieces in isolation.
#[cfg(test)]
pub(crate) fn decode_piece<I: BinIndex>(
    bytes: &[u8],
    start_bit: usize,
    n_words: usize,
    n_escapes: usize,
    m: usize,
    t: &DecTable<I>,
) -> Result<Vec<I>, BlazError> {
    let mut out = vec![I::from_i64(0); m];
    decode_piece_into(bytes, start_bit, n_words, n_escapes, &mut out, t)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::ans::{encode_piece, EncTable};
    use super::super::histogram::Histogram;
    use super::*;
    use blazr_util::bits::BitWriter;
    use blazr_util::rng::Xoshiro256pp;

    /// Encodes `indices` into a piece body (words then escapes),
    /// returning (bytes, n_words, n_escapes).
    fn encode_body(indices: &[i16]) -> (Vec<u8>, usize, usize, SymbolTable) {
        let hist = Histogram::of(indices);
        let table = SymbolTable::optimize(&hist);
        let enc = EncTable::new::<i16>(&table);
        let (words, escapes) = encode_piece(indices, &enc);
        let mut w = BitWriter::new();
        for &word in &words {
            w.write_u32(word);
        }
        for &v in &escapes {
            w.write_bits(v.to_i64() as u64 & 0xFFFF, 16);
        }
        (w.into_bytes(), words.len(), escapes.len(), table)
    }

    fn sample(n: usize, seed: u64) -> Vec<i16> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let r = rng.next_u64();
                ((r & 0x7).wrapping_sub(3)) as i16
            })
            .collect()
    }

    #[test]
    fn batch_boundaries_roundtrip() {
        // Sizes around the 256-symbol batch and the odd tail.
        for n in [1usize, 2, 3, 255, 256, 257, 511, 512, 513, 1000] {
            let data = sample(n, n as u64);
            let (bytes, n_words, n_escapes, table) = encode_body(&data);
            let t = DecTable::<i16>::new(&table);
            let got = decode_piece(&bytes, 0, n_words, n_escapes, n, &t).unwrap();
            assert_eq!(got, data, "n = {n}");
        }
    }

    #[test]
    fn truncation_sweep_errors_cleanly() {
        let data = sample(600, 9);
        let (bytes, n_words, n_escapes, table) = encode_body(&data);
        let t = DecTable::<i16>::new(&table);
        for cut in 0..bytes.len() {
            let r = decode_piece(&bytes[..cut], 0, n_words, n_escapes, 600, &t);
            assert!(r.is_err(), "cut at {cut} did not error");
        }
    }

    #[test]
    fn bit_flip_sweep_never_panics() {
        let mut data = sample(500, 21);
        // Add escapes so the escape path is under the sweep too.
        data.extend((0..40).map(|v| (v * 97 + 5000) as i16));
        let (bytes, n_words, n_escapes, table) = encode_body(&data);
        let t = DecTable::<i16>::new(&table);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                // Must return (Ok with different data, or Err) — the
                // final-state check catches nearly all flips; what it
                // can't (raw escape bits) decodes to valid other data.
                let _ = decode_piece(&bad, 0, n_words, n_escapes, data.len(), &t);
            }
        }
    }

    #[test]
    fn state_flip_is_detected() {
        let data = sample(512, 33);
        let (bytes, n_words, n_escapes, table) = encode_body(&data);
        let t = DecTable::<i16>::new(&table);
        // Flip a bit inside the flushed initial state words.
        let mut bad = bytes.clone();
        bad[1] ^= 0x10;
        assert!(decode_piece(&bad, 0, n_words, n_escapes, 512, &t).is_err());
    }

    #[test]
    fn lying_headers_error_cleanly() {
        let data = sample(300, 5);
        let (bytes, n_words, n_escapes, table) = encode_body(&data);
        let t = DecTable::<i16>::new(&table);
        assert!(decode_piece(&bytes, 0, n_words + 4, n_escapes, 300, &t).is_err());
        if n_words > 4 {
            assert!(decode_piece(&bytes, 0, n_words - 1, n_escapes, 300, &t).is_err());
        }
        assert!(decode_piece(&bytes, 0, n_words, n_escapes + 3, 300, &t).is_err());
        assert!(decode_piece(&bytes, 0, 2, n_escapes, 300, &t).is_err());
        assert!(decode_piece(&bytes, 0, n_words, n_escapes, 299, &t).is_err());
        assert!(decode_piece(&[], 0, 4, 0, 1, &t).is_err());
    }

    #[test]
    fn all_zero_words_terminate() {
        // A pathological stream of zero words must hit "words exhausted",
        // not spin: every renormalization pull consumes a word.
        let hist = Histogram::of(&[0i16, 0, 0, 1]);
        let table = SymbolTable::optimize(&hist);
        let t = DecTable::<i16>::new(&table);
        let zeros = vec![0u8; 64];
        assert!(decode_piece(&zeros, 0, 16, 0, 10, &t).is_err());
    }
}
