//! Tabled range-ANS encoding of bin-index pieces.
//!
//! The coder is a 64-bit-state, 32-bit-renormalizing rANS with **two
//! interleaved states**: symbol `j` is coded by state `j & 1`, which
//! breaks the serial dependency chain in the decoder's hot loop.
//! Encoding runs over the piece's symbols in *reverse* order (rANS is a
//! stack), both states emitting into one word list; the list is then
//! reversed so the decoder — which walks symbols forward — consumes
//! renormalization words in exactly the reverse order the encoder
//! produced them. Values absent from the symbol table are coded through
//! the escape slot range and their raw `I::BITS` bits are appended, in
//! forward symbol order, after the word section.
//!
//! Pieces (`BLOCKS_PER_PIECE` blocks each, as in the fixed-width
//! serializer) are encoded independently and spliced in piece order, so
//! serialized bytes are bit-identical at any thread count.

use super::histogram::{SymbolTable, SCALE, SCALE_BITS};
use crate::BinIndex;

/// Lower bound of the normalized state interval `[L, L·2^32)`.
pub(crate) const RANS_L: u64 = 1 << 31;

/// Encoder-side symbol-id marker for "not in the table" (escape).
pub(crate) const ESCAPE: u16 = u16::MAX;

/// Value → symbol-id lookup. Narrow index types get a dense array over
/// the whole value space (≤ 64 Ki entries); wide ones binary-search the
/// sorted table values.
enum Lookup {
    Dense(Vec<u16>),
    Sparse(Vec<i64>),
}

/// Encoder view of a [`SymbolTable`]: per-symbol `(freq, cum)` rows plus
/// the value lookup.
pub(crate) struct EncTable {
    freqs: Vec<u32>,
    cums: Vec<u32>,
    esc_freq: u32,
    esc_cum: u32,
    lookup: Lookup,
}

impl EncTable {
    /// Builds the encoder table for index type `I`.
    pub(crate) fn new<I: BinIndex>(t: &SymbolTable) -> Self {
        let lookup = if I::BITS <= 16 {
            let size = 1usize << I::BITS;
            let mask = size as u64 - 1;
            let mut ids = vec![ESCAPE; size];
            for (id, &v) in t.vals.iter().enumerate() {
                ids[(v as u64 & mask) as usize] = id as u16;
            }
            Lookup::Dense(ids)
        } else {
            Lookup::Sparse(t.vals.clone())
        };
        Self {
            freqs: t.freqs.clone(),
            cums: t.cums.clone(),
            esc_freq: t.esc_freq,
            esc_cum: t.esc_cum,
            lookup,
        }
    }

    /// The symbol id of `v`, or [`ESCAPE`].
    #[inline]
    fn sym_id<I: BinIndex>(&self, v: I) -> u16 {
        match &self.lookup {
            Lookup::Dense(ids) => ids[(v.to_i64() as u64 & (ids.len() as u64 - 1)) as usize],
            Lookup::Sparse(vals) => match vals.binary_search(&v.to_i64()) {
                Ok(i) => i as u16,
                Err(_) => ESCAPE,
            },
        }
    }
}

/// Encodes one piece. Returns the renormalization words in *decoder*
/// order (state flush first) and the escaped values in forward symbol
/// order.
pub(crate) fn encode_piece<I: BinIndex>(indices: &[I], t: &EncTable) -> (Vec<u32>, Vec<I>) {
    let mut escapes: Vec<I> = Vec::new();
    for &v in indices {
        if t.sym_id(v) == ESCAPE {
            escapes.push(v);
        }
    }
    let mut x = [RANS_L; 2];
    let mut words: Vec<u32> = Vec::with_capacity(indices.len() / 2 + 4);
    for (j, &v) in indices.iter().enumerate().rev() {
        let id = t.sym_id(v);
        let (f, c) = if id == ESCAPE {
            (t.esc_freq as u64, t.esc_cum as u64)
        } else {
            (t.freqs[id as usize] as u64, t.cums[id as usize] as u64)
        };
        debug_assert!(f > 0, "table covers every occurring value");
        let s = &mut x[j & 1];
        // Renormalize down so the post-encode state stays in [L, L·2^32).
        let x_max = ((RANS_L >> SCALE_BITS) << 32) * f;
        while *s >= x_max {
            words.push(*s as u32);
            *s >>= 32;
        }
        *s = (*s / f) * SCALE as u64 + (*s % f) + c;
    }
    // Flush x1 then x0, each low word first: after the global reverse the
    // decoder reads x0-high, x0-low, x1-high, x1-low.
    for s in [x[1], x[0]] {
        words.push(s as u32);
        words.push((s >> 32) as u32);
    }
    words.reverse();
    (words, escapes)
}

#[cfg(test)]
mod tests {
    use super::super::batch_decode::{decode_piece, DecTable};
    use super::super::histogram::Histogram;
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn roundtrip<I: BinIndex>(indices: &[I]) {
        let hist = Histogram::of(indices);
        let table = SymbolTable::optimize(&hist);
        let enc = EncTable::new::<I>(&table);
        let (words, escapes) = encode_piece(indices, &enc);
        let mut w = blazr_util::bits::BitWriter::new();
        for &word in &words {
            w.write_u32(word);
        }
        let emask = if I::BITS == 64 {
            u64::MAX
        } else {
            (1u64 << I::BITS) - 1
        };
        for &v in &escapes {
            w.write_bits(v.to_i64() as u64 & emask, I::BITS);
        }
        let bytes = w.into_bytes();
        let dec = DecTable::<I>::new(&table);
        let got = decode_piece(&bytes, 0, words.len(), escapes.len(), indices.len(), &dec).unwrap();
        assert_eq!(got, indices);
    }

    #[test]
    fn skewed_stream_roundtrips() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let data: Vec<i16> = (0..10_000)
            .map(|_| {
                // Two-sided geometric-ish: mostly near zero.
                let r = rng.next_u64();
                let mag = (r & 0xFF).trailing_ones() as i64 * 3;
                if r & 0x100 == 0 {
                    mag as i16
                } else {
                    -mag as i16
                }
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn single_symbol_stream_emits_only_the_flush() {
        let data = vec![5i8; 4096];
        let hist = Histogram::of(&data);
        let table = SymbolTable::optimize(&hist);
        let enc = EncTable::new::<i8>(&table);
        let (words, escapes) = encode_piece(&data, &enc);
        assert_eq!(words.len(), 4, "f == SCALE never renormalizes");
        assert!(escapes.is_empty());
        roundtrip(&data);
    }

    #[test]
    fn escape_heavy_stream_roundtrips() {
        // Every value distinct: everything escapes.
        let data: Vec<i32> = (0..3000).map(|v| v * 7 - 10_000).collect();
        roundtrip(&data);
        // Mixed: a dominant value plus a unique tail.
        let mut mixed: Vec<i16> = vec![-2; 5000];
        mixed.extend((0..500).map(|v| (v * 13 % 30_000) as i16));
        roundtrip(&mixed);
    }

    #[test]
    fn wide_types_use_the_sparse_lookup() {
        let mut data: Vec<i64> = Vec::new();
        for v in [-1i64 << 40, -5, 0, 3, 1 << 50] {
            data.extend(vec![v; 100 + (v & 0xF) as usize]);
        }
        roundtrip(&data);
    }

    #[test]
    fn empty_piece_is_just_the_flush() {
        let data: Vec<i16> = Vec::new();
        let hist = Histogram::of(&data);
        let table = SymbolTable::optimize(&hist);
        let enc = EncTable::new::<i16>(&table);
        let (words, escapes) = encode_piece(&data, &enc);
        assert_eq!(words.len(), 4);
        assert!(escapes.is_empty());
    }

    #[test]
    fn negative_values_roundtrip_across_widths() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let d8: Vec<i8> = (0..2000)
            .map(|_| (rng.range(0, 21) as i64 - 10) as i8)
            .collect();
        roundtrip(&d8);
        let d64: Vec<i64> = (0..2000)
            .map(|_| (rng.range(0, 5) as i64 - 2) * (1 << 33))
            .collect();
        roundtrip(&d64);
    }
}
