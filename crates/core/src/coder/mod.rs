//! Lossless entropy coding of the §IV-C bin-index payload.
//!
//! The paper's serialized form stores every kept bin index at the fixed
//! width `i = log2(2r + 2)` of the index type, so the ratio is pinned by
//! the type choice alone. On the slowly-varying fields the paper targets,
//! the bin histogram is extremely skewed — most coefficients land in a
//! handful of bins near zero — which leaves a large entropy gap on the
//! table. This module closes it with the modern recipe:
//!
//! 1. **Histogram** ([`histogram`]): one deterministic pass over the
//!    flattened indices.
//! 2. **Bin optimization** ([`histogram::SymbolTable`]): the histogram is
//!    reduced to a bounded-size symbol table (≤ 256 entries) whose
//!    frequencies are quantized to sum to a power of two; rare tail
//!    values *escape* to raw fixed-width storage instead of bloating the
//!    table.
//! 3. **Tabled rANS** ([`ans`]): a range-variant asymmetric numeral
//!    system with two interleaved 64-bit states renormalizing through
//!    32-bit words.
//! 4. **Batched decode** ([`batch_decode`]): branch-light batches of 256
//!    indices per refill check, feeding the existing unbin scratch.
//!
//! Entropy coding is lossless, so every §IV-D error bound carries over
//! verbatim; only the serialized byte count changes. The fixed-width
//! layout survives as the fallback for near-uniform histograms (where a
//! table cannot win), as the ablation baseline, and as the v1
//! compatibility path.

pub mod ans;
pub mod batch_decode;
pub mod histogram;

/// Which entropy coder a serialized stream's index payload uses. The tag
/// is stored in the stream prologue (see [`crate::serialize::peek_coder`])
/// and echoed per chunk in the store footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coder {
    /// Every kept index at `I::BITS` — the paper's §IV-C layout.
    FixedWidth,
    /// Tabled range-ANS over the optimized bin histogram, with rare
    /// values escaping to raw fixed-width.
    Rans,
}

impl Coder {
    /// All variants in serialization-tag order.
    pub const ALL: [Coder; 2] = [Coder::FixedWidth, Coder::Rans];

    /// 8-bit serialization tag (one byte of the v2 stream prologue).
    pub fn tag(self) -> u8 {
        match self {
            Coder::FixedWidth => 0,
            Coder::Rans => 1,
        }
    }

    /// Inverse of [`Coder::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Coder::FixedWidth),
            1 => Some(Coder::Rans),
            _ => None,
        }
    }

    /// Name used in diagnostics and `store stat` output.
    pub fn name(self) -> &'static str {
        match self {
            Coder::FixedWidth => "fixed",
            Coder::Rans => "rans",
        }
    }
}

impl std::fmt::Display for Coder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for c in Coder::ALL {
            assert_eq!(Coder::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Coder::from_tag(2), None);
        assert_eq!(Coder::from_tag(0xFF), None);
    }
}
