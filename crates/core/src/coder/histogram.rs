//! Deterministic bin-index histograms and their optimization into
//! bounded-size, power-of-two-total symbol tables.
//!
//! Everything here must be bit-deterministic: the table is serialized
//! into the stream, so any nondeterminism (hash-map iteration order, FPU
//! flags) would break the contract that serialized bytes are identical
//! at every thread count. Counting uses a dense array for narrow index
//! types and a sort for wide ones; frequency quantization is
//! largest-remainder with explicit tie-breaking; the size estimate that
//! drives automatic coder choice uses fixed-point (not floating-point)
//! logarithms.

use crate::BinIndex;

/// log2 of the quantized frequency total: slot space `M = 2^SCALE_BITS`.
/// 12 bits keeps the whole decode table (slot→symbol plus per-symbol
/// rows) inside L1 while quantization error stays ≪ the per-symbol
/// header cost.
pub const SCALE_BITS: u32 = 12;

/// The quantized frequency total `M` — frequencies always sum to this.
pub const SCALE: u32 = 1 << SCALE_BITS;

/// Upper bound on table symbols (excluding the escape). Rarer values
/// escape to raw fixed-width storage.
pub const MAX_TABLE_SYMS: usize = 256;

/// A bin-index histogram: `(value, count)` pairs in ascending value
/// order, plus the total count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Distinct index values and their occurrence counts, value-ascending.
    pub counts: Vec<(i64, u64)>,
    /// Total number of indices counted.
    pub total: u64,
}

impl Histogram {
    /// Counts `indices` deterministically. Narrow index types (≤ 16 bits)
    /// use a dense count array indexed by the value's low bits; wide
    /// types sort a copy and run-length encode, so no hash map (with its
    /// nondeterministic iteration order) is ever involved.
    pub fn of<I: BinIndex>(indices: &[I]) -> Self {
        let total = indices.len() as u64;
        if I::BITS <= 16 {
            let size = 1usize << I::BITS;
            let half = (size >> 1) as i64;
            let mut dense = vec![0u64; size];
            for &v in indices {
                // Two's-complement offset: value + 2^(B-1) ∈ [0, 2^B).
                dense[(v.to_i64() + half) as usize] += 1;
            }
            let counts = dense
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(slot, &c)| (slot as i64 - half, c))
                .collect();
            Self { counts, total }
        } else {
            let mut sorted: Vec<i64> = indices.iter().map(|v| v.to_i64()).collect();
            sorted.sort_unstable();
            let mut counts: Vec<(i64, u64)> = Vec::new();
            for v in sorted {
                match counts.last_mut() {
                    Some((last, c)) if *last == v => *c += 1,
                    _ => counts.push((v, 1)),
                }
            }
            Self { counts, total }
        }
    }
}

/// An optimized symbol table: at most [`MAX_TABLE_SYMS`] index values
/// with quantized frequencies summing (with the escape) to [`SCALE`].
/// The slot space `[0, SCALE)` is laid out as the table symbols'
/// cumulative ranges in ascending value order, with the escape range —
/// if any — at the top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolTable {
    /// Table symbol values, strictly ascending.
    pub vals: Vec<i64>,
    /// Quantized frequency of each table symbol (all ≥ 1).
    pub freqs: Vec<u32>,
    /// Cumulative frequency (slot range start) of each table symbol.
    pub cums: Vec<u32>,
    /// Escape frequency; 0 iff every occurring value is in the table.
    pub esc_freq: u32,
    /// Slot range start of the escape symbol (`SCALE - esc_freq`).
    pub esc_cum: u32,
}

impl SymbolTable {
    /// Builds the optimized table for a histogram: keep values frequent
    /// enough to earn a table row (count ≥ max(2, total/SCALE)), cap at
    /// [`MAX_TABLE_SYMS`] keeping the most frequent (ties broken toward
    /// smaller values), route everything else through the escape, and
    /// quantize the kept counts to sum to [`SCALE`] by largest
    /// remainder. Fully deterministic for a given histogram.
    pub fn optimize(hist: &Histogram) -> Self {
        let threshold = (hist.total >> SCALE_BITS).max(2);
        let mut cand: Vec<(i64, u64)> = hist
            .counts
            .iter()
            .copied()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        if cand.len() > MAX_TABLE_SYMS {
            cand.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            cand.truncate(MAX_TABLE_SYMS);
            cand.sort_by_key(|&(v, _)| v);
        }
        let kept_total: u64 = cand.iter().map(|&(_, c)| c).sum();
        let escaped = hist.total - kept_total;
        if cand.is_empty() || hist.total == 0 {
            // Degenerate: no value earns a row (or nothing to code).
            // The whole slot space is escape; forced-Rans streams stay
            // decodable, automatic choice will never pick this.
            return Self {
                vals: Vec::new(),
                freqs: Vec::new(),
                cums: Vec::new(),
                esc_freq: SCALE,
                esc_cum: 0,
            };
        }
        let mut quant_in: Vec<u64> = cand.iter().map(|&(_, c)| c).collect();
        if escaped > 0 {
            quant_in.push(escaped);
        }
        let mut freqs = quantize_freqs(&quant_in, hist.total);
        let esc_freq = if escaped > 0 {
            freqs.pop().expect("escape slot present")
        } else {
            0
        };
        let vals: Vec<i64> = cand.iter().map(|&(v, _)| v).collect();
        let mut cums = Vec::with_capacity(freqs.len());
        let mut acc = 0u32;
        for &f in &freqs {
            cums.push(acc);
            acc += f;
        }
        debug_assert_eq!(acc + esc_freq, SCALE);
        Self {
            vals,
            freqs,
            cums,
            esc_freq,
            esc_cum: acc,
        }
    }

    /// Reassembles a table from deserialized parts, validating every
    /// invariant the decoder relies on (so corrupt streams fail here,
    /// not by out-of-bounds panics later). Values must be strictly
    /// ascending, frequencies ≥ 1, and the grand total exactly [`SCALE`].
    pub fn from_parts(vals: Vec<i64>, freqs: Vec<u32>, esc_freq: u32) -> Result<Self, String> {
        let mut t = Self {
            vals,
            freqs,
            cums: Vec::new(),
            esc_freq: 0,
            esc_cum: 0,
        };
        t.rebuild(esc_freq)?;
        Ok(t)
    }

    /// [`SymbolTable::from_parts`] in place: `vals`/`freqs` have already
    /// been filled (e.g. into a pooled scratch table) and this validates
    /// them and recomputes `cums`/`esc_cum` reusing their capacity — the
    /// steady-state decode loop rebuilds per-chunk tables without
    /// allocating. On error the table must not be used until a later
    /// `rebuild` succeeds.
    pub fn rebuild(&mut self, esc_freq: u32) -> Result<(), String> {
        if self.vals.len() != self.freqs.len() {
            return Err("symbol/frequency count mismatch".into());
        }
        if self.vals.len() > MAX_TABLE_SYMS {
            return Err(format!(
                "{} table symbols exceed {MAX_TABLE_SYMS}",
                self.vals.len()
            ));
        }
        if self.vals.windows(2).any(|w| w[0] >= w[1]) {
            return Err("table values not strictly ascending".into());
        }
        self.cums.clear();
        let mut acc: u64 = 0;
        for &f in &self.freqs {
            if f == 0 {
                return Err("zero table frequency".into());
            }
            self.cums.push(acc as u32);
            acc += f as u64;
        }
        if acc + esc_freq as u64 != SCALE as u64 {
            return Err(format!(
                "frequencies sum to {} (+{esc_freq} escape), expected {SCALE}",
                acc
            ));
        }
        self.esc_freq = esc_freq;
        self.esc_cum = acc as u32;
        Ok(())
    }

    /// Stream bits of the serialized table header for a given index
    /// width: symbol count, escape frequency, then one `(value, freq-1)`
    /// row per symbol.
    pub fn header_bits(&self, index_bits: u32) -> u64 {
        16 + 13 + self.vals.len() as u64 * (index_bits as u64 + SCALE_BITS as u64)
    }

    /// Estimated serialized size in bits of rANS-coding `hist` with this
    /// table, including the table header, per-piece headers and state
    /// flushes, and raw escape payloads. Integer arithmetic only (Q16
    /// fixed-point log2), so the automatic coder choice it drives is
    /// deterministic everywhere.
    pub fn estimated_bits(&self, hist: &Histogram, index_bits: u32, n_pieces: u64) -> u64 {
        const Q: u32 = 16;
        let scale_q = (SCALE_BITS as u128) << Q;
        let mut payload_q: u128 = 0;
        let mut cursor = 0usize;
        let mut escaped: u64 = 0;
        for &(v, c) in &hist.counts {
            // `vals` and `hist.counts` are both value-ascending: advance.
            while cursor < self.vals.len() && self.vals[cursor] < v {
                cursor += 1;
            }
            if cursor < self.vals.len() && self.vals[cursor] == v {
                let f = self.freqs[cursor];
                payload_q += c as u128 * (scale_q - log2_q16(f as u64) as u128);
            } else {
                escaped += c;
            }
        }
        if escaped > 0 {
            let esc_cost_q = scale_q - log2_q16(self.esc_freq.max(1) as u64) as u128;
            payload_q += escaped as u128 * (esc_cost_q + ((index_bits as u128) << Q));
        }
        let payload = (payload_q >> Q) as u64 + 1;
        // Per piece: 32+32-bit header plus the 128-bit two-state flush.
        payload + self.header_bits(index_bits) + n_pieces * (64 + 128)
    }
}

/// Quantizes positive counts (summing to `total`) to frequencies
/// summing exactly to [`SCALE`], each ≥ 1, by the largest-remainder
/// method. Ties break on the lower index; overshoot (from the ≥ 1
/// floor) is shaved off the largest frequencies first. Deterministic.
fn quantize_freqs(counts: &[u64], total: u64) -> Vec<u32> {
    debug_assert!(!counts.is_empty() && counts.len() <= SCALE as usize);
    let m = SCALE as u128;
    let mut freqs: Vec<u32> = Vec::with_capacity(counts.len());
    let mut rems: Vec<(u64, usize)> = Vec::with_capacity(counts.len());
    let mut sum: u64 = 0;
    for (i, &c) in counts.iter().enumerate() {
        let ideal = c as u128 * m;
        let base = (ideal / total as u128) as u64;
        let rem = (ideal % total as u128) as u64;
        let f = base.max(1) as u32;
        freqs.push(f);
        rems.push((rem, i));
        sum += f as u64;
    }
    if sum < SCALE as u64 {
        // Distribute the deficit to the largest remainders (deficit <
        // counts.len(), so one unit each suffices).
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut deficit = SCALE as u64 - sum;
        for &(_, i) in &rems {
            if deficit == 0 {
                break;
            }
            freqs[i] += 1;
            deficit -= 1;
        }
    } else {
        while sum > SCALE as u64 {
            // Shave the current maximum (first on ties) — it loses the
            // least relative precision. The ≥ 1 floor caused the
            // overshoot, so a > 1 frequency always exists.
            let (i, _) = freqs
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f > 1)
                .max_by_key(|&(i, &f)| (f, usize::MAX - i))
                .expect("sum exceeds symbol count, so some frequency > 1");
            freqs[i] -= 1;
            sum -= 1;
        }
    }
    debug_assert_eq!(freqs.iter().map(|&f| f as u64).sum::<u64>(), SCALE as u64);
    freqs
}

/// `floor(2^16 · log2(x))` for `x ≥ 1`, by iterated squaring on a
/// 64-bit mantissa — integer-only, so identical on every platform.
fn log2_q16(x: u64) -> u64 {
    debug_assert!(x >= 1);
    let ilog = 63 - x.leading_zeros();
    // Normalize to [2^63, 2^64), representing x / 2^ilog ∈ [1, 2).
    let mut m: u128 = (x as u128) << (63 - ilog);
    let mut frac: u64 = 0;
    for _ in 0..16 {
        m = (m * m) >> 63;
        frac <<= 1;
        if m >= 1 << 64 {
            frac |= 1;
            m >>= 1;
        }
    }
    ((ilog as u64) << 16) | frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_dense_and_sorted_paths_agree() {
        let narrow: Vec<i16> = vec![-3, 5, 5, 0, -3, 5, 7, 0, 0, 0];
        let wide: Vec<i32> = narrow.iter().map(|&v| v as i32).collect();
        let h16 = Histogram::of(&narrow);
        let h32 = Histogram::of(&wide);
        assert_eq!(h16.counts, vec![(-3, 2), (0, 4), (5, 3), (7, 1)]);
        assert_eq!(h16.counts, h32.counts);
        assert_eq!(h16.total, 10);
    }

    #[test]
    fn histogram_of_empty_is_empty() {
        let h = Histogram::of::<i16>(&[]);
        assert!(h.counts.is_empty());
        assert_eq!(h.total, 0);
    }

    #[test]
    fn quantized_frequencies_sum_to_scale() {
        for counts in [
            vec![1u64],
            vec![1, 1],
            vec![1_000_000, 3, 2],
            vec![7; 300],
            (1..=257).map(|v| v * v).collect::<Vec<u64>>(),
        ] {
            let total: u64 = counts.iter().sum();
            let freqs = quantize_freqs(&counts, total);
            assert_eq!(freqs.iter().map(|&f| f as u64).sum::<u64>(), SCALE as u64);
            assert!(freqs.iter().all(|&f| f >= 1));
        }
    }

    #[test]
    fn single_symbol_takes_the_whole_scale() {
        let hist = Histogram::of(&vec![0i16; 1000]);
        let t = SymbolTable::optimize(&hist);
        assert_eq!(t.vals, vec![0]);
        assert_eq!(t.freqs, vec![SCALE]);
        assert_eq!(t.esc_freq, 0);
    }

    #[test]
    fn rare_values_escape() {
        // 10_000 zeros and one each of 200 rare values: the rare tail is
        // below the count-2 threshold, so it escapes.
        let mut data: Vec<i16> = vec![0; 10_000];
        data.extend((1..=200).map(|v| v as i16));
        let hist = Histogram::of(&data);
        let t = SymbolTable::optimize(&hist);
        assert_eq!(t.vals, vec![0]);
        assert!(t.esc_freq >= 1);
        assert_eq!(
            t.freqs.iter().sum::<u32>() + t.esc_freq,
            SCALE,
            "slot space covered"
        );
    }

    #[test]
    fn table_caps_at_max_symbols_keeping_most_frequent() {
        // 400 distinct values; value v occurs v+2 times (all ≥ threshold).
        let mut data: Vec<i16> = Vec::new();
        for v in 0..400i64 {
            for _ in 0..v + 2 {
                data.push(v as i16);
            }
        }
        let hist = Histogram::of(&data);
        let t = SymbolTable::optimize(&hist);
        assert_eq!(t.vals.len(), MAX_TABLE_SYMS);
        // The most frequent 256 values are 144..400.
        assert_eq!(t.vals[0], 144);
        assert_eq!(*t.vals.last().unwrap(), 399);
        assert!(t.esc_freq >= 1);
    }

    #[test]
    fn from_parts_validates_invariants() {
        // A valid table round-trips.
        let hist = Histogram::of(&[0i16, 0, 0, 1, 1, 2, 2]);
        let t = SymbolTable::optimize(&hist);
        let back = SymbolTable::from_parts(t.vals.clone(), t.freqs.clone(), t.esc_freq).unwrap();
        assert_eq!(back, t);
        // Broken invariants are rejected.
        assert!(SymbolTable::from_parts(vec![1, 1], vec![SCALE / 2; 2], 0).is_err());
        assert!(SymbolTable::from_parts(vec![2, 1], vec![SCALE / 2; 2], 0).is_err());
        assert!(SymbolTable::from_parts(vec![0], vec![SCALE - 1], 2).is_err());
        assert!(SymbolTable::from_parts(vec![0], vec![0], SCALE).is_err());
        assert!(SymbolTable::from_parts(vec![0], vec![SCALE], 1).is_err());
    }

    #[test]
    fn log2_q16_brackets_true_log() {
        for x in [1u64, 2, 3, 5, 100, 4095, 4096, u32::MAX as u64, u64::MAX] {
            let got = log2_q16(x) as f64 / 65536.0;
            let want = (x as f64).log2();
            assert!((got - want).abs() < 1e-3, "x={x} got={got} want={want}");
        }
        assert_eq!(log2_q16(1), 0);
        assert_eq!(log2_q16(4096), 12 << 16);
    }

    #[test]
    fn skewed_estimate_beats_fixed_width() {
        // 90% zeros: the estimate must be far below 16 bits/symbol.
        let mut data: Vec<i16> = vec![0; 9000];
        data.extend(vec![7i16; 1000]);
        let hist = Histogram::of(&data);
        let t = SymbolTable::optimize(&hist);
        let est = t.estimated_bits(&hist, 16, 1);
        assert!(est < 16 * 10_000 / 4, "estimate {est} not ≪ fixed 160000");
    }
}
