//! Automatic compression-setting search (paper §VI, future work):
//! "PyBlaz can be made to automatically change its compression settings in
//! order to enforce some L∞ error bound through Bayesian optimization or a
//! similar search process instead of relying on the user."
//!
//! [`tune_for_linf`] implements that search deterministically: it
//! enumerates a candidate lattice of (float type × index type × block
//! shape × pruning level), *ordered by theoretical compression ratio
//! descending* (the ratio is data-independent, §IV-C, so the ordering is
//! free), and measures the actual L∞ reconstruction error of each
//! candidate on the provided sample until one meets the bound. Because
//! candidates are tried best-ratio-first, the first hit is the
//! highest-ratio setting in the lattice that satisfies the bound.

use crate::dynamic::compress_dyn;
use crate::{BlazError, IndexType, PruningMask, ScalarType, Settings};
use blazr_tensor::NdArray;

/// The outcome of a successful tuning search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Settings that met the bound.
    pub settings: Settings,
    /// Chosen float format.
    pub float_type: ScalarType,
    /// Chosen bin index type.
    pub index_type: IndexType,
    /// The measured L∞ error on the sample.
    pub achieved_linf: f64,
    /// The (data-independent) compression ratio vs FP64.
    pub ratio: f64,
    /// How many candidates were evaluated before success.
    pub candidates_tried: usize,
}

/// Search-space configuration.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Hypercubic block edges to consider.
    pub block_edges: Vec<usize>,
    /// Fractions of coefficients to keep (by lowest total frequency).
    pub keep_fractions: Vec<f64>,
    /// Float formats to consider.
    pub float_types: Vec<ScalarType>,
    /// Index types to consider.
    pub index_types: Vec<IndexType>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            block_edges: vec![4, 8, 16],
            keep_fractions: vec![1.0, 0.75, 0.5, 0.25, 0.125],
            float_types: vec![ScalarType::F32, ScalarType::F64],
            index_types: vec![IndexType::I8, IndexType::I16, IndexType::I32],
        }
    }
}

/// Finds the highest-ratio setting in the lattice whose measured L∞
/// reconstruction error on `sample` is at most `target_linf`.
///
/// Returns `None` if no candidate meets the bound (e.g. the bound is
/// tighter than even float64/int32/unpruned binning can deliver on this
/// data).
///
/// ```
/// use blazr::tune::{tune_for_linf, TuneOptions};
/// use blazr_tensor::NdArray;
/// let a = NdArray::from_fn(vec![32, 32], |i| (i[0] as f64 / 7.0).sin());
/// let r = tune_for_linf(&a, 1e-3, &TuneOptions::default()).unwrap();
/// assert!(r.achieved_linf <= 1e-3);
/// assert!(r.ratio > 1.0);
/// ```
pub fn tune_for_linf(
    sample: &NdArray<f64>,
    target_linf: f64,
    opts: &TuneOptions,
) -> Option<TuneResult> {
    assert!(target_linf > 0.0, "target bound must be positive");
    let d = sample.ndim();
    // Build the candidate lattice with its data-independent ratios.
    struct Candidate {
        settings: Settings,
        ft: ScalarType,
        it: IndexType,
        ratio: f64,
    }
    let mut candidates = Vec::new();
    for &edge in &opts.block_edges {
        let block: Vec<usize> = vec![edge; d];
        let block_len: usize = block.iter().product();
        for &frac in &opts.keep_fractions {
            let kept = ((block_len as f64 * frac).round() as usize).clamp(1, block_len);
            let Ok(mask) = PruningMask::keep_lowest_frequencies(&block, kept) else {
                continue;
            };
            let Ok(base) = Settings::new(block.clone()) else {
                continue;
            };
            let Ok(settings) = base.with_mask(mask) else {
                continue;
            };
            for &ft in &opts.float_types {
                for &it in &opts.index_types {
                    let ratio = crate::ratio::exact_ratio(
                        64,
                        sample.shape(),
                        &block,
                        ft.bits(),
                        it.bits(),
                        kept,
                    );
                    candidates.push(Candidate {
                        settings: settings.clone(),
                        ft,
                        it,
                        ratio,
                    });
                }
            }
        }
    }
    // Best ratio first; deterministic tie-break by (smaller float, smaller
    // index) for reproducibility.
    candidates.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .expect("ratios are finite")
            .then(a.ft.bits().cmp(&b.ft.bits()))
            .then(a.it.bits().cmp(&b.it.bits()))
    });

    for (tried, cand) in candidates.iter().enumerate() {
        let Ok(compressed) = compress_dyn(sample, &cand.settings, cand.ft, cand.it) else {
            continue;
        };
        let d = compressed.decompress();
        let linf = sample
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        if linf <= target_linf {
            return Some(TuneResult {
                settings: cand.settings.clone(),
                float_type: cand.ft,
                index_type: cand.it,
                achieved_linf: linf,
                ratio: cand.ratio,
                candidates_tried: tried + 1,
            });
        }
    }
    None
}

/// Convenience: tune with [`TuneOptions::default`].
pub fn tune_for_linf_default(
    sample: &NdArray<f64>,
    target_linf: f64,
) -> Result<TuneResult, BlazError> {
    tune_for_linf(sample, target_linf, &TuneOptions::default()).ok_or_else(|| {
        BlazError::InvalidArgument(format!(
            "no setting in the default lattice meets L∞ ≤ {target_linf}"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_util::rng::Xoshiro256pp;

    fn smooth(n: usize) -> NdArray<f64> {
        NdArray::from_fn(vec![n, n], |i| {
            ((i[0] as f64) / 9.0).sin() * ((i[1] as f64) / 13.0).cos()
        })
    }

    #[test]
    fn meets_the_bound() {
        let a = smooth(48);
        for target in [1e-1, 1e-2, 1e-3, 1e-5] {
            let r = tune_for_linf(&a, target, &TuneOptions::default()).expect("tunable");
            assert!(
                r.achieved_linf <= target,
                "target {target}: achieved {}",
                r.achieved_linf
            );
        }
    }

    #[test]
    fn looser_bounds_give_higher_ratios() {
        let a = smooth(48);
        let loose = tune_for_linf(&a, 1e-1, &TuneOptions::default()).unwrap();
        let tight = tune_for_linf(&a, 1e-5, &TuneOptions::default()).unwrap();
        assert!(
            loose.ratio >= tight.ratio,
            "loose {} vs tight {}",
            loose.ratio,
            tight.ratio
        );
    }

    #[test]
    fn impossible_bound_returns_none() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let noise = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(-1.0, 1.0));
        // Machine-epsilon-level bound on noise: unreachable for a lossy
        // codec with these settings.
        assert!(tune_for_linf(&noise, 1e-14, &TuneOptions::default()).is_none());
        assert!(tune_for_linf_default(&noise, 1e-14).is_err());
    }

    #[test]
    fn search_is_deterministic() {
        let a = smooth(32);
        let r1 = tune_for_linf(&a, 1e-3, &TuneOptions::default()).unwrap();
        let r2 = tune_for_linf(&a, 1e-3, &TuneOptions::default()).unwrap();
        assert_eq!(r1.float_type, r2.float_type);
        assert_eq!(r1.index_type, r2.index_type);
        assert_eq!(r1.settings, r2.settings);
    }

    #[test]
    fn first_hit_is_best_ratio_in_lattice() {
        // Every candidate with a strictly better ratio than the returned
        // one must violate the bound.
        let a = smooth(32);
        let target = 1e-3;
        let opts = TuneOptions::default();
        let r = tune_for_linf(&a, target, &opts).unwrap();
        // Re-evaluate the full lattice (slow but exhaustive).
        for &edge in &opts.block_edges {
            let block = vec![edge; 2];
            let block_len: usize = block.iter().product();
            for &frac in &opts.keep_fractions {
                let kept = ((block_len as f64 * frac).round() as usize).clamp(1, block_len);
                let mask = PruningMask::keep_lowest_frequencies(&block, kept).unwrap();
                let s = Settings::new(block.clone())
                    .unwrap()
                    .with_mask(mask)
                    .unwrap();
                for &ft in &opts.float_types {
                    for &it in &opts.index_types {
                        let ratio = crate::ratio::exact_ratio(
                            64,
                            a.shape(),
                            &block,
                            ft.bits(),
                            it.bits(),
                            kept,
                        );
                        if ratio <= r.ratio {
                            continue;
                        }
                        let c = compress_dyn(&a, &s, ft, it).unwrap();
                        let dec = c.decompress();
                        let linf = blazr_util::stats::max_abs_diff(a.as_slice(), dec.as_slice());
                        assert!(
                            linf > target,
                            "candidate {ft}/{it}/{block:?}/kept{kept} has ratio {ratio} > {} yet meets the bound ({linf})",
                            r.ratio
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn works_in_three_dimensions() {
        let a = NdArray::from_fn(vec![12, 20, 20], |i| {
            (i[0] as f64 / 5.0).cos() + (i[1] as f64 / 7.0).sin() + i[2] as f64 * 0.01
        });
        let r = tune_for_linf(&a, 1e-2, &TuneOptions::default()).unwrap();
        assert_eq!(r.settings.block_shape.len(), 3);
        assert!(r.achieved_linf <= 1e-2);
    }
}
