//! Error type for the blazr codec and its compressed-space operations.

use std::fmt;

/// Everything that can go wrong constructing or operating on compressed
/// arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlazError {
    /// The two operands were compressed from arrays of different shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// The operands' compression settings (block shape, transform, or
    /// pruning mask) differ; compressed-space binary operations require
    /// identical settings.
    SettingsMismatch,
    /// The operation reads the per-block DC coefficient (mean, scalar
    /// addition, covariance, Wasserstein, …) but the pruning mask dropped
    /// it, or the transform has no constant basis vector.
    DcUnavailable,
    /// The block shape is invalid (wrong dimensionality, zero or
    /// non-power-of-two extent).
    InvalidBlockShape(String),
    /// A pruning mask kept zero coefficients.
    EmptyMask,
    /// The serialized stream is malformed or was produced with different
    /// type parameters.
    Deserialize(String),
    /// A caller-supplied argument was rejected (out-of-order label,
    /// empty selection, invalid parameter value, …).
    InvalidArgument(String),
}

impl fmt::Display for BlazError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlazError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            BlazError::SettingsMismatch => {
                write!(f, "operands were compressed with different settings")
            }
            BlazError::DcUnavailable => write!(
                f,
                "operation requires the per-block DC coefficient, which is \
                 pruned away or not defined for this transform"
            ),
            BlazError::InvalidBlockShape(msg) => write!(f, "invalid block shape: {msg}"),
            BlazError::EmptyMask => write!(f, "pruning mask keeps no coefficients"),
            BlazError::Deserialize(msg) => write!(f, "deserialization failed: {msg}"),
            BlazError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for BlazError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BlazError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4],
        };
        assert!(e.to_string().contains("[2, 3]"));
        assert!(BlazError::DcUnavailable.to_string().contains("DC"));
        assert!(BlazError::Deserialize("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(BlazError::InvalidArgument("label 3 after 5".into())
            .to_string()
            .contains("label 3 after 5"));
    }
}
