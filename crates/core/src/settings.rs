//! Compression settings: block shape, transform, pruning mask.

use crate::{BlazError, PruningMask};
use blazr_tensor::shape::all_powers_of_two;
use blazr_transform::TransformKind;

/// The data-independent knobs of the compressor (paper §III).
///
/// The floating-point precision `P` and bin index type `I` are *type*
/// parameters of [`crate::compress`]; everything else lives here. Two
/// compressed arrays can only be combined in compressed space when their
/// `Settings` are equal (and their type parameters match).
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Block shape `i`; every extent must be a power of two (§III-A(b)).
    /// Non-hypercubic shapes are allowed and useful for anisotropic data.
    pub block_shape: Vec<usize>,
    /// Which orthonormal basis the transform step uses.
    pub transform: TransformKind,
    /// Which coefficient positions are kept.
    pub mask: PruningMask,
}

impl Settings {
    /// Settings with the given block shape, DCT transform, and no pruning.
    pub fn new(block_shape: Vec<usize>) -> Result<Self, BlazError> {
        validate_block_shape(&block_shape)?;
        let mask = PruningMask::all(&block_shape);
        Ok(Self {
            block_shape,
            transform: TransformKind::Dct,
            mask,
        })
    }

    /// Replaces the transform.
    pub fn with_transform(mut self, transform: TransformKind) -> Self {
        self.transform = transform;
        self
    }

    /// Replaces the pruning mask. The mask's shape must equal the block
    /// shape.
    pub fn with_mask(mut self, mask: PruningMask) -> Result<Self, BlazError> {
        if mask.shape() != self.block_shape.as_slice() {
            return Err(BlazError::InvalidBlockShape(format!(
                "mask shape {:?} does not match block shape {:?}",
                mask.shape(),
                self.block_shape
            )));
        }
        self.mask = mask;
        Ok(self)
    }

    /// Checks this settings object against an input of dimensionality `d`.
    pub fn validate_for_ndim(&self, d: usize) -> Result<(), BlazError> {
        if self.block_shape.len() != d {
            return Err(BlazError::InvalidBlockShape(format!(
                "block shape has {} dimensions but the array has {d}",
                self.block_shape.len()
            )));
        }
        Ok(())
    }

    /// Elements per block `Πi`.
    pub fn block_len(&self) -> usize {
        self.block_shape.iter().product()
    }

    /// `√(Πi)` — the scale between a block's mean and its DC coefficient
    /// (the paper's `c = Π i^{1/2}`).
    pub fn dc_scale(&self) -> f64 {
        (self.block_len() as f64).sqrt()
    }

    /// Whether mean-style operations are possible: the transform has a
    /// constant DC basis vector and the mask keeps it.
    pub fn dc_available(&self) -> bool {
        self.transform.has_dc_basis() && self.mask.dc_kept()
    }
}

fn validate_block_shape(block_shape: &[usize]) -> Result<(), BlazError> {
    if block_shape.contains(&0) {
        return Err(BlazError::InvalidBlockShape(
            "zero extent in block shape".into(),
        ));
    }
    if !all_powers_of_two(block_shape) {
        return Err(BlazError::InvalidBlockShape(format!(
            "extents must be powers of two, got {block_shape:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_dct_no_pruning() {
        let s = Settings::new(vec![8, 8]).unwrap();
        assert_eq!(s.transform, TransformKind::Dct);
        assert_eq!(s.mask.kept_count(), 64);
        assert_eq!(s.block_len(), 64);
        assert!((s.dc_scale() - 8.0).abs() < 1e-12);
        assert!(s.dc_available());
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            Settings::new(vec![6, 8]),
            Err(BlazError::InvalidBlockShape(_))
        ));
        assert!(matches!(
            Settings::new(vec![0]),
            Err(BlazError::InvalidBlockShape(_))
        ));
    }

    #[test]
    fn non_hypercubic_allowed() {
        let s = Settings::new(vec![4, 16, 16]).unwrap();
        assert_eq!(s.block_len(), 1024);
        assert!((s.dc_scale() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn mask_shape_must_match() {
        let s = Settings::new(vec![4, 4]).unwrap();
        let wrong = PruningMask::all(&[8, 8]);
        assert!(s.with_mask(wrong).is_err());
    }

    #[test]
    fn dc_availability_tracks_mask_and_transform() {
        let s = Settings::new(vec![4, 4]).unwrap();
        let mut keep = vec![true; 16];
        keep[0] = false;
        let no_dc = PruningMask::from_keep(vec![4, 4], keep).unwrap();
        let s2 = s.clone().with_mask(no_dc).unwrap();
        assert!(!s2.dc_available());
        let s3 = s.with_transform(TransformKind::Identity);
        assert!(!s3.dc_available());
    }

    #[test]
    fn validate_ndim() {
        let s = Settings::new(vec![4, 4]).unwrap();
        assert!(s.validate_for_ndim(2).is_ok());
        assert!(s.validate_for_ndim(3).is_err());
    }
}
