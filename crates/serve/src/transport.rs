//! The connection seam the server speaks through, plus a deterministic
//! fault-injection wrapper — the network-side mirror of
//! [`blazr_util::vfs`]'s storage seam.
//!
//! The server performs a small, fixed set of transport operations:
//! accept a connection, read bytes, write bytes, set timeouts, close.
//! [`Listener`]/[`Conn`] name exactly that set, [`TcpTransport`] /
//! [`TcpConn`] implement it on `std::net`, [`MemTransport`] implements
//! it on in-process condvar pipes (so chaos tests run with no sockets
//! and no ports), and [`FaultyTransport`] wraps any listener with a
//! **scriptable fault plan**: reset the Nth accept, tear a write after
//! k bytes (the prefix really reaches the peer — a client sees exactly
//! the truncated response a mid-flight reset leaves), cut a read short,
//! return EINTR-style transients that succeed on retry, or stall an
//! operation slow-loris style until it times out. Every fault is
//! deterministic — a plan is a list of [`TransportRule`]s keyed by
//! per-operation indices, so a chaos suite can sweep "break the Nth
//! read" across every boundary of an exchange exhaustively.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One accepted connection. Reads and writes are plain byte-stream
/// operations; timeouts make every blocking call bounded so a stalled
/// peer can never wedge a worker.
pub trait Conn: Send {
    /// Reads into `buf`, returning the byte count (`0` = orderly EOF).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes from `buf`, returning how many bytes were accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Bounds subsequent reads; `None` blocks indefinitely.
    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()>;

    /// Bounds subsequent writes; `None` blocks indefinitely.
    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()>;

    /// Best-effort orderly close (flush and hang up both directions).
    fn close(&mut self);
}

/// The accepting side of the seam. `accept_timeout` returns `Ok(None)`
/// when no connection arrived within `wait`, so an acceptor thread can
/// poll for shutdown between attempts instead of blocking forever.
pub trait Listener: Send + Sync {
    /// Waits up to `wait` for one connection.
    fn accept_timeout(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>>;

    /// Human-readable bound address (for logs and clients).
    fn local_addr(&self) -> String;
}

// ---------------------------------------------------------------------------
// TCP.

/// [`Listener`] over a non-blocking [`std::net::TcpListener`] — the
/// production transport.
pub struct TcpTransport {
    inner: TcpListener,
    addr: String,
}

impl TcpTransport {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let addr = inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self { inner, addr })
    }
}

impl Listener for TcpTransport {
    fn accept_timeout(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        let deadline = Instant::now() + wait;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Box::new(TcpConn(stream))));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

/// A [`Conn`] over a [`TcpStream`]. Also the client side: tests and the
/// load generator connect with [`TcpConn::connect`].
pub struct TcpConn(pub TcpStream);

impl TcpConn {
    /// Connects to a server (client side of the seam).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let s = TcpStream::connect(addr)?;
        let _ = s.set_nodelay(true);
        Ok(Self(s))
    }
}

impl Conn for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.0, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.0, buf)
    }

    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.0.set_read_timeout(d)
    }

    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.0.set_write_timeout(d)
    }

    fn close(&mut self) {
        let _ = io::Write::flush(&mut self.0);
        let _ = self.0.shutdown(std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------
// In-process transport (condvar pipes) — deterministic, portless.

/// One direction of a duplex in-memory connection.
#[derive(Default)]
struct PipeState {
    data: VecDeque<u8>,
    /// The writing end hung up: readers drain `data`, then see EOF;
    /// writers fail with `BrokenPipe`.
    closed: bool,
}

#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn hang_up(&self) {
        self.state.lock().expect("pipe poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-memory duplex connection (the other end holds the
/// same two pipes crossed). Dropping an end hangs up both directions,
/// which the peer observes as EOF on read and `BrokenPipe` on write —
/// the in-process analogue of a connection reset.
pub struct MemConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl MemConn {
    fn pair() -> (MemConn, MemConn) {
        let a = Arc::new(Pipe::default());
        let b = Arc::new(Pipe::default());
        let left = MemConn {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            read_timeout: None,
            write_timeout: None,
        };
        let right = MemConn {
            rx: b,
            tx: a,
            read_timeout: None,
            write_timeout: None,
        };
        (left, right)
    }
}

impl Conn for MemConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = self.read_timeout.map(|d| Instant::now() + d);
        let mut st = self.rx.state.lock().expect("pipe poisoned");
        loop {
            if !st.data.is_empty() {
                let n = buf.len().min(st.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.data.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            let wait = match deadline {
                None => Duration::from_secs(3600),
                Some(end) => match end.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => left,
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "mem read timed out",
                        ))
                    }
                },
            };
            st = self.rx.cv.wait_timeout(st, wait).expect("pipe poisoned").0;
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.tx.state.lock().expect("pipe poisoned");
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "mem peer hung up",
            ));
        }
        st.data.extend(buf.iter().copied());
        self.tx.cv.notify_all();
        Ok(buf.len())
    }

    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.read_timeout = d;
        Ok(())
    }

    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.write_timeout = d;
        Ok(())
    }

    fn close(&mut self) {
        self.tx.hang_up();
        self.rx.hang_up();
    }
}

impl Drop for MemConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[derive(Default)]
struct AcceptQueue {
    pending: VecDeque<MemConn>,
}

/// An in-process [`Listener`]: [`MemTransport::connect`] hands back the
/// client end of a fresh duplex pipe and queues the server end for
/// `accept_timeout`. Clones share the queue, so a test keeps one handle
/// to dial while the server owns another.
#[derive(Clone, Default)]
pub struct MemTransport {
    q: Arc<(Mutex<AcceptQueue>, Condvar)>,
}

impl MemTransport {
    /// A fresh listener with an empty accept queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dials the listener: returns the client end of a new connection.
    pub fn connect(&self) -> MemConn {
        let (server, client) = MemConn::pair();
        let (lock, cv) = &*self.q;
        lock.lock()
            .expect("accept queue poisoned")
            .pending
            .push_back(server);
        cv.notify_one();
        client
    }
}

impl Listener for MemTransport {
    fn accept_timeout(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        let deadline = Instant::now() + wait;
        let (lock, cv) = &*self.q;
        let mut q = lock.lock().expect("accept queue poisoned");
        loop {
            if let Some(conn) = q.pending.pop_front() {
                return Ok(Some(Box::new(conn)));
            }
            let left = match deadline.checked_duration_since(Instant::now()) {
                Some(left) if !left.is_zero() => left,
                _ => return Ok(None),
            };
            q = cv.wait_timeout(q, left).expect("accept queue poisoned").0;
        }
    }

    fn local_addr(&self) -> String {
        "mem:".into()
    }
}

// ---------------------------------------------------------------------------
// Fault injection.

/// The operation classes a [`TransportRule`] can target. Each class
/// keeps its own monotonically increasing index across the whole
/// [`FaultyTransport`], so "the Nth read" is well-defined regardless of
/// which connection performs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportOp {
    /// `Listener::accept_timeout` returning a connection.
    Accept,
    /// `Conn::read`.
    Read,
    /// `Conn::write`.
    Write,
}

const N_T_OPS: usize = 3;

impl TransportOp {
    fn index(self) -> usize {
        match self {
            TransportOp::Accept => 0,
            TransportOp::Read => 1,
            TransportOp::Write => 2,
        }
    }
}

/// What happens when a transport rule fires.
#[derive(Debug, Clone)]
pub enum TransportFault {
    /// Fail outright with this error kind (e.g. `ConnectionReset`,
    /// `BrokenPipe`). Fires once.
    Fail(io::ErrorKind),
    /// EINTR-style transient: the operation fails `failures` consecutive
    /// times with `kind`, then succeeds — the shape a bounded-retry
    /// server must absorb.
    Transient {
        /// Consecutive failing attempts before success.
        failures: u32,
        /// The error kind each failing attempt reports.
        kind: io::ErrorKind,
    },
    /// Torn write: only the first `keep` bytes reach the peer, then the
    /// write reports `ConnectionReset` — mid-response resets leave the
    /// client holding exactly this truncated prefix. Fires once.
    TornWrite {
        /// Bytes delivered before the reset.
        keep: usize,
    },
    /// Torn read: at most `keep` bytes of this read are delivered, and
    /// the connection reads EOF from then on — the peer vanished
    /// mid-request. Fires once.
    TornRead {
        /// Bytes delivered before the premature EOF.
        keep: usize,
    },
    /// Slow-loris stall: sleep `dur`, then report `TimedOut` — what a
    /// socket timeout turns a glacial peer into. Fires once.
    Stall {
        /// How long the operation hangs before timing out.
        dur: Duration,
    },
}

/// One scripted transport fault: when the `nth` operation of class `op`
/// (0-based, counted across the whole [`FaultyTransport`]) arrives,
/// `fault` happens.
#[derive(Debug, Clone)]
pub struct TransportRule {
    /// Which operation class this rule watches.
    pub op: TransportOp,
    /// The 0-based operation index at which the rule arms.
    pub nth: u64,
    /// The injected behavior.
    pub fault: TransportFault,
}

/// A rule plus its remaining-fire budget ([`TransportFault::Transient`]
/// fires multiple times; everything else once).
struct Armed {
    rule: TransportRule,
    remaining: u32,
}

#[derive(Default)]
struct TransportFaultState {
    rules: Mutex<Vec<Armed>>,
    counts: [AtomicU64; N_T_OPS],
}

impl TransportFaultState {
    /// Claims the next index for `op` and returns the fault to inject,
    /// if a rule fires at it.
    fn tick(&self, op: TransportOp) -> Option<TransportFault> {
        let idx = self.counts[op.index()].fetch_add(1, Ordering::Relaxed);
        let mut rules = self.rules.lock().expect("transport rules poisoned");
        for armed in rules.iter_mut() {
            if armed.rule.op == op && idx >= armed.rule.nth && armed.remaining > 0 {
                armed.remaining -= 1;
                return Some(armed.rule.fault.clone());
            }
        }
        None
    }

    fn err(kind: io::ErrorKind, what: &str) -> io::Error {
        io::Error::new(kind, format!("injected transport fault: {what}"))
    }
}

/// A [`Listener`] wrapper that injects scripted, deterministic network
/// faults — see the module docs. Clones share the same fault plan and
/// operation counters, so a chaos test keeps a handle for arming rules
/// and reading [`FaultyTransport::op_count`] while the server owns
/// another.
#[derive(Clone)]
pub struct FaultyTransport {
    inner: Arc<dyn Listener>,
    state: Arc<TransportFaultState>,
}

impl FaultyTransport {
    /// Wraps `inner` with an (initially empty) fault plan.
    pub fn new(inner: impl Listener + 'static) -> Self {
        Self {
            inner: Arc::new(inner),
            state: Arc::new(TransportFaultState::default()),
        }
    }

    /// Adds a rule to the plan.
    pub fn arm(&self, rule: TransportRule) {
        let remaining = match rule.fault {
            TransportFault::Transient { failures, .. } => failures,
            _ => 1,
        };
        self.state
            .rules
            .lock()
            .expect("transport rules poisoned")
            .push(Armed { rule, remaining });
    }

    /// Fails the `nth` operation of class `op` with `kind`.
    pub fn fail_nth(&self, op: TransportOp, nth: u64, kind: io::ErrorKind) {
        self.arm(TransportRule {
            op,
            nth,
            fault: TransportFault::Fail(kind),
        });
    }

    /// Makes ops of class `op` starting at the `nth` fail `failures`
    /// times with `Interrupted`, then succeed.
    pub fn transient(&self, op: TransportOp, nth: u64, failures: u32) {
        self.arm(TransportRule {
            op,
            nth,
            fault: TransportFault::Transient {
                failures,
                kind: io::ErrorKind::Interrupted,
            },
        });
    }

    /// Tears the `nth` write after `keep` bytes.
    pub fn torn_write(&self, nth: u64, keep: usize) {
        self.arm(TransportRule {
            op: TransportOp::Write,
            nth,
            fault: TransportFault::TornWrite { keep },
        });
    }

    /// Cuts the `nth` read short after at most `keep` bytes.
    pub fn torn_read(&self, nth: u64, keep: usize) {
        self.arm(TransportRule {
            op: TransportOp::Read,
            nth,
            fault: TransportFault::TornRead { keep },
        });
    }

    /// Stalls the `nth` operation of class `op` for `dur`, then times
    /// it out.
    pub fn stall(&self, op: TransportOp, nth: u64, dur: Duration) {
        self.arm(TransportRule {
            op,
            nth,
            fault: TransportFault::Stall { dur },
        });
    }

    /// Drops all rules (operation counters keep running).
    pub fn clear(&self) {
        self.state
            .rules
            .lock()
            .expect("transport rules poisoned")
            .clear();
    }

    /// How many operations of class `op` have been issued so far — the
    /// handle a chaos sweep uses to enumerate every boundary.
    pub fn op_count(&self, op: TransportOp) -> u64 {
        self.state.counts[op.index()].load(Ordering::Relaxed)
    }
}

impl Listener for FaultyTransport {
    fn accept_timeout(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        // Only count (and possibly fault) attempts that would hand a
        // connection to the server, or "the Nth accept" would depend on
        // how often the acceptor polls an idle listener.
        let conn = match self.inner.accept_timeout(wait)? {
            None => return Ok(None),
            Some(c) => c,
        };
        match self.state.tick(TransportOp::Accept) {
            None => Ok(Some(Box::new(FaultyConn {
                inner: conn,
                state: Arc::clone(&self.state),
                torn_eof: false,
            }))),
            Some(TransportFault::Fail(kind)) | Some(TransportFault::Transient { kind, .. }) => {
                Err(TransportFaultState::err(kind, "accept"))
            }
            Some(TransportFault::Stall { dur }) => {
                std::thread::sleep(dur);
                Err(TransportFaultState::err(io::ErrorKind::TimedOut, "accept"))
            }
            Some(_) => Err(TransportFaultState::err(io::ErrorKind::Other, "accept")),
        }
    }

    fn local_addr(&self) -> String {
        self.inner.local_addr()
    }
}

/// A connection whose reads and writes consult the shared fault plan.
struct FaultyConn {
    inner: Box<dyn Conn>,
    state: Arc<TransportFaultState>,
    /// A fired [`TransportFault::TornRead`] latches EOF here.
    torn_eof: bool,
}

impl Conn for FaultyConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.torn_eof {
            return Ok(0);
        }
        match self.state.tick(TransportOp::Read) {
            None => self.inner.read(buf),
            Some(TransportFault::Fail(kind)) | Some(TransportFault::Transient { kind, .. }) => {
                Err(TransportFaultState::err(kind, "read"))
            }
            Some(TransportFault::TornRead { keep }) => {
                self.torn_eof = true;
                let keep = keep.min(buf.len());
                if keep == 0 {
                    return Ok(0);
                }
                self.inner.read(&mut buf[..keep])
            }
            Some(TransportFault::Stall { dur }) => {
                std::thread::sleep(dur);
                Err(TransportFaultState::err(io::ErrorKind::TimedOut, "read"))
            }
            Some(TransportFault::TornWrite { .. }) => {
                Err(TransportFaultState::err(io::ErrorKind::Other, "read"))
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.state.tick(TransportOp::Write) {
            None => self.inner.write(buf),
            Some(TransportFault::Fail(kind)) | Some(TransportFault::Transient { kind, .. }) => {
                Err(TransportFaultState::err(kind, "write"))
            }
            Some(TransportFault::TornWrite { keep }) => {
                // The prefix really reaches the peer, like a reset
                // mid-flight: push it through the inner conn before
                // reporting the failure.
                let keep = keep.min(buf.len());
                let mut sent = 0;
                while sent < keep {
                    match self.inner.write(&buf[sent..keep]) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => sent += n,
                    }
                }
                Err(TransportFaultState::err(
                    io::ErrorKind::ConnectionReset,
                    "torn write",
                ))
            }
            Some(TransportFault::Stall { dur }) => {
                std::thread::sleep(dur);
                Err(TransportFaultState::err(io::ErrorKind::TimedOut, "write"))
            }
            Some(TransportFault::TornRead { .. }) => {
                Err(TransportFaultState::err(io::ErrorKind::Other, "write"))
            }
        }
    }

    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(d)
    }

    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(d)
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pipe_roundtrips_and_eofs() {
        let listener = MemTransport::new();
        let mut client = listener.connect();
        let mut server = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("a queued connection");
        client.write(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        server.write(b"pong").unwrap();
        assert_eq!(client.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
        // Hanging up delivers EOF to the peer and fails its writes.
        drop(client);
        assert_eq!(server.read(&mut buf).unwrap(), 0);
        assert!(server.write(b"x").is_err());
    }

    #[test]
    fn mem_read_times_out_without_data() {
        let listener = MemTransport::new();
        let _client = listener.connect();
        let mut server = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            server.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn accept_times_out_when_idle() {
        let listener = MemTransport::new();
        assert!(listener
            .accept_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
    }

    #[test]
    fn faulty_transport_tears_writes_and_counts_ops() {
        let mem = MemTransport::new();
        let faulty = FaultyTransport::new(mem.clone());
        faulty.torn_write(0, 3);
        let mut client = mem.connect();
        let mut server = faulty
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        let err = server.write(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The client really received the 3-byte prefix.
        let mut buf = [0u8; 8];
        assert_eq!(client.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
        // The rule fired once; later writes succeed.
        server.write(b"gh").unwrap();
        assert_eq!(faulty.op_count(TransportOp::Write), 2);
        assert_eq!(faulty.op_count(TransportOp::Accept), 1);
    }

    #[test]
    fn torn_read_latches_eof() {
        let mem = MemTransport::new();
        let faulty = FaultyTransport::new(mem.clone());
        faulty.torn_read(0, 2);
        let mut client = mem.connect();
        let mut server = faulty
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        client.write(b"request").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
        assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF latched");
        assert_eq!(server.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn transient_faults_recover() {
        let mem = MemTransport::new();
        let faulty = FaultyTransport::new(mem.clone());
        faulty.transient(TransportOp::Read, 0, 2);
        let mut client = mem.connect();
        let mut server = faulty
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        client.write(b"hi").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            server.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            server.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(server.read(&mut buf).unwrap(), 2);
    }
}
