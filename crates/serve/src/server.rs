//! The query server: a bounded-queue thread pool with admission
//! control, per-request deadlines, degraded-mode responses, and
//! graceful drain.
//!
//! Life of a request: the acceptor thread polls the [`Listener`] and
//! either queues the connection (bounded queue), sheds it with `429` +
//! `Retry-After` when the queue is full, or answers `503` while
//! draining. A worker pops the connection, reads the head under the
//! request deadline (transient I/O faults retried via the shared
//! [`RetryPolicy`]), runs the query through
//! [`Store::query_degraded_with`] with a cancellation check wired to
//! the same deadline (so a scan cannot overrun it by more than one
//! chunk), and answers with the status contract:
//!
//! | status | meaning |
//! |--------|---------|
//! | `200`  | complete answer — no chunk quarantined |
//! | `206`  | degraded answer — body carries the [`DegradationReport`] |
//! | `429`  | load shed at admission (`Retry-After` set) |
//! | `503`  | draining (also `/healthz` during drain) |
//! | `504`  | deadline expired mid-scan |
//! | `408`  | deadline expired reading the request |
//!
//! Every worker wraps handling in `catch_unwind`, so a panic in one
//! request is counted (`serve.worker.panics`) and the worker survives —
//! the chaos suite asserts the counter stays zero.

use crate::http::{
    escape_json, json_f64, parse_request, read_head, write_response, Deadline, Request, Response,
};
use crate::transport::{Conn, Listener};
use blazr_store::{Aggregate, DegradationReport, Predicate, Query, QueryResult, Store, StoreError};
use blazr_telemetry as tel;
use blazr_util::retry::RetryPolicy;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue bound; a full queue sheds with `429`.
    pub queue_capacity: usize,
    /// Per-request deadline (head read + query + response write).
    pub deadline: Duration,
    /// Transient-I/O retry policy (shared classification with the
    /// store's `store.io.*` path).
    pub retry: RetryPolicy,
    /// Acceptor poll interval (also the shutdown-latency bound).
    pub accept_poll: Duration,
    /// How long a drain waits for in-flight requests before forcing
    /// shutdown.
    pub drain_timeout: Duration,
    /// Self-drain after this many handled connections (load generators
    /// and smoke tests; `None` = run until told to drain).
    pub max_requests: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            accept_poll: Duration::from_millis(5),
            drain_timeout: Duration::from_secs(5),
            max_requests: None,
        }
    }
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// A point-in-time view of the server's accounting, also returned by
/// [`Server::shutdown`]. The chaos suite's leak checks are
/// `in_flight == 0 && queued == 0 && panics == 0` after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections the acceptor received.
    pub accepted: u64,
    /// Connections a worker finished handling.
    pub served: u64,
    /// Connections shed with `429` (queue full).
    pub shed: u64,
    /// Connections answered `503` during drain.
    pub drain_rejects: u64,
    /// Requests whose deadline expired mid-scan (`504`).
    pub deadline_hits: u64,
    /// Responses answered `206` (degraded — damaged chunks skipped).
    pub degraded: u64,
    /// Panics caught in workers (should stay zero).
    pub panics: u64,
    /// Requests being handled right now.
    pub in_flight: usize,
    /// Connections waiting in the admission queue.
    pub queued: usize,
}

struct Shared {
    store: Store,
    cfg: ServeConfig,
    state: AtomicU8,
    drain_started: Mutex<Option<Instant>>,
    queue: Mutex<VecDeque<Box<dyn Conn>>>,
    cv: Condvar,
    in_flight: AtomicUsize,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    drain_rejects: AtomicU64,
    deadline_hits: AtomicU64,
    degraded: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        let mut started = self.drain_started.lock().expect("drain flag poisoned");
        if started.is_none() {
            *started = Some(Instant::now());
            let _ =
                self.state
                    .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire);
            self.cv.notify_all();
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            drain_rejects: self.drain_rejects.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queued: self.queue.lock().expect("queue poisoned").len(),
        }
    }
}

/// Decrements `in_flight` even if handling panics.
struct InFlightGuard<'a>(&'a Shared);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running query server. Dropping the handle without calling
/// [`Server::shutdown`] detaches the threads; prefer an explicit
/// shutdown (or [`ServeConfig::max_requests`] + [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: String,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the store's chapter of threads: one acceptor plus
    /// `cfg.workers` workers, all polling `listener`.
    pub fn start(store: Store, listener: Box<dyn Listener>, cfg: ServeConfig) -> io::Result<Self> {
        let addr = listener.local_addr();
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            store,
            cfg,
            state: AtomicU8::new(RUNNING),
            drain_started: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            drain_rejects: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("blazr-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("blazr-serve-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener.as_ref()))?
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The listener's bound address.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Current accounting.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// `"running"`, `"draining"`, or `"stopped"`.
    pub fn state(&self) -> &'static str {
        match self.shared.state() {
            RUNNING => "running",
            DRAINING => "draining",
            _ => "stopped",
        }
    }

    /// Stops admitting work: new connections get `503`, in-flight
    /// requests finish, and once drained (or `drain_timeout` later) the
    /// threads exit.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Waits for the server to stop (a drain must already be underway —
    /// via [`Server::begin_drain`] or [`ServeConfig::max_requests`] —
    /// or this blocks until one starts). Returns the final accounting.
    pub fn join(mut self) -> ServerStats {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats()
    }

    /// Graceful shutdown: drain, then join.
    pub fn shutdown(self) -> ServerStats {
        self.begin_drain();
        self.join()
    }
}

/// Accepts, admits, sheds, and supervises the drain. Accept errors are
/// counted and survived — the acceptor never dies before shutdown.
fn acceptor_loop(shared: &Shared, listener: &dyn Listener) {
    loop {
        match shared.state() {
            STOPPED => break,
            DRAINING => {
                let drained = shared.in_flight.load(Ordering::Acquire) == 0
                    && shared.queue.lock().expect("queue poisoned").is_empty();
                let overdue = shared
                    .drain_started
                    .lock()
                    .expect("drain flag poisoned")
                    .map(|t| t.elapsed() > shared.cfg.drain_timeout)
                    .unwrap_or(false);
                if drained || overdue {
                    shared.state.store(STOPPED, Ordering::Release);
                    shared.cv.notify_all();
                    break;
                }
            }
            _ => {}
        }
        match listener.accept_timeout(shared.cfg.accept_poll) {
            Ok(None) => continue,
            Ok(Some(conn)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                tel::count!("serve.accepted", 1);
                admit(shared, conn);
            }
            Err(_) => {
                tel::count!("serve.accept.errors", 1);
                // A faulted accept (reset, transient, stall) affects one
                // connection attempt; keep accepting.
            }
        }
    }
}

/// Queues a connection, or answers `429`/`503` without involving a
/// worker. Rejection writes are best-effort under a short budget so a
/// hostile peer cannot stall the acceptor.
fn admit(shared: &Shared, mut conn: Box<dyn Conn>) {
    if shared.state() != RUNNING {
        shared.drain_rejects.fetch_add(1, Ordering::Relaxed);
        tel::count!("serve.draining_rejects", 1);
        respond_best_effort(conn.as_mut(), Response::error(503, "draining"));
        return;
    }
    let mut q = shared.queue.lock().expect("queue poisoned");
    if q.len() >= shared.cfg.queue_capacity {
        drop(q);
        shared.shed.fetch_add(1, Ordering::Relaxed);
        tel::count!("serve.shed", 1);
        let mut resp = Response::error(429, "queue full");
        resp.retry_after = Some(1);
        respond_best_effort(conn.as_mut(), resp);
        return;
    }
    q.push_back(conn);
    if tel::counters_enabled() {
        tel::gauge!("serve.queue.depth").set(q.len() as i64);
    }
    drop(q);
    shared.cv.notify_one();
}

/// Writes a response with a small fixed budget, ignoring failures (the
/// peer may already be gone), and closes.
fn respond_best_effort(conn: &mut dyn Conn, resp: Response) {
    let deadline = Deadline::after(Duration::from_millis(250));
    let retry = RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    };
    let _ = write_response(conn, &resp, &deadline, &retry);
    conn.close();
}

/// Pops connections until the server stops. Handling is wrapped in
/// `catch_unwind`: a panicking request is counted and answered with a
/// best-effort `500`, and the worker lives on.
fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    if tel::counters_enabled() {
                        tel::gauge!("serve.queue.depth").set(q.len() as i64);
                    }
                    break Some(c);
                }
                if shared.state() == STOPPED {
                    break None;
                }
                q = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue poisoned")
                    .0;
            }
        };
        let mut conn = match conn {
            Some(c) => c,
            None => break,
        };
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let _guard = InFlightGuard(shared);
        if shared.state() == STOPPED {
            // Force-stopped with work still queued: answer 503, fast.
            respond_best_effort(conn.as_mut(), Response::error(503, "shutting down"));
        } else {
            let outcome = catch_unwind(AssertUnwindSafe(|| handle_conn(shared, conn.as_mut())));
            if outcome.is_err() {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                tel::count!("serve.worker.panics", 1);
                respond_best_effort(conn.as_mut(), Response::error(500, "internal panic"));
            }
        }
        conn.close();
        let served = shared.served.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(max) = shared.cfg.max_requests {
            if served >= max {
                shared.begin_drain();
            }
        }
    }
}

/// One full request: read, route, respond. Every failure path still
/// tries to send a status the client can interpret.
fn handle_conn(shared: &Shared, conn: &mut dyn Conn) {
    let start = Instant::now();
    tel::count!("serve.requests", 1);
    let deadline = Deadline::after(shared.cfg.deadline);
    let retry = &shared.cfg.retry;

    let head = match read_head(conn, &deadline, retry) {
        Ok(Some(head)) => head,
        Ok(None) => return, // clean close before any byte: no response owed
        Err(e) => {
            let status = match e.kind() {
                io::ErrorKind::TimedOut => 408,
                io::ErrorKind::InvalidData => 431,
                _ => 400,
            };
            count_response(status);
            respond_best_effort(conn, Response::error(status, &e.to_string()));
            return;
        }
    };
    let resp = match parse_request(&head) {
        Ok(req) => route(shared, &req, &deadline),
        Err(status) => Response::error(status, "malformed request"),
    };
    count_response(resp.status);
    // The response (including 408/504) gets at least a small write
    // budget even when the request deadline is spent.
    let write_deadline = match deadline.remaining() {
        Some(left) if left > Duration::from_millis(250) => deadline,
        _ => Deadline::after(Duration::from_millis(250)),
    };
    if write_response(conn, &resp, &write_deadline, retry).is_err() {
        tel::count!("serve.conn.write_errors", 1);
    }
    tel::record!("serve.request.us", start.elapsed().as_micros() as u64);
}

fn count_response(status: u16) {
    match status / 100 {
        2 => tel::count!("serve.responses.2xx", 1),
        4 => tel::count!("serve.responses.4xx", 1),
        _ => tel::count!("serve.responses.5xx", 1),
    }
}

fn route(shared: &Shared, req: &Request, deadline: &Deadline) -> Response {
    match req.path.as_str() {
        "/healthz" => {
            if shared.state() == RUNNING {
                Response::text(200, "ok\n")
            } else {
                Response::text(503, "draining\n")
            }
        }
        "/readyz" => {
            let queued = shared.queue.lock().expect("queue poisoned").len();
            if shared.state() == RUNNING && queued < shared.cfg.queue_capacity {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "not ready\n")
            }
        }
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            retry_after: None,
            body: tel::registry().snapshot().to_prometheus(),
        },
        "/query" => handle_query(shared, req, deadline),
        _ => Response::error(404, "not found"),
    }
}

/// Parses the query parameters, runs the scan under the deadline, and
/// encodes the result. `mode=strict` refuses damage with `500`
/// (mirroring `blazr store query` without `--degraded`); the default
/// degraded mode quarantines damage and reports it with `206`.
fn handle_query(shared: &Shared, req: &Request, deadline: &Deadline) -> Response {
    let q = match parse_query_params(req) {
        Ok(q) => q,
        Err(msg) => return Response::error(400, &msg),
    };
    // A `deadline_ms` parameter tightens (never extends) the budget.
    let deadline = match req.param("deadline_ms").map(str::parse::<u64>) {
        None => *deadline,
        Some(Ok(ms)) => {
            let requested = Deadline::after(Duration::from_millis(ms));
            match (requested.remaining(), deadline.remaining()) {
                (Some(a), Some(b)) if a < b => requested,
                (None, _) => requested,
                _ => *deadline,
            }
        }
        Some(Err(_)) => return Response::error(400, "deadline_ms: not an integer"),
    };
    let strict = match req.param("mode") {
        None | Some("degraded") => false,
        Some("strict") => true,
        Some(other) => {
            return Response::error(400, &format!("mode: want strict|degraded, got {other:?}"))
        }
    };

    if strict {
        return match shared.store.query(&q) {
            Ok(r) => Response::json(200, encode_query_body(&r, &DegradationReport::default())),
            Err(e) => store_error_response(shared, e),
        };
    }
    let cancel = || deadline.expired();
    match shared.store.query_degraded_with(&q, &cancel) {
        Ok((r, report)) => {
            let status = if report.is_degraded() { 206 } else { 200 };
            if status == 206 {
                shared.degraded.fetch_add(1, Ordering::Relaxed);
                tel::count!("serve.responses.degraded", 1);
            }
            Response::json(status, encode_query_body(&r, &report))
        }
        Err(e) => store_error_response(shared, e),
    }
}

fn store_error_response(shared: &Shared, e: StoreError) -> Response {
    match e {
        StoreError::InvalidArgument(msg) => Response::error(400, &msg),
        StoreError::Cancelled(msg) => {
            shared.deadline_hits.fetch_add(1, Ordering::Relaxed);
            tel::count!("serve.deadline_exceeded", 1);
            Response::error(504, &format!("deadline exceeded: {msg}"))
        }
        other => Response::error(500, &other.to_string()),
    }
}

/// Builds a [`Query`] from request parameters: `from`/`to` label
/// bounds, `agg`, and an optional `value_lo`/`value_hi` or
/// `mean_lo`/`mean_hi` predicate pair.
fn parse_query_params(req: &Request) -> Result<Query, String> {
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match req.param(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{key}: not an integer")),
        }
    };
    let parse_f64 = |key: &str| -> Result<Option<f64>, String> {
        match req.param(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{key}: not a number")),
        }
    };
    let from_label = parse_u64("from", 0)?;
    let to_label = parse_u64("to", u64::MAX)?;
    let aggregate =
        Aggregate::parse(req.param("agg").unwrap_or("sum")).map_err(|e| e.to_string())?;
    let value = (parse_f64("value_lo")?, parse_f64("value_hi")?);
    let mean = (parse_f64("mean_lo")?, parse_f64("mean_hi")?);
    let predicate = match (value, mean) {
        ((None, None), (None, None)) => None,
        ((lo, hi), (None, None)) => Some(Predicate::ValueInRange {
            lo: lo.unwrap_or(f64::NEG_INFINITY),
            hi: hi.unwrap_or(f64::INFINITY),
        }),
        ((None, None), (lo, hi)) => Some(Predicate::MeanInRange {
            lo: lo.unwrap_or(f64::NEG_INFINITY),
            hi: hi.unwrap_or(f64::INFINITY),
        }),
        _ => return Err("give value_lo/value_hi or mean_lo/mean_hi, not both".into()),
    };
    Ok(Query {
        from_label,
        to_label,
        predicate,
        aggregate,
    })
}

/// Serializes a query result plus its degradation report as the JSON
/// body both the server and its tests emit — keeping this in one place
/// is what makes the chaos suite's bit-identity check meaningful.
pub fn encode_query_body(r: &QueryResult, report: &DegradationReport) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    out.push_str(&format!("\"value\":{}", json_f64(r.value)));
    out.push_str(&format!(",\"error_bound\":{}", json_f64(r.error_bound)));
    out.push_str(&format!(",\"rows\":{}", r.stats.count));
    out.push_str(&format!(",\"chunks_in_range\":{}", r.chunks_in_range));
    out.push_str(&format!(",\"chunks_pruned\":{}", r.chunks_pruned));
    out.push_str(&format!(",\"chunks_scanned\":{}", r.chunks_scanned));
    out.push_str(&format!(",\"prune_ratio\":{}", json_f64(r.prune_ratio())));
    out.push_str(&format!(",\"payload_bytes_read\":{}", r.payload_bytes_read));
    out.push_str(&format!(",\"degraded\":{}", report.is_degraded()));
    out.push_str(&format!(
        ",\"rows_unavailable\":{}",
        report.rows_unavailable
    ));
    out.push_str(&format!(",\"rows_in_range\":{}", report.rows_in_range));
    out.push_str(&format!(
        ",\"fraction_unavailable\":{}",
        json_f64(report.fraction_unavailable())
    ));
    out.push_str(&format!(",\"bounds_partial\":{}", report.bounds_partial));
    out.push_str(",\"skipped\":[");
    for (i, s) in report.skipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":{},\"rows\":{},\"reason\":\"{}\"}}",
            s.label,
            s.rows,
            escape_json(&s.reason)
        ));
    }
    out.push_str("]}\n");
    out
}
