//! Just enough HTTP/1.1 for the query server: bounded head parsing with
//! deadline-aware transient retries, `Connection: close` responses, and
//! a tiny client (used by the chaos tests and the load generator).
//!
//! Every read and write goes through [`with_retry`], which reuses the
//! workspace-wide transient-vs-permanent classification from
//! [`blazr_util::retry::RetryPolicy`] — EINTR-style faults are absorbed
//! up to the attempt budget (never past the request deadline), and the
//! retries are counted under `serve.io.*`, symmetric with the store's
//! `store.io.*`.

use crate::transport::Conn;
use blazr_telemetry as tel;
use blazr_util::retry::RetryPolicy;
use std::io;
use std::time::{Duration, Instant};

/// Upper bound on a request head (request line + headers). Anything
/// longer is rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A request deadline: one instant every stage of handling (head read,
/// query scan, response write) measures itself against.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    end: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            end: Instant::now() + d,
        }
    }

    /// Time left, or `None` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.end
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

/// Runs `op` under the shared retry policy, but never sleeps past the
/// deadline: an expired deadline turns the next transient failure into
/// a give-up. Counts `serve.io.retries` / `serve.io.giveups`.
pub fn with_retry<T>(
    retry: &RetryPolicy,
    deadline: &Deadline,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut retries: u32 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if RetryPolicy::is_transient(e.kind()) => {
                let budget = retry.attempts.max(1);
                if retries + 1 >= budget || deadline.expired() {
                    tel::count!("serve.io.giveups", 1);
                    return Err(e);
                }
                let backoff = retry.backoff(retries);
                let capped = match deadline.remaining() {
                    Some(left) => backoff.min(left),
                    None => Duration::ZERO,
                };
                std::thread::sleep(capped);
                retries += 1;
                tel::count!("serve.io.retries", 1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// A parsed request: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, …).
    pub method: String,
    /// The path component of the target (before `?`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order.
    pub params: Vec<(String, String)>,
}

impl Request {
    /// The first value of parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a request head (through the final `\r\n\r\n`).
///
/// `Ok(None)` means the peer closed before sending anything — a clean
/// close the server owes no response for. Errors map to status codes:
/// `TimedOut` → 408, `InvalidData` (oversized) → 431, anything else
/// (torn head, reset) → 400, all best-effort.
pub fn read_head(
    conn: &mut dyn Conn,
    deadline: &Deadline,
    retry: &RetryPolicy,
) -> io::Result<Option<Vec<u8>>> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    loop {
        let left = match deadline.remaining() {
            Some(left) => left,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline expired reading request head",
                ))
            }
        };
        conn.set_read_timeout(Some(left))?;
        let n = with_retry(retry, deadline, || conn.read(&mut buf))?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-request",
            ));
        }
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head exceeds limit",
            ));
        }
        if find_head_end(&head).is_some() {
            return Ok(Some(head));
        }
    }
}

/// Byte offset just past the `\r\n\r\n` terminator, if present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Parses a request head into a [`Request`]. `Err` is the status code
/// to answer with (`400` malformed, `405` non-GET, `505` wrong major
/// version).
pub fn parse_request(head: &[u8]) -> Result<Request, u16> {
    let text = std::str::from_utf8(head).map_err(|_| 400u16)?;
    let line = text.lines().next().ok_or(400u16)?;
    let mut parts = line.split(' ').filter(|s| !s.is_empty());
    let method = parts.next().ok_or(400u16)?;
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if parts.next().is_some() {
        return Err(400);
    }
    if !version.starts_with("HTTP/1.") {
        return Err(505);
    }
    if method != "GET" {
        return Err(405);
    }
    if !target.starts_with('/') {
        return Err(400);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut params = Vec::new();
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path)?,
        params,
    })
}

/// Minimal percent-decoding (`%XX` and `+` → space). `Err(400)` on a
/// malformed escape.
fn percent_decode(s: &str) -> Result<String, u16> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).ok_or(400u16)?;
                let hex = std::str::from_utf8(hex).map_err(|_| 400u16)?;
                out.push(u8::from_str_radix(hex, 16).map_err(|_| 400u16)?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| 400)
}

/// A response the server is about to serialize. Always
/// `Connection: close` — one request per connection keeps worker
/// lifecycle and chaos accounting simple.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Seconds for a `Retry-After` header (load shedding / draining).
    pub retry_after: Option<u64>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
            body: body.to_string(),
        }
    }

    /// A JSON error body `{"error": msg}` with the given status.
    pub fn error(status: u16, msg: &str) -> Self {
        Self::json(status, format!("{{\"error\":\"{}\"}}\n", escape_json(msg)))
    }

    /// The serialized response (head + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            out.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a whole response, honoring the deadline and retrying
/// transients. Fails (rather than blocks) on a stalled or reset peer.
pub fn write_response(
    conn: &mut dyn Conn,
    resp: &Response,
    deadline: &Deadline,
    retry: &RetryPolicy,
) -> io::Result<()> {
    let bytes = resp.to_bytes();
    let mut sent = 0;
    while sent < bytes.len() {
        let left = match deadline.remaining() {
            Some(left) => left,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline expired writing response",
                ))
            }
        };
        conn.set_write_timeout(Some(left))?;
        let n = with_retry(retry, deadline, || conn.write(&bytes[sent..]))?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "peer stopped accepting response bytes",
            ));
        }
        sent += n;
    }
    Ok(())
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite float as JSON (`null` for NaN/infinity, which JSON cannot
/// represent). Rust's `{}` float formatting round-trips, so the value
/// survives serialization bit-exactly.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Client side (tests, load generator).

/// A response as the tiny client sees it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header lines as `(name, value)` pairs (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The body bytes, verified against `Content-Length`.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one `GET` over `conn` and reads the full response. Any
/// parse failure or a body shorter than `Content-Length` is an error —
/// the chaos suite's definition of "not a well-formed response".
pub fn http_get(
    conn: &mut dyn Conn,
    target: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    let req = format!("GET {target} HTTP/1.1\r\nHost: blazr\r\nConnection: close\r\n\r\n");
    let bytes = req.as_bytes();
    let mut sent = 0;
    while sent < bytes.len() {
        let n = conn.write(&bytes[sent..])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "server stopped accepting request bytes",
            ));
        }
        sent += n;
    }
    read_response(conn, timeout)
}

/// Reads and validates one full `Connection: close` response.
pub fn read_response(conn: &mut dyn Conn, timeout: Duration) -> io::Result<ClientResponse> {
    conn.set_read_timeout(Some(timeout))?;
    let deadline = Deadline::after(timeout);
    let mut raw: Vec<u8> = Vec::with_capacity(512);
    let mut buf = [0u8; 2048];
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if deadline.expired() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "response read deadline expired",
            ));
        }
        // Stop early once the declared body is complete (the server may
        // keep the connection open a moment before closing).
        if let Some(end) = find_head_end(&raw) {
            if let Some(len) = content_length(&raw[..end]) {
                if raw.len() >= end + len {
                    break;
                }
            }
        }
    }
    parse_response(&raw)
}

fn content_length(head: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(head).ok()?;
    for line in text.lines().skip(1) {
        let (k, v) = line.split_once(':')?;
        if k.eq_ignore_ascii_case("content-length") {
            return v.trim().parse().ok();
        }
    }
    None
}

/// Parses a raw response, enforcing that the body matches
/// `Content-Length` exactly.
pub fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let end = find_head_end(raw).ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("bad HTTP version in status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let body = raw[end..].to_vec();
    let declared = content_length(&raw[..end]).ok_or_else(|| bad("missing Content-Length"))?;
    if body.len() < declared {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated body: {} of {declared} bytes", body.len()),
        ));
    }
    let body = body[..declared].to_vec();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_with_params() {
        let head = b"GET /query?agg=sum&from=3&lo=-1.5 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse_request(head).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("agg"), Some("sum"));
        assert_eq!(req.param("from"), Some("3"));
        assert_eq!(req.param("lo"), Some("-1.5"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn rejects_bad_requests_with_the_right_status() {
        assert_eq!(parse_request(b"POST /q HTTP/1.1\r\n\r\n"), Err(405));
        assert_eq!(parse_request(b"GET /q HTTP/2\r\n\r\n"), Err(505));
        assert_eq!(parse_request(b"garbage\r\n\r\n"), Err(400));
        assert_eq!(parse_request(b"GET q HTTP/1.1\r\n\r\n"), Err(400));
        assert_eq!(parse_request(b"GET /q?x=%zz HTTP/1.1\r\n\r\n"), Err(400));
    }

    #[test]
    fn percent_decoding_handles_escapes() {
        let req = parse_request(b"GET /q?name=a%20b+c&v=1%2B2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.param("name"), Some("a b c"));
        assert_eq!(req.param("v"), Some("1+2"));
    }

    #[test]
    fn response_roundtrips_through_the_client_parser() {
        let mut resp = Response::json(206, "{\"x\":1}\n".into());
        resp.retry_after = Some(2);
        let parsed = parse_response(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, 206);
        assert_eq!(parsed.header("retry-after"), Some("2"));
        assert_eq!(parsed.header("connection"), Some("close"));
        assert_eq!(parsed.body_text(), "{\"x\":1}\n");
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let resp = Response::text(200, "hello world");
        let bytes = resp.to_bytes();
        let cut = &bytes[..bytes.len() - 3];
        let err = parse_response(cut).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn json_f64_round_trips_and_nulls_nonfinite() {
        assert_eq!(json_f64(1.5), "1.5");
        let x = 0.1 + 0.2;
        assert_eq!(json_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert!(d.remaining().is_none());
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(59));
    }
}
