//! `blazr-serve`: a fault-tolerant HTTP/1.1 query server for blazr
//! stores — "compressed arrays you can query while they are damaged,
//! over a network that is also damaged".
//!
//! Zero dependencies beyond the workspace, in the shim style: the HTTP
//! layer is hand-rolled over `std::net`, small enough to audit and to
//! fault-inject exhaustively. Three layers:
//!
//! * [`transport`] — the [`transport::Listener`]/[`transport::Conn`]
//!   seam (TCP, in-process pipes, and a scriptable
//!   [`transport::FaultyTransport`] mirroring `blazr_util::vfs`'s
//!   storage-fault plans);
//! * [`http`] — bounded request parsing, deadline-aware retried I/O,
//!   and a tiny client for tests and load generation;
//! * [`server`] — the bounded-queue thread pool: admission control
//!   (`429` + `Retry-After` when full), per-request deadlines that
//!   reach into the store scan via `Store::query_degraded_with`,
//!   degraded-mode `206` responses carrying the `DegradationReport`,
//!   `/healthz` / `/readyz` / `/metrics`, and graceful drain.

pub mod http;
pub mod server;
pub mod transport;

pub use http::{http_get, ClientResponse, Deadline, Request, Response};
pub use server::{encode_query_body, ServeConfig, Server, ServerStats};
pub use transport::{
    Conn, FaultyTransport, Listener, MemConn, MemTransport, TcpConn, TcpTransport, TransportFault,
    TransportOp, TransportRule,
};
