//! Shared fixtures for the serve integration tests: a small store on
//! disk, an optionally bit-rotted copy, and temp-dir plumbing.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Store, StoreWriter};
use blazr_tensor::NdArray;
use std::fs;
use std::path::{Path, PathBuf};

pub fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-serve-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a 6-chunk store (labels 0, 10, …, 50) and returns its path.
pub fn write_store(dir: &Path) -> PathBuf {
    let path = dir.join("store.blzs");
    let mut w = StoreWriter::create(
        &path,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    for t in 0..6u64 {
        let frame = NdArray::from_fn(vec![12, 12], |i| {
            ((i[0] as f64 + t as f64) / 3.0).sin() + i[1] as f64 * 0.05
        });
        w.append(t * 10, &frame).unwrap();
    }
    w.finish().unwrap();
    path
}

/// Flips one payload byte of chunk `victim` **on disk**, so every
/// subsequent open sees a store whose strict queries fail their
/// checksum and whose degraded queries quarantine exactly that chunk.
pub fn corrupt_chunk(path: &Path, victim: usize) {
    let offset = {
        let store = Store::open(path).unwrap();
        store.entries()[victim].offset + 7
    };
    let mut bytes = fs::read(path).unwrap();
    bytes[usize::try_from(offset).unwrap()] ^= 0x20;
    fs::write(path, bytes).unwrap();
}
