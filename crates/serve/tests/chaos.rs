//! The chaos suite: sweep scripted transport faults across **every**
//! operation boundary of a request exchange — connection resets, broken
//! pipes, EINTR transients, torn reads, torn writes (the client really
//! receives the truncated prefix), and slow-loris stalls — against both
//! an intact and a bit-rotted store, and assert the server never
//! panics, never leaks a worker or a queued connection, and always
//! either answers a well-formed response or closes cleanly. After every
//! injected fault the server must still answer a follow-up request
//! bit-identically to a direct store query.

mod common;

use blazr_serve::http::http_get;
use blazr_serve::transport::{
    FaultyTransport, MemTransport, TransportFault, TransportOp, TransportRule,
};
use blazr_serve::{encode_query_body, ClientResponse, ServeConfig, Server};
use blazr_store::{Aggregate, Query, Store};
use blazr_telemetry as tel;
use common::{corrupt_chunk, tmp_dir, write_store};
use std::io;
use std::path::Path;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);
const TARGET: &str = "/query?agg=sum";

/// Every status the server legitimately emits; anything else in a
/// parsed response is a contract violation.
const VALID_STATUSES: &[u16] = &[200, 206, 400, 404, 405, 408, 429, 431, 500, 503, 504, 505];

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 8,
        deadline: Duration::from_millis(500),
        accept_poll: Duration::from_millis(2),
        drain_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

/// Starts a server over a fault-wrapped in-process transport, returning
/// the dialing handle and the fault-plan handle.
fn start_server(path: &Path) -> (Server, MemTransport, FaultyTransport) {
    let mem = MemTransport::new();
    let faulty = FaultyTransport::new(mem.clone());
    let server = Server::start(
        Store::open(path).unwrap(),
        Box::new(faulty.clone()),
        chaos_cfg(),
    )
    .unwrap();
    (server, mem, faulty)
}

/// One client exchange. `Err` means the connection died without a
/// parseable response — a clean close, the acceptable alternative to a
/// well-formed answer.
fn run_exchange(mem: &MemTransport) -> io::Result<ClientResponse> {
    let mut conn = mem.connect();
    http_get(&mut conn, TARGET, CLIENT_TIMEOUT)
}

/// The fault menu the sweep injects at every boundary.
fn fault_menu() -> Vec<(&'static str, TransportFault)> {
    vec![
        (
            "reset",
            TransportFault::Fail(io::ErrorKind::ConnectionReset),
        ),
        (
            "broken-pipe",
            TransportFault::Fail(io::ErrorKind::BrokenPipe),
        ),
        (
            "transient-x2",
            TransportFault::Transient {
                failures: 2,
                kind: io::ErrorKind::Interrupted,
            },
        ),
        ("torn-write", TransportFault::TornWrite { keep: 17 }),
        ("torn-read", TransportFault::TornRead { keep: 5 }),
        (
            "stall",
            TransportFault::Stall {
                dur: Duration::from_millis(20),
            },
        ),
    ]
}

/// Enumerates how many operations of each class one clean exchange
/// performs (the boundaries the sweep will break one at a time).
fn enumerate_ops(path: &Path) -> Vec<(TransportOp, u64)> {
    let (server, mem, faulty) = start_server(path);
    run_exchange(&mem).expect("clean dry run");
    let counts = vec![
        (TransportOp::Accept, faulty.op_count(TransportOp::Accept)),
        (TransportOp::Read, faulty.op_count(TransportOp::Read)),
        (TransportOp::Write, faulty.op_count(TransportOp::Write)),
    ];
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    let total: u64 = counts.iter().map(|&(_, n)| n).sum();
    assert!(
        total >= 3,
        "dry run should touch every op class: {counts:?}"
    );
    counts
}

/// The sweep body, shared by the intact-store and degraded-store runs:
/// `reference` is what an undisturbed exchange must return, bit-exactly.
fn sweep(path: &Path, reference_status: u16, reference_body: &str) {
    let ops = enumerate_ops(path);
    let mut cases = 0;
    for &(op, count) in &ops {
        for nth in 0..count {
            for (name, fault) in fault_menu() {
                let case = format!("{op:?} #{nth} {name}");
                let (server, mem, faulty) = start_server(path);
                faulty.arm(TransportRule { op, nth, fault });
                match run_exchange(&mem) {
                    Ok(resp) => {
                        assert!(
                            VALID_STATUSES.contains(&resp.status),
                            "{case}: invalid status {}",
                            resp.status
                        );
                        // The parser already enforced Content-Length, so
                        // a returned response is well-formed by
                        // construction; a degraded/complete answer must
                        // additionally be the canonical body.
                        if resp.status == reference_status {
                            assert_eq!(resp.body_text(), reference_body, "{case}");
                        }
                    }
                    Err(_) => {
                        // Clean close: the fault killed the connection
                        // before a response could exist. Acceptable —
                        // the follow-up below proves the server
                        // survived it.
                    }
                }
                faulty.clear();
                let verify = run_exchange(&mem)
                    .unwrap_or_else(|e| panic!("{case}: server dead after fault: {e}"));
                assert_eq!(verify.status, reference_status, "{case}");
                assert_eq!(
                    verify.body_text(),
                    reference_body,
                    "{case}: answers drifted"
                );
                let stats = server.shutdown();
                assert_eq!(stats.panics, 0, "{case}: worker panicked");
                assert_eq!(stats.in_flight, 0, "{case}: leaked in-flight request");
                assert_eq!(stats.queued, 0, "{case}: leaked queued connection");
                cases += 1;
            }
        }
    }
    println!(
        "chaos sweep: {cases} fault cases over {} boundaries, zero panics/leaks",
        ops.iter().map(|&(_, n)| n).sum::<u64>()
    );
}

#[test]
fn fault_sweep_on_intact_store() {
    let dir = tmp_dir("sweep-intact");
    let path = write_store(&dir);
    let q = Query::all(Aggregate::Sum);
    let (r, report) = Store::open(&path).unwrap().query_degraded(&q).unwrap();
    assert!(!report.is_degraded());
    sweep(&path, 200, &encode_query_body(&r, &report));
}

#[test]
fn fault_sweep_on_degraded_store() {
    let dir = tmp_dir("sweep-degraded");
    let path = write_store(&dir);
    corrupt_chunk(&path, 3);
    let q = Query::all(Aggregate::Sum);
    let (r, report) = Store::open(&path).unwrap().query_degraded(&q).unwrap();
    assert!(report.is_degraded(), "fixture must be degraded");
    // Served degraded answers are 206 and bit-identical to the direct
    // query_degraded — even with faults tearing at the transport.
    sweep(&path, 206, &encode_query_body(&r, &report));
}

/// A concurrent storm against a small queue: every response the clients
/// manage to read is well-formed, nothing panics, nothing leaks. (Load
/// *statistics* live in the loadgen bench; this is the safety check.)
#[test]
fn concurrent_storm_stays_well_formed() {
    let dir = tmp_dir("storm");
    let path = write_store(&dir);
    corrupt_chunk(&path, 1);
    let mem = MemTransport::new();
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        deadline: Duration::from_millis(500),
        accept_poll: Duration::from_millis(1),
        ..chaos_cfg()
    };
    let server = Server::start(Store::open(&path).unwrap(), Box::new(mem.clone()), cfg).unwrap();

    let mut handles = Vec::new();
    for _ in 0..16 {
        let mem = mem.clone();
        handles.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for _ in 0..8 {
                match run_exchange(&mem) {
                    Ok(resp) => outcomes.push(resp.status),
                    Err(_) => outcomes.push(0), // clean close
                }
            }
            outcomes
        }));
    }
    let mut statuses = Vec::new();
    for h in handles {
        statuses.extend(h.join().expect("client thread panicked"));
    }
    for &s in &statuses {
        assert!(
            s == 0 || VALID_STATUSES.contains(&s),
            "storm produced invalid status {s}"
        );
    }
    assert!(
        statuses.contains(&206),
        "the degraded store should have answered at least one 206"
    );

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
    println!(
        "storm: {} requests, {} shed, {} served, zero panics/leaks",
        statuses.len(),
        stats.shed,
        stats.served
    );
}

/// Transient transport faults are absorbed by the shared retry policy
/// and surface in the `serve.io.*` counters, symmetric with the
/// store's `store.io.*`.
#[test]
fn transient_faults_are_retried_and_counted() {
    let dir = tmp_dir("retry-counters");
    let path = write_store(&dir);
    let (server, mem, faulty) = start_server(&path);

    tel::set_mode(tel::Mode::Counters);
    faulty.transient(TransportOp::Read, faulty.op_count(TransportOp::Read), 2);
    let resp = run_exchange(&mem).expect("retries should absorb the transient");
    assert_eq!(resp.status, 200);
    let snap = tel::registry().snapshot();
    tel::set_mode(tel::Mode::Off);
    let retries = snap.counter("serve.io.retries").unwrap_or(0);
    assert!(retries >= 2, "expected ≥2 counted retries, saw {retries}");

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    println!("transient: {retries} retries absorbed, response stayed 200");
}
