//! End-to-end server behavior: the status-code contract (200 complete /
//! 206 degraded / 429 shed / 503 draining / 504 deadline), bit-identity
//! of served bodies with direct store queries, graceful drain, and the
//! health/readiness/metrics endpoints — over both TCP and the
//! in-process transport.

mod common;

use blazr_serve::http::{http_get, read_response};
use blazr_serve::transport::{Conn, Listener, MemTransport, TcpConn, TcpTransport};
use blazr_serve::{encode_query_body, ServeConfig, Server};
use blazr_store::{Aggregate, Query, Store};
use common::{corrupt_chunk, tmp_dir, write_store};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 8,
        deadline: Duration::from_millis(500),
        accept_poll: Duration::from_millis(2),
        drain_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

/// GETs `target` over a fresh in-process connection.
fn mem_get(listener: &MemTransport, target: &str) -> blazr_serve::ClientResponse {
    let mut conn = listener.connect();
    http_get(&mut conn, target, CLIENT_TIMEOUT).unwrap()
}

#[test]
fn tcp_end_to_end_matches_direct_queries() {
    let dir = tmp_dir("tcp-e2e");
    let path = write_store(&dir);
    let q = Query::all(Aggregate::Sum);
    let direct = Store::open(&path).unwrap().query(&q).unwrap();

    let listener = TcpTransport::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let server =
        Server::start(Store::open(&path).unwrap(), Box::new(listener), quick_cfg()).unwrap();

    let mut conn = TcpConn::connect(&addr).unwrap();
    let resp = http_get(&mut conn, "/query?agg=sum", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let expect = format!("\"value\":{}", direct.value);
    assert!(
        resp.body_text().contains(&expect),
        "served body {:?} missing {expect:?}",
        resp.body_text()
    );
    assert!(resp.body_text().contains("\"degraded\":false"));

    let mut conn = TcpConn::connect(&addr).unwrap();
    let health = http_get(&mut conn, "/healthz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(health.status, 200);

    let stats = server.shutdown();
    assert!(stats.served >= 2, "stats: {stats:?}");
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.panics, 0);
}

#[test]
fn degraded_store_serves_206_with_bit_identical_body() {
    let dir = tmp_dir("degraded");
    let path = write_store(&dir);
    corrupt_chunk(&path, 2);

    let q = Query::all(Aggregate::Mean);
    let (direct, report) = Store::open(&path).unwrap().query_degraded(&q).unwrap();
    assert!(report.is_degraded(), "fixture must actually be degraded");
    let expected_body = encode_query_body(&direct, &report);

    let listener = MemTransport::new();
    let server = Server::start(
        Store::open(&path).unwrap(),
        Box::new(listener.clone()),
        quick_cfg(),
    )
    .unwrap();

    let resp = mem_get(&listener, "/query?agg=mean");
    assert_eq!(resp.status, 206, "degraded answers use a distinct status");
    assert_eq!(
        resp.body_text(),
        expected_body,
        "served degraded body must be bit-identical to a direct query_degraded"
    );
    assert!(resp.body_text().contains("\"bounds_partial\":true"));

    // Strict mode refuses the damage instead of degrading.
    let strict = mem_get(&listener, "/query?agg=mean&mode=strict");
    assert_eq!(strict.status, 500);
    assert!(strict.body_text().contains("corrupt"));

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
}

#[test]
fn queue_overflow_sheds_with_429_and_retry_after() {
    let dir = tmp_dir("shed");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        deadline: Duration::from_millis(400),
        accept_poll: Duration::from_millis(2),
        ..quick_cfg()
    };
    let server =
        Server::start(Store::open(&path).unwrap(), Box::new(listener.clone()), cfg).unwrap();

    // Two silent connections: the first occupies the only worker (it
    // blocks reading until the request deadline), the second fills the
    // 1-slot queue.
    let hold1 = listener.connect();
    while server.stats().in_flight < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let hold2 = listener.connect();
    while server.stats().queued < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // The third is shed at admission: 429 with Retry-After.
    let mut conn = listener.connect();
    let resp = read_response(&mut conn, CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 429);
    assert!(resp.header("retry-after").is_some());

    // The held connections eventually get 408s (deadline reading the
    // request head), not hangs.
    for mut held in [hold1, hold2] {
        let resp = read_response(&mut held, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 408);
    }

    let stats = server.shutdown();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.panics, 0);
}

#[test]
fn drain_rejects_new_work_but_finishes_in_flight() {
    let dir = tmp_dir("drain");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    // A roomy deadline: the in-flight request is completed by hand
    // below and must not 408 while the test drives the drain.
    let cfg = ServeConfig {
        deadline: Duration::from_secs(3),
        ..quick_cfg()
    };
    let server =
        Server::start(Store::open(&path).unwrap(), Box::new(listener.clone()), cfg).unwrap();

    // Start a request but withhold its final bytes until after the
    // drain begins: it was admitted while running, so it must finish.
    let mut slow = listener.connect();
    slow.write(b"GET /query?agg=sum HTTP/1.1\r\n").unwrap();
    while server.stats().in_flight < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    server.begin_drain();
    assert_eq!(server.state(), "draining");

    // New connections during the drain are answered 503.
    let mut late = listener.connect();
    let resp = read_response(&mut late, CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 503);

    // The in-flight request completes with a real answer.
    slow.write(b"\r\n").unwrap();
    let resp = read_response(&mut slow, CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());

    let stats = server.join();
    assert!(stats.drain_rejects >= 1, "stats: {stats:?}");
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.panics, 0);
}

#[test]
fn max_requests_self_drains() {
    let dir = tmp_dir("maxreq");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    let cfg = ServeConfig {
        max_requests: Some(3),
        ..quick_cfg()
    };
    let server =
        Server::start(Store::open(&path).unwrap(), Box::new(listener.clone()), cfg).unwrap();
    for _ in 0..3 {
        let resp = mem_get(&listener, "/query?agg=count");
        assert_eq!(resp.status, 200);
    }
    // join() returns on its own: the third served request triggered the
    // drain, the drain observed zero in-flight, and the threads exited.
    let stats = server.join();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn request_deadline_cancels_the_scan_with_504() {
    let dir = tmp_dir("deadline");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    let server = Server::start(
        Store::open(&path).unwrap(),
        Box::new(listener.clone()),
        quick_cfg(),
    )
    .unwrap();

    // deadline_ms=0: the head is already buffered in the pipe so the
    // read succeeds, then the first cooperative check inside the store
    // scan observes the expired deadline and cancels.
    let resp = mem_get(&listener, "/query?agg=sum&deadline_ms=0");
    assert_eq!(resp.status, 504, "body: {}", resp.body_text());
    assert!(resp.body_text().contains("deadline"));

    // The deadline must not extend past the server's own budget.
    let resp = mem_get(&listener, "/query?agg=sum&deadline_ms=999999999");
    assert_eq!(resp.status, 200);

    let stats = server.shutdown();
    assert!(stats.deadline_hits >= 1);
    assert_eq!(stats.panics, 0);
}

#[test]
fn predicates_and_label_ranges_reach_the_store() {
    let dir = tmp_dir("params");
    let path = write_store(&dir);
    let store = Store::open(&path).unwrap();
    let q = Query {
        from_label: 10,
        to_label: 40,
        predicate: Some(blazr_store::Predicate::ValueInRange { lo: -0.5, hi: 0.5 }),
        aggregate: Aggregate::Count,
    };
    let (direct, report) = store.query_degraded(&q).unwrap();
    assert!(!report.is_degraded());

    let listener = MemTransport::new();
    let server = Server::start(store, Box::new(listener.clone()), quick_cfg()).unwrap();
    let resp = mem_get(
        &listener,
        "/query?from=10&to=40&value_lo=-0.5&value_hi=0.5&agg=count",
    );
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text(), encode_query_body(&direct, &report));
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let dir = tmp_dir("badreq");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    let server = Server::start(
        Store::open(&path).unwrap(),
        Box::new(listener.clone()),
        quick_cfg(),
    )
    .unwrap();

    let cases: &[(&str, u16)] = &[
        ("POST /query HTTP/1.1\r\n\r\n", 405),
        ("GET /query HTTP/2\r\n\r\n", 505),
        ("total garbage\r\n\r\n", 400),
        ("GET /nope HTTP/1.1\r\n\r\n", 404),
        ("GET /query?agg=bogus HTTP/1.1\r\n\r\n", 400),
        ("GET /query?from=abc HTTP/1.1\r\n\r\n", 400),
        (
            "GET /query?value_lo=0&mean_hi=1&agg=sum HTTP/1.1\r\n\r\n",
            400,
        ),
    ];
    for (raw, want) in cases {
        let mut conn = listener.connect();
        conn.write(raw.as_bytes()).unwrap();
        let resp = read_response(&mut conn, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, *want, "request {raw:?}");
    }

    // An oversized head is rejected with 431, not buffered forever.
    let mut conn = listener.connect();
    let huge = format!("GET /query?junk={} HTTP/1.1\r\n\r\n", "x".repeat(9000));
    conn.write(huge.as_bytes()).unwrap();
    let resp = read_response(&mut conn, CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 431);

    // A connection that closes without sending anything is a clean
    // no-response close; the server stays healthy.
    drop(listener.connect());
    let resp = mem_get(&listener, "/healthz");
    assert_eq!(resp.status, 200);

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
}

#[test]
fn metrics_endpoint_exposes_serve_counters() {
    let dir = tmp_dir("metrics");
    let path = write_store(&dir);
    let listener = MemTransport::new();
    let server = Server::start(
        Store::open(&path).unwrap(),
        Box::new(listener.clone()),
        quick_cfg(),
    )
    .unwrap();
    blazr_telemetry::set_mode(blazr_telemetry::Mode::Counters);
    let _ = mem_get(&listener, "/query?agg=sum");
    let resp = mem_get(&listener, "/metrics");
    blazr_telemetry::set_mode(blazr_telemetry::Mode::Off);
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(
        body.contains("blazr_serve_requests_total"),
        "metrics body:\n{body}"
    );
    assert!(body.contains("# TYPE"));
    server.shutdown();
}
