//! Regenerates **Fig. 2**: PyBlaz vs Blaz operation time (compress,
//! decompress, add, multiply) over square 2-D arrays of growing size.
//!
//! PyBlaz settings match the paper's: f64 scales, int8 indices, 8×8
//! blocks. The expected *shape*: blazr (data-parallel) stays near-flat
//! until the thread pool saturates, then grows polynomially; Blaz
//! (single-threaded) grows polynomially throughout and loses by a widening
//! factor at scale.
//!
//! Output: `results/fig2_blaz_times.csv`.

use blazr::{compress, Settings};
use blazr_baselines::blaz::BlazCompressed;
use blazr_bench::{sweep, time_median};
use blazr_tensor::NdArray;
use blazr_util::csv::{CsvField, CsvWriter};
use blazr_util::rng::Xoshiro256pp;

fn main() {
    let sizes = sweep(
        &[8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192],
        &[8, 64, 256],
    );
    let mut csv = CsvWriter::with_header(&[
        "size",
        "pyblaz_compress",
        "pyblaz_decompress",
        "pyblaz_add",
        "pyblaz_multiply",
        "blaz_compress",
        "blaz_decompress",
        "blaz_add",
        "blaz_multiply",
    ]);
    println!("Fig. 2 — blazr vs Blaz times (seconds, median of 3)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size",
        "bz.comp",
        "bz.decomp",
        "bz.add",
        "bz.mul",
        "blaz.comp",
        "blaz.decomp",
        "blaz.add",
        "blaz.mul"
    );

    let settings = Settings::new(vec![8, 8]).unwrap();
    for &n in &sizes {
        let mut rng = Xoshiro256pp::seed_from_u64(n as u64);
        let a = NdArray::from_fn(vec![n, n], |_| rng.uniform());
        let b = NdArray::from_fn(vec![n, n], |_| rng.uniform());
        let reps = if n <= 512 { 5 } else { 3 };

        let t_pc = time_median(reps, || compress::<f64, i8>(&a, &settings).unwrap());
        let ca = compress::<f64, i8>(&a, &settings).unwrap();
        let cb = compress::<f64, i8>(&b, &settings).unwrap();
        let t_pd = time_median(reps, || ca.decompress());
        let t_pa = time_median(reps, || ca.add(&cb).unwrap());
        let t_pm = time_median(reps, || ca.mul_scalar(1.5));

        // Blaz past 2048² takes minutes; the paper's own Fig. 2 stops
        // Blaz early too. Cap it and emit NaN beyond.
        let (t_bc, t_bd, t_ba, t_bm) = if n <= 2048 {
            let t_bc = time_median(reps, || BlazCompressed::compress(&a));
            let ba = BlazCompressed::compress(&a);
            let bb = BlazCompressed::compress(&b);
            let t_bd = time_median(reps, || ba.decompress());
            let t_ba = time_median(reps, || ba.add(&bb));
            let t_bm = time_median(reps, || ba.mul_scalar(1.5));
            (t_bc, t_bd, t_ba, t_bm)
        } else {
            (f64::NAN, f64::NAN, f64::NAN, f64::NAN)
        };

        println!(
            "{n:>6} {t_pc:>12.3e} {t_pd:>12.3e} {t_pa:>12.3e} {t_pm:>12.3e} {t_bc:>12.3e} {t_bd:>12.3e} {t_ba:>12.3e} {t_bm:>12.3e}"
        );
        csv.push_row(&[
            CsvField::Int(n as i64),
            CsvField::Float(t_pc),
            CsvField::Float(t_pd),
            CsvField::Float(t_pa),
            CsvField::Float(t_pm),
            CsvField::Float(t_bc),
            CsvField::Float(t_bd),
            CsvField::Float(t_ba),
            CsvField::Float(t_bm),
        ]);
    }
    let path = blazr_bench::results_dir().join("fig2_blaz_times.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}
