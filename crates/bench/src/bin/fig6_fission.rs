//! Regenerates **Fig. 6**: scission detection in plutonium fission data.
//!
//! (a) L2 norm of the difference between adjacent time steps, computed
//!     three ways — uncompressed, (de)compressed, and fully in compressed
//!     space — showing the scission peak at 690→692 plus the misleading
//!     noise peaks, and that all three curves agree closely.
//! (b) approximate Wasserstein distance between adjacent steps for
//!     increasing order p, showing noise peaks shrinking until only the
//!     scission peak remains.
//!
//! Settings follow §V-C: block 16×16×16, int16 indices, FP32 scales.
//!
//! Outputs: `results/fig6a_l2.csv`, `results/fig6b_wasserstein.csv`.

use blazr::{compress, CompressedArray, Settings};
use blazr_datasets::fission::{series, FissionConfig, SCISSION_BETWEEN};
use blazr_tensor::reduce;
use blazr_util::csv::{CsvField, CsvWriter};

fn main() {
    let cfg = FissionConfig::default();
    println!(
        "generating fission series ({} steps)…",
        blazr_datasets::fission::TIME_STEPS.len()
    );
    let data = series(&cfg);
    let settings = Settings::new(vec![16, 16, 16]).unwrap();
    let compressed: Vec<CompressedArray<f32, i16>> = data
        .iter()
        .map(|(_, a)| compress(a, &settings).unwrap())
        .collect();
    let decompressed: Vec<_> = compressed.iter().map(|c| c.decompress()).collect();

    // (a) adjacent-step L2 differences.
    let mut csv_a = CsvWriter::with_header(&[
        "t1",
        "t2",
        "l2_uncompressed",
        "l2_decompressed",
        "l2_compressed_space",
    ]);
    println!("\nFig 6(a) — adjacent-step L2 differences");
    println!(
        "{:>5} {:>5} {:>14} {:>14} {:>14}",
        "t1", "t2", "uncompressed", "(de)compressed", "compressed"
    );
    let mut max_l2_dev = 0.0f64;
    let mut mean_l2 = 0.0f64;
    for w in 0..data.len() - 1 {
        let (t1, ref a) = data[w];
        let (t2, ref b) = data[w + 1];
        let unc = reduce::norm_l2(&a.sub(b));
        let dec = reduce::norm_l2(&decompressed[w].sub(&decompressed[w + 1]));
        let comp = compressed[w].sub(&compressed[w + 1]).unwrap().l2_norm() as f64;
        println!("{t1:>5} {t2:>5} {unc:>14.4} {dec:>14.4} {comp:>14.4}");
        csv_a.push_row(&[
            CsvField::Int(t1 as i64),
            CsvField::Int(t2 as i64),
            CsvField::Float(unc),
            CsvField::Float(dec),
            CsvField::Float(comp),
        ]);
        max_l2_dev = max_l2_dev.max((unc - comp).abs());
        mean_l2 += unc;
    }
    mean_l2 /= (data.len() - 1) as f64;
    println!(
        "\nmax |uncompressed − compressed| L2 deviation: {max_l2_dev:.3} (mean L2 {mean_l2:.2}) — the paper reports ≈1.68 vs mean 618.97"
    );

    // (b) Wasserstein distance sweep over p.
    let orders = blazr_bench::sweep(
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 68.0, 80.0],
        &[2.0, 68.0],
    );
    let mut csv_b = CsvWriter::with_header(&["p", "t1", "t2", "wasserstein"]);
    println!("\nFig 6(b) — approximate Wasserstein distance by order p");
    for &p in &orders {
        let mut dists = Vec::new();
        for w in 0..data.len() - 1 {
            let (t1, _) = data[w];
            let (t2, _) = data[w + 1];
            let d = compressed[w].wasserstein(&compressed[w + 1], p).unwrap();
            dists.push(((t1, t2), d));
            csv_b.push_row(&[
                CsvField::Float(p),
                CsvField::Int(t1 as i64),
                CsvField::Int(t2 as i64),
                CsvField::Float(d),
            ]);
        }
        // Peak localization summary: which pair dominates at this order,
        // and how far have the *noise* peaks (685→686, 695→699) been
        // suppressed relative to it?
        let (peak_pair, peak) = dists
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let runner_up = dists
            .iter()
            .filter(|(pair, _)| *pair != peak_pair)
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max);
        let noise = dists
            .iter()
            .filter(|((t1, t2), _)| (*t1 == 685 && *t2 == 686) || (*t1 == 695 && *t2 == 699))
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max);
        println!(
            "p={p:>4}: peak at {:?} (value {peak:.3e}), peak/runner-up = {:.2}, peak/noise-peaks = {:.2}{}",
            peak_pair,
            peak / runner_up.max(1e-300),
            peak / noise.max(1e-300),
            if peak_pair == SCISSION_BETWEEN {
                "  ← scission"
            } else {
                ""
            }
        );
    }
    let dir = blazr_bench::results_dir();
    csv_a.write_to(&dir.join("fig6a_l2.csv")).expect("write");
    csv_b
        .write_to(&dir.join("fig6b_wasserstein.csv"))
        .expect("write");
    println!("wrote fig6a_l2.csv and fig6b_wasserstein.csv");
}
