//! Regenerates **Fig. 4**: the shallow-water precision experiment.
//!
//! Runs the same double-gyre / seamount / non-periodic simulation twice —
//! once with all arithmetic in (software) FP16 and once in FP32 — then
//! compares the surface-height difference computed (c) on the
//! uncompressed fields and (d) entirely in compressed space via negation +
//! element-wise addition, using the paper's settings: 16×16 blocks, FP32
//! scales, int8 indices.
//!
//! Outputs: `results/fig4_shallow_water.csv` (agreement metrics) and four
//! PGM images (`fig4_{fp16,fp32,diff_uncompressed,diff_compressed}.pgm`)
//! mirroring the paper's panels (a), (b), (c), (d).

use blazr::{compress, Settings};
use blazr_bench::write_pgm;
use blazr_datasets::shallow_water::{ShallowWater, SwConfig};
use blazr_precision::F16;
use blazr_tensor::{reduce, NdArray};
use blazr_util::csv::{CsvField, CsvWriter};

fn main() {
    let quick = blazr_bench::quick_mode();
    // Paper: domain 200×400 with 100 grid cells in the first dimension;
    // we use 100×200 cells (the stated cell count) and fewer for --quick.
    let (nx, ny, steps) = if quick {
        (48, 96, 400)
    } else {
        (100, 200, 3000)
    };
    let cfg = SwConfig {
        nx,
        ny,
        ..SwConfig::default()
    };

    println!("running FP16 simulation ({nx}×{ny}, {steps} steps)…");
    let mut lo = ShallowWater::<F16>::new(cfg.clone());
    lo.run(steps);
    println!("running FP32 simulation…");
    let mut hi = ShallowWater::<f32>::new(cfg.clone());
    hi.run(steps);

    let h16 = lo.surface_height();
    let h32 = hi.surface_height();

    // (c) uncompressed difference.
    let diff_unc = h32.sub(&h16);

    // (d) compressed-space difference via negation + addition (the exact
    // recipe §V-A describes), block 16×16, fp32, int8.
    let settings = Settings::new(vec![16, 16]).unwrap();
    let c16 = compress::<f32, i8>(&h16, &settings).unwrap();
    let c32 = compress::<f32, i8>(&h32, &settings).unwrap();
    let diff_comp = c32.add(&c16.negate()).unwrap().decompress();

    // Agreement between the two difference maps.
    let corr = reduce::cosine_similarity(&diff_unc, &diff_comp);
    let linf_unc = reduce::norm_linf(&diff_unc);
    let linf_comp = reduce::norm_linf(&diff_comp);
    let l2_unc = reduce::norm_l2(&diff_unc);
    let l2_comp = reduce::norm_l2(&diff_comp);
    let map_err = blazr_util::stats::rms_diff(diff_unc.as_slice(), diff_comp.as_slice());
    // Does the compressed map point at the same hotspot?
    let argmax = |a: &NdArray<f64>| {
        let mut best = (0usize, 0.0f64);
        for (i, &v) in a.as_slice().iter().enumerate() {
            if v.abs() > best.1 {
                best = (i, v.abs());
            }
        }
        (best.0 / ny, best.0 % ny)
    };
    let (ur, uc) = argmax(&diff_unc);
    let (cr, cc) = argmax(&diff_comp);
    let hotspot_dist = ((ur as f64 - cr as f64).powi(2) + (uc as f64 - cc as f64).powi(2)).sqrt();

    println!("FP16 vs FP32 divergence: L∞ {linf_unc:.3e}, L2 {l2_unc:.3e}");
    println!("compressed-space diff:   L∞ {linf_comp:.3e}, L2 {l2_comp:.3e}");
    println!("map agreement: cosine {corr:.4}, rms discrepancy {map_err:.3e}");
    println!("hotspot (uncompressed) at ({ur},{uc}), (compressed) at ({cr},{cc}), dist {hotspot_dist:.1}");

    let dir = blazr_bench::results_dir();
    write_pgm(&dir.join("fig4_fp16.pgm"), &h16).unwrap();
    write_pgm(&dir.join("fig4_fp32.pgm"), &h32).unwrap();
    write_pgm(&dir.join("fig4_diff_uncompressed.pgm"), &diff_unc).unwrap();
    write_pgm(&dir.join("fig4_diff_compressed.pgm"), &diff_comp).unwrap();

    let mut csv = CsvWriter::with_header(&["metric", "uncompressed", "compressed_space"]);
    csv.push_row(&[
        CsvField::Str("linf_diff"),
        CsvField::Float(linf_unc),
        CsvField::Float(linf_comp),
    ]);
    csv.push_row(&[
        CsvField::Str("l2_diff"),
        CsvField::Float(l2_unc),
        CsvField::Float(l2_comp),
    ]);
    csv.push_row(&[
        CsvField::Str("map_cosine_similarity"),
        CsvField::Float(corr),
        CsvField::Float(corr),
    ]);
    csv.push_row(&[
        CsvField::Str("hotspot_distance_cells"),
        CsvField::Float(hotspot_dist),
        CsvField::Float(hotspot_dist),
    ]);
    let path = dir.join("fig4_shallow_water.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {} and 4 PGM panels", path.display());
}
