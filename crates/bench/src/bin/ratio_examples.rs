//! Regenerates the **§IV-C compression-ratio examples**: the paper's
//! closed-form ratios (≈2.91 and ≈10.66 for shape (3,224,224), block
//! (4,4,4)) checked three ways — formula, exact accounting with headers,
//! and the actual serialized byte stream.
//!
//! Output: `results/ratio_examples.csv`.

use blazr::{compress, PruningMask, Settings};
use blazr_tensor::NdArray;
use blazr_util::csv::{CsvField, CsvWriter};
use blazr_util::rng::Xoshiro256pp;

fn main() {
    let shape = [3usize, 224, 224];
    let block = [4usize, 4, 4];
    let mut csv = CsvWriter::with_header(&[
        "case",
        "paper_ratio",
        "formula_ratio",
        "exact_ratio_with_headers",
        "serialized_ratio",
    ]);

    let mut rng = Xoshiro256pp::seed_from_u64(2023);
    let a = NdArray::from_fn(shape.to_vec(), |_| rng.uniform());

    // Case 1: FP32 scales, int16 indices, no pruning → ≈ 2.91.
    let s1 = Settings::new(block.to_vec()).unwrap();
    let c1 = compress::<f32, i16>(&a, &s1).unwrap();
    let formula1 = blazr::ratio::paper_asymptotic_ratio(64, &shape, &block, 32, 16, 64);
    let exact1 = blazr::ratio::exact_ratio(64, &shape, &block, 32, 16, 64);
    let ser1 = (a.len() * 8) as f64 / c1.to_bytes().len() as f64;
    println!("fp32/int16/no-prune : paper 2.91  formula {formula1:.3}  exact {exact1:.3}  serialized {ser1:.3}");
    csv.push_row(&[
        CsvField::Str("fp32_int16_noprune"),
        CsvField::Float(2.91),
        CsvField::Float(formula1),
        CsvField::Float(exact1),
        CsvField::Float(ser1),
    ]);

    // Case 2: int8 indices, half the indices pruned → ≈ 10.66.
    let mask = PruningMask::keep_lowest_frequencies(&block, 32).unwrap();
    let s2 = Settings::new(block.to_vec())
        .unwrap()
        .with_mask(mask)
        .unwrap();
    let c2 = compress::<f32, i8>(&a, &s2).unwrap();
    let formula2 = blazr::ratio::paper_asymptotic_ratio(64, &shape, &block, 32, 8, 32);
    let exact2 = blazr::ratio::exact_ratio(64, &shape, &block, 32, 8, 32);
    let ser2 = (a.len() * 8) as f64 / c2.to_bytes().len() as f64;
    println!("fp32/int8/half-prune: paper 10.66 formula {formula2:.3}  exact {exact2:.3}  serialized {ser2:.3}");
    csv.push_row(&[
        CsvField::Str("fp32_int8_halfprune"),
        CsvField::Float(10.66),
        CsvField::Float(formula2),
        CsvField::Float(exact2),
        CsvField::Float(ser2),
    ]);

    let path = blazr_bench::results_dir().join("ratio_examples.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}
