//! Stage breakdown for the codec hot path, driven by the telemetry layer.
//!
//! Runs the compress/decompress/serialize workloads with
//! `BLAZR_TELEMETRY`-style spans forced on and prints the span and stage
//! histograms the instrumented library recorded — per-block
//! gather/transform/bin laps, entropy-coding stages, whole-pipeline
//! spans, and the coder/thread-pool counters — so a perf regression can
//! be attributed to a stage without firing up a profiler. Not a
//! benchmark target — run it directly:
//!
//! ```text
//! BLAZR_NUM_THREADS=1 cargo run --release -p blazr-bench --bin profile_codec
//! ```

use blazr::{compress, compress_values, Coder, CompressedArray, Settings};
use blazr_telemetry as tel;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

const REPS: usize = 5;

fn main() {
    tel::set_mode(tel::Mode::Spans);

    let n = 1024usize;
    let mut rng = Xoshiro256pp::seed_from_u64(n as u64);
    let a = NdArray::from_fn(vec![n, n], |_| rng.uniform());
    let settings = Settings::new(vec![8, 8]).unwrap();

    let conv: NdArray<f32> = a.convert();
    for _ in 0..REPS {
        std::hint::black_box(compress::<f32, i16>(&a, &settings).unwrap());
        std::hint::black_box(compress_values::<f32, i16>(&conv, &settings).unwrap());
    }
    let c: CompressedArray<f32, i16> = compress(&a, &settings).unwrap();
    for _ in 0..REPS {
        std::hint::black_box(c.decompress());
        std::hint::black_box(c.decompress_values());
    }

    // Entropy-coding stages, on a smooth field so the rANS path does real
    // work (random bins degenerate to the fixed-width fallback regime).
    let smooth = NdArray::from_fn(vec![n, n], |ix| {
        (ix[0] as f64 * 0.013).sin() + (ix[1] as f64 * 0.017).cos()
    });
    let sc: CompressedArray<f32, i16> = compress(&smooth, &settings).unwrap();
    for _ in 0..REPS {
        std::hint::black_box(sc.to_bytes_with(Coder::FixedWidth));
        std::hint::black_box(sc.to_bytes_with(Coder::Rans));
    }
    let fixed = sc.to_bytes_with(Coder::FixedWidth);
    let rans = sc.to_bytes_with(Coder::Rans);
    for _ in 0..REPS {
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&fixed).unwrap());
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&rans).unwrap());
    }

    let snap = tel::registry().snapshot();
    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "span/stage (ns)", "count", "p50", "p99", "mean", "total"
    );
    for h in &snap.histograms {
        println!(
            "{:<28} {:>9} {:>12} {:>12} {:>12.0} {:>12}",
            h.name,
            h.count,
            h.p50,
            h.p99,
            h.mean(),
            h.sum
        );
    }
    println!();
    for (name, v) in &snap.counters {
        println!("{name:<28} {v:>9}");
    }
    println!();
    println!(
        "rans/fixed size      {:.3}x ({} -> {} bytes)",
        rans.len() as f64 / fixed.len() as f64,
        fixed.len(),
        rans.len()
    );
}
