//! Ad-hoc stage breakdown for the codec hot path.
//!
//! Prints wall times for the individual pipeline stages (dtype conversion,
//! blocking, forward transform) next to the fused `compress`/`decompress`
//! entry points, so a perf regression can be attributed to a stage without
//! firing up a profiler. Not a benchmark target — run it directly:
//!
//! ```text
//! BLAZR_NUM_THREADS=1 cargo run --release -p blazr-bench --bin profile_codec
//! ```

use blazr::coder::histogram::{Histogram, SymbolTable};
use blazr::{compress, compress_values, Coder, CompressedArray, Settings};
use blazr_tensor::blocking::Blocked;
use blazr_tensor::NdArray;
use blazr_transform::BlockTransform;
use blazr_util::rng::Xoshiro256pp;
use std::time::Instant;

fn main() {
    let n = 1024usize;
    let mut rng = Xoshiro256pp::seed_from_u64(n as u64);
    let a = NdArray::from_fn(vec![n, n], |_| rng.uniform());
    let settings = Settings::new(vec![8, 8]).unwrap();
    let t = |label: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..5 {
            f();
        }
        println!("{label:<24} {:?}", t0.elapsed() / 5);
    };

    let conv: NdArray<f32> = a.convert();
    t("convert", &mut || {
        std::hint::black_box(a.convert::<f32>());
    });
    t("partition(gather)", &mut || {
        std::hint::black_box(Blocked::partition(&conv, &[8, 8]));
    });
    let bt = BlockTransform::<f32>::new(settings.transform, &settings.block_shape);
    let mut blocked = Blocked::partition(&conv, &[8, 8]);
    t("forward-all-blocks", &mut || {
        let mut scratch = vec![0.0f32; 64];
        for kb in 0..blocked.block_count() {
            bt.forward(blocked.block_mut(kb), &mut scratch);
        }
    });
    t("compress(full)", &mut || {
        std::hint::black_box(compress::<f32, i16>(&a, &settings).unwrap());
    });
    t("compress_values", &mut || {
        std::hint::black_box(compress_values::<f32, i16>(&conv, &settings).unwrap());
    });
    let c: CompressedArray<f32, i16> = compress(&a, &settings).unwrap();
    t("decompress", &mut || {
        std::hint::black_box(c.decompress());
    });
    t("decompress_values", &mut || {
        std::hint::black_box(c.decompress_values());
    });

    // Entropy-coding stage breakdown, on a smooth field so the rANS
    // path does real work (random bins degenerate to the fixed-width
    // fallback regime).
    println!("-- entropy stages (smooth field) --");
    let smooth = NdArray::from_fn(vec![n, n], |ix| {
        (ix[0] as f64 * 0.013).sin() + (ix[1] as f64 * 0.017).cos()
    });
    let sc: CompressedArray<f32, i16> = compress(&smooth, &settings).unwrap();
    t("histogram", &mut || {
        std::hint::black_box(Histogram::of(sc.indices()));
    });
    let hist = Histogram::of(sc.indices());
    t("table-optimize", &mut || {
        std::hint::black_box(SymbolTable::optimize(&hist));
    });
    t("to_bytes(fixed)", &mut || {
        std::hint::black_box(sc.to_bytes_with(Coder::FixedWidth));
    });
    t("to_bytes(rans)", &mut || {
        std::hint::black_box(sc.to_bytes_with(Coder::Rans));
    });
    let fixed = sc.to_bytes_with(Coder::FixedWidth);
    let rans = sc.to_bytes_with(Coder::Rans);
    t("from_bytes(fixed)", &mut || {
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&fixed).unwrap());
    });
    t("from_bytes(rans)", &mut || {
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&rans).unwrap());
    });
    println!(
        "rans/fixed size      {:.3}x ({} -> {} bytes)",
        rans.len() as f64 / fixed.len() as f64,
        fixed.len(),
        rans.len()
    );
}
