//! Regenerates **Fig. 7(b–l)**: time per compressed-space operation for
//! 3-dimensional cubic arrays with block size 4, across the 12
//! (float type × index type) setting combinations of the paper's legend.
//!
//! Operations timed: compress, decompress, negate, add, multiply, dot,
//! L2 norm, cosine similarity, mean, variance, SSIM.
//!
//! Output: `results/fig7_op_times.csv` (one row per setting × size ×
//! operation). Array sizes default to 4..=128 per side (the paper goes to
//! 1024 on a 24 GB GPU; sizes are configurable via `--size-cap N`).

use blazr::dynamic::{compress_dyn, DynCompressed};
use blazr::ops::SsimParams;
use blazr::{IndexType, ScalarType, Settings};
use blazr_bench::time_median;
use blazr_tensor::NdArray;
use blazr_util::csv::{CsvField, CsvWriter};
use blazr_util::rng::Xoshiro256pp;

fn size_cap() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--size-cap" {
            return w[1].parse().expect("numeric --size-cap");
        }
    }
    if blazr_bench::quick_mode() {
        16
    } else {
        128
    }
}

fn main() {
    let cap = size_cap();
    let sizes: Vec<usize> = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    let float_types = if blazr_bench::quick_mode() {
        vec![ScalarType::F32]
    } else {
        ScalarType::ALL.to_vec()
    };
    let index_types = [IndexType::I8, IndexType::I16, IndexType::I32];
    let settings = Settings::new(vec![4, 4, 4]).unwrap();

    let mut csv =
        CsvWriter::with_header(&["float_type", "index_type", "size", "operation", "seconds"]);
    println!("Fig. 7 — compressed-space operation times, 3-D arrays, block 4³");

    for &n in &sizes {
        let mut rng = Xoshiro256pp::seed_from_u64(n as u64);
        let a = NdArray::from_fn(vec![n, n, n], |_| rng.uniform());
        let b = NdArray::from_fn(vec![n, n, n], |_| rng.uniform());
        let reps = if n <= 64 { 5 } else { 3 };
        for &ft in &float_types {
            for &it in &index_types {
                let t_compress = time_median(reps, || compress_dyn(&a, &settings, ft, it).unwrap());
                let ca = compress_dyn(&a, &settings, ft, it).unwrap();
                let cb = compress_dyn(&b, &settings, ft, it).unwrap();
                let ops: Vec<(&str, f64)> = vec![
                    ("compress", t_compress),
                    ("decompress", time_median(reps, || ca.decompress())),
                    ("negate", time_median(reps, || ca.negate())),
                    ("add", time_median(reps, || ca.add(&cb).unwrap())),
                    ("multiply", time_median(reps, || ca.mul_scalar(1.5))),
                    ("dot", time_median(reps, || ca.dot(&cb).unwrap())),
                    ("l2_norm", time_median(reps, || ca.l2_norm())),
                    (
                        "cosine_similarity",
                        time_median(reps, || ca.cosine_similarity(&cb).unwrap()),
                    ),
                    ("mean", time_median(reps, || ca.mean().unwrap())),
                    ("variance", time_median(reps, || ca.variance().unwrap())),
                    (
                        "ssim",
                        time_median(reps, || ca.ssim(&cb, &SsimParams::default()).unwrap()),
                    ),
                ];
                for (op, t) in &ops {
                    csv.push_row(&[
                        CsvField::Str(ft.name()),
                        CsvField::Str(it.name()),
                        CsvField::Int(n as i64),
                        CsvField::Str(op),
                        CsvField::Float(*t),
                    ]);
                }
                let summary: String = ops
                    .iter()
                    .filter(|(op, _)| ["compress", "add", "dot", "ssim"].contains(op))
                    .map(|(op, t)| format!("{op} {t:.2e}"))
                    .collect::<Vec<_>>()
                    .join("  ");
                println!("n={n:>4} {:<9} {:<6}: {summary}", ft.name(), it.name());
                let _ = &ca as &DynCompressed;
            }
        }
    }
    let path = blazr_bench::results_dir().join("fig7_op_times.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}
