//! Regenerates **Fig. 5(b–e)**: absolute and relative error of the
//! compressed-space mean, variance, L2 norm, and SSIM against their
//! uncompressed counterparts on FLAIR-like MRI volumes, swept over the
//! paper's compression settings:
//!
//! * float types bfloat16 / float16 / float32 / float64,
//! * index types int8 / int16,
//! * block shapes 4³, 8³, 16³, 4×8×8, 4×16×16, 8×16×16 (no pruning),
//!
//! plus the mean compression ratio per setting (the black lines in the
//! paper's panels). NaN means some volume produced a NaN for that setting
//! — the paper's "squares are missing where NaNs occurred".
//!
//! Output: `results/fig5_mri_errors.csv`.

use blazr::dynamic::{compress_dyn, DynCompressed};
use blazr::ops::SsimParams;
use blazr::{IndexType, ScalarType, Settings};
use blazr_datasets::mri::MriDataset;
use blazr_tensor::{reduce, NdArray};
use blazr_util::csv::{CsvField, CsvWriter};
use blazr_util::stats::Welford;

fn main() {
    let quick = blazr_bench::quick_mode();
    // Full runs use fewer, smaller volumes than the real dataset's
    // 110×256×256 to keep the sweep tractable; the orderings the paper
    // reports are already stable at this scale.
    let ds = if quick {
        MriDataset::small(42, 4, 32)
    } else {
        MriDataset::small(42, 12, 128)
    };
    let volumes: Vec<NdArray<f64>> = (0..ds.volumes).map(|i| ds.volume(i)).collect();
    println!(
        "generated {} FLAIR-like volumes (first dims: {:?})",
        volumes.len(),
        volumes.iter().map(|v| v.shape()[0]).collect::<Vec<_>>()
    );

    let block_shapes: Vec<Vec<usize>> = vec![
        vec![4, 4, 4],
        vec![8, 8, 8],
        vec![16, 16, 16],
        vec![4, 8, 8],
        vec![4, 16, 16],
        vec![8, 16, 16],
    ];
    let float_types = if quick {
        vec![ScalarType::F32]
    } else {
        ScalarType::ALL.to_vec()
    };
    let index_types = [IndexType::I8, IndexType::I16];

    let mut csv = CsvWriter::with_header(&[
        "float_type",
        "index_type",
        "block_shape",
        "function",
        "mean_abs_error",
        "mean_rel_error",
        "nan_count",
        "mean_compression_ratio",
    ]);

    // Reference statistics per volume.
    let refs: Vec<(f64, f64, f64)> = volumes
        .iter()
        .map(|v| (reduce::mean(v), reduce::variance(v), reduce::norm_l2(v)))
        .collect();
    let flair_mean: f64 = refs.iter().map(|r| r.0).sum::<f64>() / refs.len() as f64;

    for &ft in &float_types {
        for &it in &index_types {
            for bs in &block_shapes {
                let settings = Settings::new(bs.clone()).unwrap();
                let compressed: Vec<DynCompressed> = volumes
                    .iter()
                    .map(|v| compress_dyn(v, &settings, ft, it).unwrap())
                    .collect();
                let ratio: f64 = compressed
                    .iter()
                    .map(|c| c.compression_ratio())
                    .sum::<f64>()
                    / compressed.len() as f64;

                // mean / variance / L2 on individual volumes.
                let mut stats: Vec<(&str, Welford, Welford, usize)> = vec![
                    ("mean", Welford::new(), Welford::new(), 0),
                    ("variance", Welford::new(), Welford::new(), 0),
                    ("l2_norm", Welford::new(), Welford::new(), 0),
                    ("ssim", Welford::new(), Welford::new(), 0),
                ];
                for (c, &(rm, rv, rl)) in compressed.iter().zip(&refs) {
                    let results = [
                        (0, c.mean().ok(), rm),
                        (1, c.variance().ok(), rv),
                        (2, Some(c.l2_norm()), rl),
                    ];
                    for (slot, got, reference) in results {
                        let entry = &mut stats[slot];
                        match got {
                            Some(g) if g.is_finite() => {
                                entry.1.push((g - reference).abs());
                                entry.2.push(blazr_util::stats::relative_error(
                                    g,
                                    reference,
                                    flair_mean * 1e-3,
                                ));
                            }
                            _ => entry.3 += 1,
                        }
                    }
                }
                // SSIM on consecutive pairs, cropping the deeper volume to
                // match (the paper crops or pads one of each pair; all
                // C(110,2) pairs would dominate runtime without changing
                // the orderings).
                for w in 0..volumes.len().saturating_sub(1) {
                    let d = volumes[w].shape()[0].min(volumes[w + 1].shape()[0]);
                    let crop = |v: &NdArray<f64>| {
                        NdArray::from_fn(vec![d, v.shape()[1], v.shape()[2]], |idx| v.get(idx))
                    };
                    let va = crop(&volumes[w]);
                    let vb = crop(&volumes[w + 1]);
                    let reference = reduce::ssim(&va, &vb, &SsimParams::default());
                    let ca = compress_dyn(&va, &settings, ft, it).unwrap();
                    let cb = compress_dyn(&vb, &settings, ft, it).unwrap();
                    match ca.ssim(&cb, &SsimParams::default()) {
                        Ok(g) if g.is_finite() => {
                            stats[3].1.push((g - reference).abs());
                            // SSIM is already an index in [0,1]: the paper
                            // reports no relative axis for it.
                            stats[3].2.push(f64::NAN);
                        }
                        _ => stats[3].3 += 1,
                    }
                }

                let bs_label = bs
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("x");
                for (name, abs, rel, nans) in &stats {
                    let mae = if abs.count() == 0 {
                        f64::NAN
                    } else {
                        abs.mean()
                    };
                    let mre = if rel.count() == 0 {
                        f64::NAN
                    } else {
                        rel.mean()
                    };
                    println!(
                        "{:<9} {:<6} {:<9} {:<9}: MAE {:>11.4e} MRE {:>11.4e} NaNs {:>2} ratio {:>6.2}",
                        ft.name(),
                        it.name(),
                        bs_label,
                        name,
                        mae,
                        mre,
                        nans,
                        ratio
                    );
                    csv.push_row(&[
                        CsvField::Str(ft.name()),
                        CsvField::Str(it.name()),
                        CsvField::Str(&bs_label),
                        CsvField::Str(name),
                        CsvField::Float(mae),
                        CsvField::Float(mre),
                        CsvField::Int(*nans as i64),
                        CsvField::Float(ratio),
                    ]);
                }
            }
        }
    }
    let path = blazr_bench::results_dir().join("fig5_mri_errors.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}
