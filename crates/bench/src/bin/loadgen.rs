//! Load generator for the query server: concurrent clients over real
//! TCP against an intact and a bit-rotted store, reporting p50/p99
//! latency and throughput per concurrency tier, plus how the server
//! defended itself (429 sheds, 504 deadline hits).
//!
//! Prints one greppable `loadgen` line per (store, tier) pair (CI lifts
//! them into the job summary) and writes the machine-readable
//! `crates/bench/BENCH_serve.json`. Exits non-zero if the failure
//! contract breaks: any worker panic, any deadline overrun (504), a
//! leaked connection, no shedding at the top tier, or degraded answers
//! from an intact store (and vice versa).
//!
//! ```text
//! cargo run --release -p blazr-bench --bin loadgen [-- --quick]
//! ```
//!
//! `--quick` shrinks the tiers and the admission queue so the smoke run
//! still exercises shedding in a few seconds.

use blazr::{IndexType, ScalarType, Settings};
use blazr_serve::{http_get, ServeConfig, Server, TcpConn, TcpTransport};
use blazr_store::{Store, StoreWriter};
use blazr_tensor::NdArray;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(15);
const TARGET: &str = "/query?agg=sum";

/// Builds the benchmark store: 8 chunks of 64x64 so a full-range sum
/// does real decode work per request without dominating the run.
fn write_store(path: &Path) {
    let mut w = StoreWriter::create(
        path,
        Settings::new(vec![8, 8]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .expect("create store");
    for t in 0..8u64 {
        let frame = NdArray::from_fn(vec![64, 64], |i| {
            ((i[0] as f64 + t as f64) / 7.0).sin() + i[1] as f64 * 0.01
        });
        w.append(t, &frame).expect("append chunk");
    }
    w.finish().expect("finish store");
}

/// Flips one payload byte of chunk `victim` so degraded queries must
/// quarantine it (the degraded-store arm of the benchmark).
fn corrupt_chunk(path: &Path, victim: usize) {
    let offset = {
        let store = Store::open(path).unwrap();
        store.entries()[victim].offset + 7
    };
    let mut bytes = std::fs::read(path).unwrap();
    bytes[usize::try_from(offset).unwrap()] ^= 0x20;
    std::fs::write(path, bytes).unwrap();
}

/// One client request: connect (with retry while the accept backlog is
/// saturated), exchange, return (status, latency). Status 0 means the
/// connection closed without a parseable response.
fn fetch(addr: &str) -> (u16, Duration) {
    let t0 = Instant::now();
    for backoff_ms in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        match TcpConn::connect(addr) {
            Ok(mut conn) => {
                return match http_get(&mut conn, TARGET, CLIENT_TIMEOUT) {
                    Ok(resp) => (resp.status, t0.elapsed()),
                    Err(_) => (0, t0.elapsed()),
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(backoff_ms)),
        }
    }
    (0, t0.elapsed())
}

#[derive(Default)]
struct TierResult {
    total: usize,
    ok: u64,       // 200
    degraded: u64, // 206
    shed: u64,     // 429
    draining: u64, // 503
    overrun: u64,  // 504
    other: u64,    // any other status
    closes: u64,   // no parseable response
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    panics: u64,
    leaked: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One benchmark cell: a fresh server on an ephemeral port, `clients`
/// threads each issuing `per_client` sequential requests, then a drain
/// that must come back clean.
fn run_tier(path: &Path, clients: usize, per_client: usize, cfg: &ServeConfig) -> TierResult {
    let listener = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
    let server = Server::start(Store::open(path).unwrap(), Box::new(listener), cfg.clone())
        .expect("server start");
    let addr = server.local_addr().to_string();

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            (0..per_client).map(|_| fetch(&addr)).collect::<Vec<_>>()
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut outcomes = Vec::with_capacity(clients * per_client);
    for h in handles {
        outcomes.extend(h.join().expect("client thread panicked"));
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = server.shutdown();

    let mut r = TierResult {
        total: outcomes.len(),
        panics: stats.panics,
        leaked: stats.in_flight + stats.queued,
        ..TierResult::default()
    };
    let mut served_lat = Vec::new();
    for (status, lat) in &outcomes {
        match status {
            200 => r.ok += 1,
            206 => r.degraded += 1,
            429 => r.shed += 1,
            503 => r.draining += 1,
            504 => r.overrun += 1,
            0 => r.closes += 1,
            _ => r.other += 1,
        }
        if *status == 200 || *status == 206 {
            served_lat.push(lat.as_secs_f64() * 1e6);
        }
    }
    served_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    r.p50_us = percentile(&served_lat, 0.50);
    r.p99_us = percentile(&served_lat, 0.99);
    r.qps = (r.total as u64 - r.closes) as f64 / wall;
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Quick mode shrinks both the offered load and the admission queue
    // so shedding still engages within a few seconds of CI time.
    let (tiers, total_requests, cfg) = if quick {
        let cfg = ServeConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        (vec![10usize, 50], 200usize, cfg)
    } else {
        (vec![10usize, 100, 1000], 2000usize, ServeConfig::default())
    };
    let top_tier = *tiers.last().unwrap();

    let dir = std::env::temp_dir().join("blazr-loadgen");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let intact = dir.join("intact.blzs");
    write_store(&intact);
    let degraded = dir.join("degraded.blzs");
    std::fs::copy(&intact, &degraded).unwrap();
    corrupt_chunk(&degraded, 3);

    let stores: [(&str, &PathBuf); 2] = [("intact", &intact), ("degraded", &degraded)];
    let mut bad = false;
    let mut json_cells = Vec::new();
    for (kind, path) in stores {
        for &clients in &tiers {
            let per_client = (total_requests / clients).max(1);
            let r = run_tier(path, clients, per_client, &cfg);
            println!(
                "loadgen store={kind} clients={clients} reqs={} ok={} degraded={} \
                 shed={} draining={} overrun={} closes={} p50_us={:.0} p99_us={:.0} \
                 qps={:.0}",
                r.total,
                r.ok,
                r.degraded,
                r.shed,
                r.draining,
                r.overrun,
                r.closes,
                r.p50_us,
                r.p99_us,
                r.qps
            );
            json_cells.push(format!(
                "    {{\"store\": \"{kind}\", \"clients\": {clients}, \"requests\": {}, \
                 \"ok\": {}, \"degraded\": {}, \"shed\": {}, \"draining\": {}, \
                 \"overrun\": {}, \"closes\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"qps\": {:.1}}}",
                r.total,
                r.ok,
                r.degraded,
                r.shed,
                r.draining,
                r.overrun,
                r.closes,
                r.p50_us,
                r.p99_us,
                r.qps
            ));

            // The failure contract, enforced per cell.
            if r.panics != 0 {
                eprintln!(
                    "FAIL: store={kind} clients={clients}: {} worker panics",
                    r.panics
                );
                bad = true;
            }
            if r.leaked != 0 {
                eprintln!(
                    "FAIL: store={kind} clients={clients}: {} leaked connections",
                    r.leaked
                );
                bad = true;
            }
            if r.overrun != 0 {
                eprintln!(
                    "FAIL: store={kind} clients={clients}: {} deadline overruns (504)",
                    r.overrun
                );
                bad = true;
            }
            if r.ok + r.degraded == 0 {
                eprintln!("FAIL: store={kind} clients={clients}: nothing was served");
                bad = true;
            }
            if kind == "intact" && r.degraded != 0 {
                eprintln!(
                    "FAIL: intact store answered {} degraded responses",
                    r.degraded
                );
                bad = true;
            }
            if kind == "degraded" && r.ok != 0 {
                eprintln!(
                    "FAIL: degraded store answered {} complete responses — quarantine lost",
                    r.ok
                );
                bad = true;
            }
            // Load shedding must engage when the offered concurrency
            // dwarfs the queue; its absence means admission control is
            // not actually bounding anything.
            if clients == top_tier && r.shed == 0 {
                eprintln!("FAIL: store={kind} clients={clients}: no 429s — shedding never engaged");
                bad = true;
            }
        }
    }

    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"workers\": {},\n  \"queue_capacity\": {},\n  \
         \"deadline_ms\": {},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        cfg.workers,
        cfg.queue_capacity,
        cfg.deadline.as_millis(),
        json_cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json");
    std::fs::write(out, json).expect("write BENCH_serve.json");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);

    if bad {
        std::process::exit(1);
    }
}
