//! Entropy-coding report: fixed-width vs rANS serialized sizes on the
//! dataset fields, plus serialize/deserialize throughput at 1024².
//!
//! Prints one `ratio field=… fixed=… rans=… win=…%` line per field (CI
//! greps these into the job summary), writes the machine-readable
//! `crates/bench/BENCH_codec.json`, and exits non-zero if the rANS
//! stream is ever larger than the fixed-width baseline — the regression
//! gate for the coder's size estimate.
//!
//! ```text
//! cargo run --release -p blazr-bench --bin codec_report
//! ```

use blazr::{compress, Coder, CompressedArray, Settings};
use blazr_datasets::fission::{series, FissionConfig};
use blazr_datasets::gradient::gradient;
use blazr_datasets::mri::MriDataset;
use blazr_datasets::shallow_water::{ShallowWater, SwConfig};
use blazr_tensor::NdArray;
use std::time::Instant;

struct Row {
    field: &'static str,
    elements: usize,
    fixed_bytes: usize,
    rans_bytes: usize,
    auto_coder: Coder,
}

impl Row {
    /// Percent size reduction of rANS against fixed-width.
    fn win(&self) -> f64 {
        100.0 * (1.0 - self.rans_bytes as f64 / self.fixed_bytes as f64)
    }
}

fn measure(field: &'static str, a: &NdArray<f64>, block: Vec<usize>) -> Row {
    let settings = Settings::new(block).unwrap();
    let c = compress::<f32, i16>(a, &settings).unwrap();
    let fixed = c.to_bytes_with(Coder::FixedWidth);
    let rans = c.to_bytes_with(Coder::Rans);
    // Both layouts must decode to the identical array — the report is
    // meaningless otherwise.
    assert_eq!(
        CompressedArray::<f32, i16>::from_bytes(&fixed).unwrap(),
        CompressedArray::<f32, i16>::from_bytes(&rans).unwrap(),
        "{field}: coders disagree"
    );
    Row {
        field,
        elements: a.len(),
        fixed_bytes: fixed.len(),
        rans_bytes: rans.len(),
        auto_coder: c.choose_coder(),
    }
}

/// Mean wall time of `f` over `reps` runs, in seconds.
fn time(reps: u32, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let fields: Vec<Row> = vec![
        measure("gradient", &gradient(&[512, 512]), vec![8, 8]),
        {
            let mut sw = ShallowWater::<f32>::new(SwConfig {
                nx: 96,
                ny: 96,
                ..SwConfig::default()
            });
            sw.run(200);
            measure("shallow_water", &sw.surface_height(), vec![8, 8])
        },
        {
            let frames = series(&FissionConfig::default());
            measure("fission", &frames[0].1, vec![8, 8, 8])
        },
        measure("mri", &MriDataset::small(3, 1, 48).volume(0), vec![4, 8, 8]),
    ];

    for r in &fields {
        println!(
            "ratio field={} elements={} fixed={} rans={} win={:.1}% auto={}",
            r.field,
            r.elements,
            r.fixed_bytes,
            r.rans_bytes,
            r.win(),
            r.auto_coder
        );
    }

    // Throughput at the acceptance geometry: 1024² f32/i16 on a smooth
    // field (the regime where the rANS decode actually runs).
    let n = 1024usize;
    let a = NdArray::from_fn(vec![n, n], |ix| {
        (ix[0] as f64 * 0.013).sin() + (ix[1] as f64 * 0.017).cos()
    });
    let settings = Settings::new(vec![8, 8]).unwrap();
    let c = compress::<f32, i16>(&a, &settings).unwrap();
    let fixed = c.to_bytes_with(Coder::FixedWidth);
    let rans = c.to_bytes_with(Coder::Rans);
    let melems = (n * n) as f64 / 1.0e6;
    let reps = 20;
    let enc_fixed = time(reps, || {
        std::hint::black_box(c.to_bytes_with(Coder::FixedWidth));
    });
    let enc_rans = time(reps, || {
        std::hint::black_box(c.to_bytes_with(Coder::Rans));
    });
    let dec_fixed = time(reps, || {
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&fixed).unwrap());
    });
    let dec_rans = time(reps, || {
        std::hint::black_box(CompressedArray::<f32, i16>::from_bytes(&rans).unwrap());
    });
    println!(
        "throughput op=serialize fixed={:.1}Melem/s rans={:.1}Melem/s",
        melems / enc_fixed,
        melems / enc_rans
    );
    println!(
        "throughput op=deserialize fixed={:.1}Melem/s rans={:.1}Melem/s ratio={:.2}",
        melems / dec_fixed,
        melems / dec_rans,
        dec_rans / dec_fixed
    );

    // Machine-readable record next to BASELINE.md.
    let mut json = String::from("{\n  \"fields\": [\n");
    for (i, r) in fields.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"field\": \"{}\", \"elements\": {}, \"fixed_bytes\": {}, \
             \"rans_bytes\": {}, \"win_pct\": {:.2}, \"auto_coder\": \"{}\"}}{}\n",
            r.field,
            r.elements,
            r.fixed_bytes,
            r.rans_bytes,
            r.win(),
            r.auto_coder,
            if i + 1 < fields.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"deserialize_1024sq_f32_i16\": {{\"fixed_melem_s\": {:.1}, \
         \"rans_melem_s\": {:.1}}}\n}}\n",
        melems / dec_fixed,
        melems / dec_rans
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_codec.json");
    std::fs::write(out, json).expect("write BENCH_codec.json");
    println!("wrote {out}");

    // Regression gate: rANS must never lose to its own fallback (the
    // Auto path would mask this by picking FixedWidth, so gate the
    // forced-rANS bytes), and the headline fields must keep a real win.
    let mut failed = false;
    for r in &fields {
        if r.rans_bytes > r.fixed_bytes {
            eprintln!(
                "FAIL: {}: rans {} > fixed {}",
                r.field, r.rans_bytes, r.fixed_bytes
            );
            failed = true;
        }
    }
    let big_wins = fields.iter().filter(|r| r.win() >= 15.0).count();
    if big_wins < 2 {
        eprintln!("FAIL: only {big_wins} field(s) with ≥15% entropy-coding win");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
