//! Store observability report: what zone-map pruning and lazy checksums
//! buy on the ramp dataset, measured through the telemetry layer.
//!
//! Builds a 16-chunk value-ramp store, runs a selective query both ways
//! (pruned and full-scan) with counters on, and prints one greppable
//! line per fact (CI lifts the `prune` and `checksum` lines into the job
//! summary). Writes the machine-readable `crates/bench/BENCH_store.json`
//! next to `BENCH_codec.json`, and exits non-zero if pruning stops
//! paying — the regression gate for the zone-map path.
//!
//! ```text
//! cargo run --release -p blazr-bench --bin store_report
//! ```

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
use blazr_telemetry as tel;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use std::time::Instant;

const CHUNKS: u64 = 16;
const ROWS: usize = 64;
const COLS: usize = 64;

fn main() {
    tel::set_mode(tel::Mode::Counters);

    let path = std::env::temp_dir().join("blazr-store-report.blzs");
    let mut w = StoreWriter::create(
        &path,
        Settings::new(vec![8, 8]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    for t in 0..CHUNKS {
        let frame = NdArray::from_fn(vec![ROWS, COLS], |_| t as f64 + rng.uniform_in(-0.4, 0.4));
        w.append(t, &frame).unwrap();
    }
    w.finish().unwrap();

    // Measure the query path alone: reset away the ingest-side counters.
    tel::registry().reset();

    let t0 = Instant::now();
    let store = Store::open(&path).unwrap();
    let open_s = t0.elapsed().as_secs_f64();

    // Chunk t holds values near t, so this selects ~1 of the 16 chunks
    // and the zone maps can prune the rest from the footer alone.
    let selective = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::ValueInRange { lo: 7.8, hi: 8.2 }),
        aggregate: Aggregate::Mean,
    };
    let pruned = store.query(&selective).unwrap();
    let scanned = store.query_full_scan(&selective).unwrap();
    assert_eq!(
        (pruned.value, pruned.matched_labels.clone()),
        (scanned.value, scanned.matched_labels.clone()),
        "pruned and full-scan queries disagree"
    );

    const REPS: u32 = 20;
    let t0 = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(store.query(&selective).unwrap());
    }
    let pruned_s = t0.elapsed().as_secs_f64() / REPS as f64;
    let t0 = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(store.query_full_scan(&selective).unwrap());
    }
    let full_s = t0.elapsed().as_secs_f64() / REPS as f64;

    let snap = tel::registry().snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let verified = c("store.checksum.verified");
    let failed = c("store.checksum.failed");

    println!(
        "open backing={} time_us={:.0}",
        store.backing_kind(),
        open_s * 1e6
    );
    println!(
        "prune ratio={:.3} pruned={} scanned={} in_range={} payload_bytes={}",
        pruned.prune_ratio(),
        pruned.chunks_pruned,
        pruned.chunks_scanned,
        pruned.chunks_in_range,
        pruned.payload_bytes_read
    );
    println!(
        "checksum verified={verified} failed={failed} chunk_reads={} bytes_read={}",
        c("store.chunk_reads"),
        c("store.bytes_read")
    );
    println!(
        "throughput query=selective pruned_us={:.0} full_scan_us={:.0} speedup={:.1}x",
        pruned_s * 1e6,
        full_s * 1e6,
        full_s / pruned_s
    );

    let json = format!(
        "{{\n  \"backing\": \"{}\",\n  \"chunks\": {CHUNKS},\n  \
         \"prune_ratio\": {:.4},\n  \"chunks_pruned\": {},\n  \
         \"chunks_scanned\": {},\n  \"payload_bytes_read\": {},\n  \
         \"checksum_verified\": {verified},\n  \"checksum_failed\": {failed},\n  \
         \"open_us\": {:.1},\n  \"selective_pruned_us\": {:.1},\n  \
         \"selective_full_scan_us\": {:.1}\n}}\n",
        store.backing_kind(),
        pruned.prune_ratio(),
        pruned.chunks_pruned,
        pruned.chunks_scanned,
        pruned.payload_bytes_read,
        open_s * 1e6,
        pruned_s * 1e6,
        full_s * 1e6,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_store.json");
    std::fs::write(out, json).expect("write BENCH_store.json");
    println!("wrote {out}");
    std::fs::remove_file(&path).ok();

    // Regression gates: the ramp must let zone maps prune most chunks,
    // lazy checksums must verify only what was read (and never fail),
    // and the pruned query must actually be cheaper in bytes.
    let mut bad = false;
    if pruned.prune_ratio() < 0.5 {
        eprintln!("FAIL: prune ratio {:.3} < 0.5", pruned.prune_ratio());
        bad = true;
    }
    if failed != 0 {
        eprintln!("FAIL: {failed} checksum verification failure(s)");
        bad = true;
    }
    if verified > CHUNKS {
        eprintln!(
            "FAIL: {verified} checksum verifications > {CHUNKS} chunks — the lazy latch broke"
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}
