//! Regenerates **Fig. 3(a–d)**: compression and decompression time versus
//! a ZFP-style fixed-rate codec, on the §IV-E constant-gradient arrays.
//!
//! ZFP rates 8/16/32 bits-per-scalar give ratios ≈ 8/4/2 from FP64; blazr
//! ratios ≈ 8 and ≈ 4 come from int8 and int16 bin indices (as the paper
//! states in the Fig. 3 caption). 2-D and 3-D, sizes 8..512 per side.
//!
//! Output: `results/fig3_zfp_times.csv`.

use blazr::{compress, CompressedArray, Settings};
use blazr_baselines::zfpoid::Zfpoid;
use blazr_bench::{sweep, time_median};
use blazr_datasets::gradient::hypercube;
use blazr_util::csv::{CsvField, CsvWriter};

fn main() {
    let mut csv = CsvWriter::with_header(&[
        "dims",
        "size",
        "codec",
        "setting",
        "ratio",
        "compress_s",
        "decompress_s",
    ]);
    println!("Fig. 3 — blazr vs zfpoid (seconds, median of 3)");

    for d in [2usize, 3] {
        let sizes: Vec<usize> = if d == 2 {
            sweep(&[8usize, 16, 32, 64, 128, 256, 512], &[8, 64])
        } else {
            sweep(&[8usize, 16, 32, 64, 128, 256], &[8, 32])
        };
        for &n in &sizes {
            let a = hypercube(n, d);
            let reps = 3;
            // zfpoid at the paper's three rates.
            for rate in [8u32, 16, 32] {
                let codec = Zfpoid::fixed_rate(rate);
                let t_c = time_median(reps, || codec.compress(&a));
                let bytes = codec.compress(&a);
                let t_d = time_median(reps, || Zfpoid::decompress(&bytes).unwrap());
                let ratio = (a.len() * 8) as f64 / bytes.len() as f64;
                println!(
                    "{d}D n={n:>4} zfpoid rate {rate:>2}: ratio {ratio:>6.2} comp {t_c:.3e} decomp {t_d:.3e}"
                );
                csv.push_row(&[
                    CsvField::Int(d as i64),
                    CsvField::Int(n as i64),
                    CsvField::Str("zfpoid"),
                    CsvField::Str(&format!("rate{rate}")),
                    CsvField::Float(ratio),
                    CsvField::Float(t_c),
                    CsvField::Float(t_d),
                ]);
            }
            // blazr with int8 (ratio ≈ 8) and int16 (ratio ≈ 4), block 4^d.
            let settings = Settings::new(vec![4; d]).unwrap();
            macro_rules! run_blazr {
                ($i:ty, $label:expr) => {{
                    let t_c =
                        time_median(reps, || compress::<f32, $i>(&a, &settings).unwrap());
                    let c: CompressedArray<f32, $i> = compress(&a, &settings).unwrap();
                    let t_d = time_median(reps, || c.decompress());
                    let ratio = c.compression_ratio();
                    println!(
                        "{}D n={n:>4} blazr {:>6}: ratio {ratio:>6.2} comp {t_c:.3e} decomp {t_d:.3e}",
                        d, $label
                    );
                    csv.push_row(&[
                        CsvField::Int(d as i64),
                        CsvField::Int(n as i64),
                        CsvField::Str("blazr"),
                        CsvField::Str($label),
                        CsvField::Float(ratio),
                        CsvField::Float(t_c),
                        CsvField::Float(t_d),
                    ]);
                }};
            }
            run_blazr!(i8, "int8");
            run_blazr!(i16, "int16");
        }
    }
    let path = blazr_bench::results_dir().join("fig3_zfp_times.csv");
    csv.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}
