//! Regenerates **Table I**: the compressed-space operation repertoire,
//! each operation's result type and error source — with the error *measured*
//! against the uncompressed reference on a random workload, demonstrating
//! the paper's "no additional error" column empirically.
//!
//! Output: `results/table1_operations.csv` and a console table.

use blazr::ops::SsimParams;
use blazr::{compress, Settings};
use blazr_tensor::{reduce, NdArray};
use blazr_util::csv::{CsvField, CsvWriter};
use blazr_util::rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7AB1E1);
    let shape = vec![64, 64];
    let a = NdArray::from_fn(shape.clone(), |_| rng.uniform());
    let b = NdArray::from_fn(shape.clone(), |_| rng.uniform());
    let settings = Settings::new(vec![8, 8]).unwrap();
    let ca = compress::<f64, i16>(&a, &settings).unwrap();
    let cb = compress::<f64, i16>(&b, &settings).unwrap();
    // Decompressed views: "no additional error" means the compressed-space
    // result equals the same operation on these, to fp precision.
    let da = ca.decompress();
    let db = cb.decompress();

    let mut rows: Vec<(&str, &str, &str, f64)> = Vec::new();

    let rel = |x: f64, r: f64| (x - r).abs() / r.abs().max(1e-12);

    // Negation: compare decompress(neg(c)) vs −decompress(c).
    let neg_err =
        blazr_util::stats::max_abs_diff(ca.negate().decompress().as_slice(), da.neg().as_slice());
    rows.push(("negation", "array", "none", neg_err));

    // Element-wise addition: error beyond compression = vs da + db.
    let add_err = blazr_util::stats::max_abs_diff(
        ca.add(&cb).unwrap().decompress().as_slice(),
        da.add(&db).as_slice(),
    );
    rows.push(("element-wise addition", "array", "rebinning", add_err));

    let adds_err = blazr_util::stats::max_abs_diff(
        ca.add_scalar(0.5).unwrap().decompress().as_slice(),
        da.add_scalar(0.5).as_slice(),
    );
    rows.push(("addition of a scalar", "array", "rebinning", adds_err));

    let muls_err = blazr_util::stats::max_abs_diff(
        ca.mul_scalar(-3.0).decompress().as_slice(),
        da.mul_scalar(-3.0).as_slice(),
    );
    rows.push(("multiplication by a scalar", "array", "none", muls_err));

    rows.push((
        "dot product",
        "scalar",
        "none",
        rel(ca.dot(&cb).unwrap(), reduce::dot(&da, &db)),
    ));
    rows.push((
        "mean",
        "scalar",
        "none",
        rel(ca.mean().unwrap(), reduce::mean(&da)),
    ));
    rows.push((
        "covariance",
        "scalar",
        "none",
        rel(ca.covariance(&cb).unwrap(), reduce::covariance(&da, &db)),
    ));
    rows.push((
        "variance",
        "scalar",
        "none",
        rel(ca.variance().unwrap(), reduce::variance(&da)),
    ));
    rows.push((
        "L2 norm",
        "scalar",
        "none",
        rel(ca.l2_norm(), reduce::norm_l2(&da)),
    ));
    rows.push((
        "cosine similarity",
        "scalar",
        "none",
        rel(
            ca.cosine_similarity(&cb).unwrap(),
            reduce::cosine_similarity(&da, &db),
        ),
    ));
    rows.push((
        "SSIM",
        "scalar",
        "none",
        rel(
            ca.ssim(&cb, &SsimParams::default()).unwrap(),
            reduce::ssim(&da, &db, &SsimParams::default()),
        ),
    ));
    // Approximate Wasserstein: error is a function of block size, so the
    // reference here is the exact distance on the *original* arrays.
    rows.push((
        "approx. Wasserstein distance",
        "scalar",
        "block size",
        (ca.wasserstein(&cb, 2.0).unwrap()
            - reduce::wasserstein_1d(a.as_slice(), b.as_slice(), 2.0))
        .abs(),
    ));

    let mut csv = CsvWriter::with_header(&[
        "operation",
        "result_type",
        "error_source",
        "measured_error_vs_reference",
    ]);
    println!("Table I — compressed-space operations (64×64, f64/int16, 8×8 blocks)");
    println!(
        "{:<30} {:>8} {:>12} {:>24}",
        "operation", "result", "error src", "measured err vs ref"
    );
    for (op, ty, src, err) in &rows {
        println!("{op:<30} {ty:>8} {src:>12} {err:>24.3e}");
        csv.push_row(&[
            CsvField::Str(op),
            CsvField::Str(ty),
            CsvField::Str(src),
            CsvField::Float(*err),
        ]);
    }
    let path = blazr_bench::results_dir().join("table1_operations.csv");
    csv.write_to(&path).expect("write results");
    println!("\nwrote {}", path.display());
}
