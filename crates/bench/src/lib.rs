//! Benchmark-harness support: timing, CSV output locations, and shared
//! workload construction for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md §3 for the index) and writes a CSV into
//! `results/`. Pass `--quick` to any binary to shrink the sweep for smoke
//! runs; the Criterion micro-benchmarks live in `benches/`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

/// Times `f`, returning the median of `reps` runs after one warmup (the
/// same protocol for every figure, so curves are comparable).
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps >= 1);
    // Warmup run (not recorded).
    let mut sink = Some(f());
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = Some(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Where result CSVs go: `<workspace>/results/`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// True if `--quick` was passed (smoke-test sweeps).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Chooses between the full and quick variant of a sweep.
pub fn sweep<T: Clone>(full: &[T], quick: &[T]) -> Vec<T> {
    if quick_mode() {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Renders an `f64` field as a PGM (portable graymap) image for the
/// Fig. 4 visual outputs; values are min–max scaled to 0..=255.
pub fn write_pgm(
    path: &std::path::Path,
    field: &blazr_tensor::NdArray<f64>,
) -> std::io::Result<()> {
    assert_eq!(field.ndim(), 2, "PGM needs a 2-D field");
    let (h, w) = (field.shape()[0], field.shape()[1]);
    let lo = field
        .as_slice()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = field
        .as_slice()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = format!("P2\n{w} {h}\n255\n");
    for r in 0..h {
        for c in 0..w {
            let v = ((field.get(&[r, c]) - lo) / span * 255.0).round() as u8;
            out.push_str(&format!("{v} "));
        }
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_is_positive_and_sane() {
        let t = time_median(3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(t > 0.0);
        assert!(t < 1.0);
    }

    #[test]
    fn results_dir_ends_with_results() {
        assert!(results_dir().ends_with("results"));
    }

    #[test]
    fn sweep_picks_variant() {
        // Not in quick mode inside tests (no --quick arg).
        let s = sweep(&[1, 2, 3], &[1]);
        assert_eq!(s.len(), 3);
    }
}
