//! Store benchmarks: ingest throughput, and what zone-map pruning buys a
//! selective query over a full scan.
//!
//! The dataset is a value ramp across chunks (chunk `t` holds values near
//! `t`), so a narrow `ValueInRange` predicate selects ~1 chunk and the
//! zone maps can prune the rest from the footer alone — the pruned query
//! should approach O(selected) while the full scan stays O(store).

#![allow(unsafe_code)] // the allocation-counting GlobalAlloc below

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
use blazr_telemetry as tel;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the zero-copy claim — a steady-state query
/// over a mapped store performs ~no per-chunk allocations — is asserted
/// here, not assumed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state allocation audit. After warm-up (checksum latches set,
/// decode scratch sized), a query on the mmap backing must cost a small
/// constant number of allocations — the result vectors, 3 as measured —
/// independent of chunk count and payload bytes. The pre-zero-copy read
/// path allocated per chunk per query (payload copy + decode buffers +
/// rANS table expansion): ~150 on this dataset.
fn assert_query_allocations(store: &Store, q: &Query) {
    // Feed the same counter to the telemetry layer, so `store.query`
    // records its own per-query allocation delta into the
    // `store.query.allocs` histogram — the audit below cross-checks the
    // library's self-report against the direct measurement.
    tel::set_alloc_probe(|| ALLOCS.load(Ordering::Relaxed));
    tel::set_mode(tel::Mode::Counters);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        // Warm-up also absorbs telemetry's one-time registration and
        // shard allocations, keeping them out of the steady-state count.
        store.query(q).unwrap();
        store.query(q).unwrap();
        tel::registry().reset();
        const RUNS: u64 = 32;
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..RUNS {
            std::hint::black_box(store.query(q).unwrap());
        }
        let per_query = (ALLOCS.load(Ordering::Relaxed) - before) / RUNS;
        let snap = tel::registry().snapshot();
        let self_report = snap
            .histogram("store.query.allocs")
            .map(|h| h.mean())
            .unwrap_or(f64::NAN);
        println!(
            "alloc-audit: {per_query} heap allocations per steady-state mapped query \
             (telemetry self-report: {self_report:.1})"
        );
        assert!(
            per_query <= 8,
            "steady-state mapped query made {per_query} allocations \
             (want ~3, the result vectors — the zero-copy path regressed)"
        );
        assert!(
            self_report.is_finite() && self_report <= per_query as f64,
            "store.query.allocs self-report ({self_report}) disagrees with \
             the direct audit ({per_query}) — the probe hookup broke"
        );
    });
    tel::set_mode(tel::Mode::Off);
}

/// Chunks per store and rows/cols per chunk (block-aligned so zone maps
/// stay tight; see `crates/store/tests/pruning.rs`).
const CHUNKS: u64 = 16;
const ROWS: usize = 64;
const COLS: usize = 64;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-bench");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn frames() -> Vec<(u64, NdArray<f64>)> {
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    (0..CHUNKS)
        .map(|t| {
            let f = NdArray::from_fn(vec![ROWS, COLS], |_| t as f64 + rng.uniform_in(-0.4, 0.4));
            (t, f)
        })
        .collect()
}

fn write_store(path: &PathBuf, data: &[(u64, NdArray<f64>)]) {
    let mut w = StoreWriter::create(
        path,
        Settings::new(vec![8, 8]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    for (label, frame) in data {
        w.append(*label, frame).unwrap();
    }
    w.finish().unwrap();
}

fn bench_ingest(c: &mut Criterion) {
    let data = frames();
    let elements = CHUNKS * (ROWS * COLS) as u64;
    let mut g = c.benchmark_group(format!("store-ingest/{CHUNKS}x{ROWS}x{COLS}-f32-i16"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements));
    g.bench_function("ingest", |b| {
        b.iter(|| write_store(&tmp("ingest.blzs"), &data))
    });
    g.finish();
}

/// Ingest with chunks big enough that compression dominates the
/// finish-time fsyncs and store bookkeeping — this number moves with codec
/// throughput, which is what `store ingest` inherits from the fused
/// compress pipeline.
fn bench_ingest_compress_bound(c: &mut Criterion) {
    const BIG_CHUNKS: u64 = 4;
    const BIG_N: usize = 256;
    let mut rng = Xoshiro256pp::seed_from_u64(78);
    let data: Vec<(u64, NdArray<f64>)> = (0..BIG_CHUNKS)
        .map(|t| {
            let f = NdArray::from_fn(vec![BIG_N, BIG_N], |_| t as f64 + rng.uniform_in(-0.4, 0.4));
            (t, f)
        })
        .collect();
    let elements = BIG_CHUNKS * (BIG_N * BIG_N) as u64;
    let mut g = c.benchmark_group(format!("store-ingest/{BIG_CHUNKS}x{BIG_N}x{BIG_N}-f32-i16"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements));
    g.bench_function("ingest", |b| {
        b.iter(|| write_store(&tmp("ingest-big.blzs"), &data))
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let path = tmp("query.blzs");
    write_store(&path, &frames());
    let store = Store::open(&path).unwrap();
    let elements = CHUNKS * (ROWS * COLS) as u64;

    // Selective predicate: only the chunks around value 8 can match.
    let selective = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::ValueInRange { lo: 7.8, hi: 8.2 }),
        aggregate: Aggregate::Mean,
    };
    assert!(
        store.query(&selective).unwrap().chunks_pruned >= CHUNKS as usize / 2,
        "ramp must let zone maps prune most chunks"
    );
    let unselective = Query::all(Aggregate::Variance);
    if store.backing_kind() == "mmap" {
        assert_query_allocations(&store, &unselective);
    }

    let mut g = c.benchmark_group(format!("store-query/{CHUNKS}x{ROWS}x{COLS}-f32-i16"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements));
    g.bench_function("selective-pruned", |b| {
        b.iter(|| store.query(&selective).unwrap())
    });
    g.bench_function("selective-full-scan", |b| {
        b.iter(|| store.query_full_scan(&selective).unwrap())
    });
    g.bench_function("aggregate-all", |b| {
        b.iter(|| store.query(&unselective).unwrap())
    });
    g.bench_function("open", |b| b.iter(|| Store::open(&path).unwrap()));
    g.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_ingest_compress_bound,
    bench_query
);
criterion_main!(benches);
