//! Criterion micro-benchmarks for every compressed-space operation
//! (Table I) at a fixed representative size.

use blazr::ops::SsimParams;
use blazr::{compress, CompressedArray, Settings};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Per-side extent of the N×N benchmark arrays; every op processes N²
/// uncompressed-equivalent elements per iteration — the same accounting
/// as the codec bench, so Melem/s lines are comparable across benches
/// and thread counts. Group names derive from this constant.
const N: usize = 256;

fn setup() -> (CompressedArray<f32, i16>, CompressedArray<f32, i16>) {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let a = NdArray::from_fn(vec![N, N], |_| rng.uniform());
    let b = NdArray::from_fn(vec![N, N], |_| rng.uniform());
    let settings = Settings::new(vec![8, 8]).unwrap();
    (
        compress(&a, &settings).unwrap(),
        compress(&b, &settings).unwrap(),
    )
}

fn bench_ops(c: &mut Criterion) {
    let (ca, cb) = setup();
    let mut g = c.benchmark_group(format!("ops/{N}x{N}-f32-i16"));
    g.sample_size(20);
    g.throughput(Throughput::Elements((N * N) as u64));
    g.bench_function("negate", |b| b.iter(|| ca.negate()));
    g.bench_function("add", |b| b.iter(|| ca.add(&cb).unwrap()));
    g.bench_function("sub", |b| b.iter(|| ca.sub(&cb).unwrap()));
    g.bench_function("add_scalar", |b| b.iter(|| ca.add_scalar(0.5).unwrap()));
    g.bench_function("mul_scalar", |b| b.iter(|| ca.mul_scalar(1.5)));
    g.bench_function("dot", |b| b.iter(|| ca.dot(&cb).unwrap()));
    g.bench_function("mean", |b| b.iter(|| ca.mean().unwrap()));
    g.bench_function("covariance", |b| b.iter(|| ca.covariance(&cb).unwrap()));
    g.bench_function("variance", |b| b.iter(|| ca.variance().unwrap()));
    g.bench_function("l2_norm", |b| b.iter(|| ca.l2_norm()));
    g.bench_function("cosine_similarity", |b| {
        b.iter(|| ca.cosine_similarity(&cb).unwrap())
    });
    g.bench_function("ssim", |b| {
        b.iter(|| ca.ssim(&cb, &SsimParams::default()).unwrap())
    });
    g.bench_function("wasserstein_p2", |b| {
        b.iter(|| ca.wasserstein(&cb, 2.0).unwrap())
    });
    g.finish();
}

fn bench_op_vs_decompress(c: &mut Criterion) {
    // The headline claim: operating compressed must beat
    // decompress-operate-recompress.
    let (ca, cb) = setup();
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut g = c.benchmark_group(format!("add-strategies/{N}x{N}"));
    g.sample_size(10);
    g.throughput(Throughput::Elements((N * N) as u64));
    g.bench_function("compressed_space", |b| b.iter(|| ca.add(&cb).unwrap()));
    g.bench_function("decompress_add_recompress", |b| {
        b.iter(|| {
            let da = ca.decompress();
            let db = cb.decompress();
            compress::<f32, i16>(&da.add(&db), &settings).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ops, bench_op_vs_decompress);
criterion_main!(benches);
