//! Criterion micro-benchmarks for the core codec: compression and
//! decompression across array sizes, precisions, and index widths, and
//! the fixed-width vs rANS serialization layouts.

use blazr::{compress, Coder, CompressedArray, Settings};
use blazr_precision::F16;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn random_2d(n: usize) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(n as u64);
    NdArray::from_fn(vec![n, n], |_| rng.uniform())
}

fn bench_compress_sizes(c: &mut Criterion) {
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut g = c.benchmark_group("compress/f32-i16");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let a = random_2d(n);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| compress::<f32, i16>(a, &settings).unwrap());
        });
    }
    g.finish();
}

fn bench_decompress_sizes(c: &mut Criterion) {
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut g = c.benchmark_group("decompress/f32-i16");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let a = random_2d(n);
        let compressed: CompressedArray<f32, i16> = compress(&a, &settings).unwrap();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &compressed, |b, c| {
            b.iter(|| c.decompress());
        });
    }
    g.finish();
}

fn bench_precisions(c: &mut Criterion) {
    let settings = Settings::new(vec![8, 8]).unwrap();
    let a = random_2d(256);
    let mut g = c.benchmark_group("compress/precision");
    g.sample_size(10);
    g.bench_function("f64", |b| {
        b.iter(|| compress::<f64, i16>(&a, &settings).unwrap())
    });
    g.bench_function("f32", |b| {
        b.iter(|| compress::<f32, i16>(&a, &settings).unwrap())
    });
    g.bench_function("f16-software", |b| {
        b.iter(|| compress::<F16, i16>(&a, &settings).unwrap())
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let settings = Settings::new(vec![8, 8]).unwrap();
    let a = random_2d(512);
    let compressed: CompressedArray<f32, i8> = compress(&a, &settings).unwrap();
    let bytes = compressed.to_bytes();
    let mut g = c.benchmark_group("serialize");
    g.sample_size(10);
    g.throughput(Throughput::Elements((512 * 512) as u64));
    g.bench_function("to_bytes", |b| b.iter(|| compressed.to_bytes()));
    g.bench_function("from_bytes", |b| {
        b.iter(|| CompressedArray::<f32, i8>::from_bytes(&bytes).unwrap())
    });
    g.finish();
}

/// A smooth field so the bin histogram is skewed and the rANS coder
/// does real entropy-coding work (random data would degenerate to the
/// fixed-width fallback regime).
fn smooth_2d(n: usize) -> NdArray<f64> {
    NdArray::from_fn(vec![n, n], |ix| {
        (ix[0] as f64 * 0.013).sin() + (ix[1] as f64 * 0.017).cos()
    })
}

fn bench_coders(c: &mut Criterion) {
    let settings = Settings::new(vec![8, 8]).unwrap();
    let n = 1024usize;
    let a = smooth_2d(n);
    let compressed: CompressedArray<f32, i16> = compress(&a, &settings).unwrap();
    let mut g = c.benchmark_group("serialize/coder");
    g.sample_size(10);
    g.throughput(Throughput::Elements((n * n) as u64));
    for coder in Coder::ALL {
        let bytes = compressed.to_bytes_with(coder);
        g.bench_function(BenchmarkId::new("to_bytes", coder), |b| {
            b.iter(|| compressed.to_bytes_with(coder));
        });
        g.bench_function(BenchmarkId::new("from_bytes", coder), |b| {
            b.iter(|| CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compress_sizes,
    bench_decompress_sizes,
    bench_precisions,
    bench_serialization,
    bench_coders
);
criterion_main!(benches);
