//! Criterion comparison of the four codecs in the repository: blazr,
//! Blaz, zfpoid (fixed-rate), and szoid (error-bounded), on the same
//! workload.

use blazr::{compress, Settings};
use blazr_baselines::blaz::BlazCompressed;
use blazr_baselines::szoid::Szoid;
use blazr_baselines::zfpoid::Zfpoid;
use blazr_datasets::gradient::hypercube;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_compress_comparison(c: &mut Criterion) {
    let a = hypercube(256, 2);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut g = c.benchmark_group("codec-comparison/compress-256x256");
    g.sample_size(10);
    g.bench_function("blazr-f64-i8", |b| {
        b.iter(|| compress::<f64, i8>(&a, &settings).unwrap())
    });
    g.bench_function("blaz", |b| b.iter(|| BlazCompressed::compress(&a)));
    g.bench_function("zfpoid-rate8", |b| {
        let codec = Zfpoid::fixed_rate(8);
        b.iter(|| codec.compress(&a))
    });
    g.bench_function("szoid-1e-3", |b| {
        let codec = Szoid::new(1e-3);
        b.iter(|| codec.compress(&a))
    });
    g.finish();
}

fn bench_decompress_comparison(c: &mut Criterion) {
    let a = hypercube(256, 2);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let blazr_c = compress::<f64, i8>(&a, &settings).unwrap();
    let blaz_c = BlazCompressed::compress(&a);
    let zfp_bytes = Zfpoid::fixed_rate(8).compress(&a);
    let (sz_bytes, _) = Szoid::new(1e-3).compress(&a);
    let mut g = c.benchmark_group("codec-comparison/decompress-256x256");
    g.sample_size(10);
    g.bench_function("blazr-f64-i8", |b| b.iter(|| blazr_c.decompress()));
    g.bench_function("blaz", |b| b.iter(|| blaz_c.decompress()));
    g.bench_function("zfpoid-rate8", |b| {
        b.iter(|| Zfpoid::decompress(&zfp_bytes).unwrap())
    });
    g.bench_function("szoid-1e-3", |b| {
        b.iter(|| Szoid::decompress(&sz_bytes).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compress_comparison,
    bench_decompress_comparison
);
criterion_main!(benches);
