//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * Rayon data-parallelism vs a single thread (substitution #1 — the
//!   GPU-replacement claim rests on this scaling),
//! * DCT vs Haar vs identity transform cost,
//! * block size impact on compression throughput.

use blazr::{compress, Settings, TransformKind};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn random_2d(n: usize) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    NdArray::from_fn(vec![n, n], |_| rng.uniform())
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let a = random_2d(1024);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut g = c.benchmark_group("ablation/parallelism-1024x1024");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 0] {
        let label = if threads == 0 {
            "all-cores".to_string()
        } else {
            format!("{threads}-thread")
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &a, |b, a| {
            b.iter(|| pool.install(|| compress::<f32, i16>(a, &settings).unwrap()));
        });
    }
    g.finish();
}

fn bench_transforms(c: &mut Criterion) {
    let a = random_2d(512);
    let mut g = c.benchmark_group("ablation/transform-512x512");
    g.sample_size(10);
    for kind in [
        TransformKind::Dct,
        TransformKind::Haar,
        TransformKind::Identity,
    ] {
        let settings = Settings::new(vec![8, 8]).unwrap().with_transform(kind);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &a, |b, a| {
            b.iter(|| compress::<f32, i16>(a, &settings).unwrap());
        });
    }
    g.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    let a = random_2d(512);
    let mut g = c.benchmark_group("ablation/block-size-512x512");
    g.sample_size(10);
    for bs in [4usize, 8, 16, 32] {
        let settings = Settings::new(vec![bs, bs]).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(bs), &a, |b, a| {
            b.iter(|| compress::<f32, i16>(a, &settings).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_serial,
    bench_transforms,
    bench_block_sizes
);
criterion_main!(benches);
