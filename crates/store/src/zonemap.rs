//! Per-chunk zone maps: compressed-space statistics plus error-model
//! bounds, the store's pruning index.
//!
//! A zone map is the classic min/max chunk summary of column stores
//! (InfluxDB's TSM index, Parquet row-group statistics), except every
//! number in it is computed **in compressed space** — the chunk is never
//! decompressed, at ingest or at query time. The statistics come from
//! [`blazr::ops::ChunkStats`] (DC coefficients and coefficient energy);
//! the paper's §IV-D binning error model ([`blazr::ops::ErrorBounds`])
//! rides along so that pruning decisions can be widened to stay
//! conservative with respect to the *original* (pre-compression) data.

use blazr::dynamic::DynCompressed;
use blazr::ops::{ChunkStats, ErrorBounds};
use blazr::{BinIndex, BlazError, CompressedArray};
use blazr_precision::StorableReal;

/// Compressed-space summary of one chunk: what the query planner reads
/// instead of the chunk payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Combinable statistics of the chunk's reconstruction.
    pub stats: ChunkStats,
    /// §IV-D binning error-model bounds relating the reconstruction to
    /// the original data.
    pub bounds: ErrorBounds,
}

impl ZoneMap {
    /// Builds the zone map of a typed compressed array, entirely in
    /// compressed space. Fails when the settings keep no DC coefficient
    /// (zone maps need block means).
    pub fn of<P: StorableReal, I: BinIndex>(c: &CompressedArray<P, I>) -> Result<Self, BlazError> {
        Ok(Self {
            stats: c.stats_partial()?,
            bounds: c.error_bounds(),
        })
    }

    /// Builds the zone map of a runtime-typed compressed array.
    pub fn of_dyn(c: &DynCompressed) -> Result<Self, BlazError> {
        Ok(Self {
            stats: c.stats_partial()?,
            bounds: c.error_bounds(),
        })
    }

    /// Chunk mean (compressed-space, padding-corrected).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// True if this chunk *may* contain original-data values in
    /// `[lo, hi]`: the reconstruction envelope, widened by the per-element
    /// error bound, overlaps the interval. A `false` is a safe prune — no
    /// element of the chunk (reconstructed or original) can fall inside.
    pub fn may_contain_value(&self, lo: f64, hi: f64) -> bool {
        self.stats.value_range_overlaps(lo, hi, self.bounds.linf)
    }

    /// True if this chunk's mean *may* lie in `[lo, hi]` once the mean
    /// error bound is allowed for.
    pub fn mean_may_be_in(&self, lo: f64, hi: f64) -> bool {
        let mb = self.bounds.mean_bound(self.stats.count);
        let m = self.mean();
        m - mb <= hi && m + mb >= lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr::{compress, Settings};
    use blazr_tensor::NdArray;
    use blazr_util::rng::Xoshiro256pp;

    fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn zone_map_never_excludes_original_values() {
        for seed in 0..4 {
            let a = random_array(vec![13, 17], seed); // padded shape
            let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
            let z = ZoneMap::of(&c).unwrap();
            for &x in a.as_slice() {
                assert!(z.may_contain_value(x, x), "original value {x} excluded");
            }
        }
    }

    #[test]
    fn disjoint_ranges_are_prunable() {
        let a = NdArray::from_fn(vec![8, 8], |_| 0.5);
        let c = compress::<f64, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let z = ZoneMap::of(&c).unwrap();
        assert!(z.may_contain_value(0.4, 0.6));
        assert!(!z.may_contain_value(100.0, 200.0));
        assert!(!z.may_contain_value(-200.0, -100.0));
        assert!(z.mean_may_be_in(0.45, 0.55));
        assert!(!z.mean_may_be_in(10.0, 20.0));
    }

    #[test]
    fn typed_and_dyn_agree() {
        let a = random_array(vec![12, 12], 9);
        let s = Settings::new(vec![4, 4]).unwrap();
        let c = compress::<f32, i16>(&a, &s).unwrap();
        let d = blazr::dynamic::from_bytes_dyn(&c.to_bytes()).unwrap();
        assert_eq!(ZoneMap::of(&c).unwrap(), ZoneMap::of_dyn(&d).unwrap());
    }
}
