//! The single-file on-disk format.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ "BLZSTOR1"                               header magic, 8 B   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ chunk 0 payload          §IV-C stream (core::serialize)      │
//! │ chunk 1 payload                                              │
//! │ …                                                            │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer:                                                      │
//! │   u64 chunk_count                                            │
//! │   per chunk (88 B):                                          │
//! │     u64 label │ u64 offset │ u64 len │ u64 fnv1a64(payload)  │
//! │     u64 count │ f64 sum │ f64 sum_sq                         │
//! │     f64 min_bound │ f64 max_bound │ f64 linf │ f64 l2        │
//! ├──────────────────────────────────────────────────────────────┤
//! │ trailer (24 B):                                              │
//! │   u64 footer_len │ u64 fnv1a64(footer) │ "BLZSIDX1"          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything is little-endian and fixed-width, so the footer is seekable
//! from the end of the file without touching any payload: read the
//! trailer, verify the checksum, decode `chunk_count` index entries.
//! Appending is a pure forward write; the index is written once at
//! `finish()` (the append-only, footer-indexed shape of TSM/Parquet
//! files). Floats are stored via `to_bits`, so zone maps round-trip
//! bit-exactly and a store written twice from the same data is
//! byte-identical at any thread count.

use crate::error::StoreError;
use crate::zonemap::ZoneMap;
use blazr::ops::{ChunkStats, ErrorBounds};

/// Leading file magic.
pub const HEADER_MAGIC: &[u8; 8] = b"BLZSTOR1";
/// Trailing file magic.
pub const TRAILER_MAGIC: &[u8; 8] = b"BLZSIDX1";
/// Bytes of the fixed-size trailer: footer length, checksum, magic.
pub const TRAILER_LEN: usize = 24;
/// Bytes per index entry in the footer.
pub const ENTRY_LEN: usize = 88;
/// Smallest possible store file: header + empty footer + trailer.
pub const MIN_FILE_LEN: usize = HEADER_MAGIC.len() + 8 + TRAILER_LEN;

/// One chunk's footer record: where its payload lives and its zone map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    /// Caller-chosen chunk label (time step, row offset, …); strictly
    /// increasing across the store.
    pub label: u64,
    /// Absolute file offset of the chunk payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a64 checksum of the payload bytes, verified on every chunk
    /// read — footer corruption is caught by the trailer checksum,
    /// payload corruption by this one.
    pub payload_sum: u64,
    /// The chunk's compressed-space summary.
    pub zone: ZoneMap,
}

/// FNV-1a 64-bit checksum (the footer is small; this is corruption
/// detection, not cryptography).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Encodes the footer (chunk count + index entries), without the trailer.
pub fn encode_footer(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * ENTRY_LEN);
    push_u64(&mut out, entries.len() as u64);
    for e in entries {
        push_u64(&mut out, e.label);
        push_u64(&mut out, e.offset);
        push_u64(&mut out, e.len);
        push_u64(&mut out, e.payload_sum);
        push_u64(&mut out, e.zone.stats.count);
        push_f64(&mut out, e.zone.stats.sum);
        push_f64(&mut out, e.zone.stats.sum_sq);
        push_f64(&mut out, e.zone.stats.min_bound);
        push_f64(&mut out, e.zone.stats.max_bound);
        push_f64(&mut out, e.zone.bounds.linf);
        push_f64(&mut out, e.zone.bounds.l2);
    }
    out
}

/// Encodes the trailer for a footer of the given bytes.
pub fn encode_trailer(footer: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRAILER_LEN);
    push_u64(&mut out, footer.len() as u64);
    push_u64(&mut out, fnv1a64(footer));
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().expect("8 B"));
        self.pos += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

/// Decodes and validates a footer produced by [`encode_footer`].
/// `payload_end` is the file offset where chunk payloads must end (the
/// footer's own start); offsets and lengths are checked against it.
pub fn decode_footer(footer: &[u8], payload_end: u64) -> Result<Vec<IndexEntry>, StoreError> {
    let corrupt = |msg: String| StoreError::Corrupt(msg);
    if footer.len() < 8 {
        return Err(corrupt("footer shorter than its chunk count".into()));
    }
    let mut c = Cursor {
        bytes: footer,
        pos: 0,
    };
    let count = c.u64();
    let expect = 8 + (count as usize).saturating_mul(ENTRY_LEN);
    if footer.len() != expect {
        return Err(corrupt(format!(
            "footer holds {} bytes but {count} chunks need {expect}",
            footer.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut watermark = HEADER_MAGIC.len() as u64;
    let mut last_label = None;
    for i in 0..count {
        let label = c.u64();
        let offset = c.u64();
        let len = c.u64();
        let payload_sum = c.u64();
        if let Some(last) = last_label {
            if label <= last {
                return Err(corrupt(format!(
                    "chunk {i}: label {label} not after {last}"
                )));
            }
        }
        last_label = Some(label);
        if offset < watermark || offset.checked_add(len).is_none_or(|end| end > payload_end) {
            return Err(corrupt(format!(
                "chunk {i}: payload [{offset}, {offset}+{len}) outside [{watermark}, {payload_end})"
            )));
        }
        watermark = offset + len;
        let stats = ChunkStats {
            count: c.u64(),
            sum: c.f64(),
            sum_sq: c.f64(),
            min_bound: c.f64(),
            max_bound: c.f64(),
        };
        let bounds = ErrorBounds {
            linf: c.f64(),
            l2: c.f64(),
        };
        entries.push(IndexEntry {
            label,
            offset,
            len,
            payload_sum,
            zone: ZoneMap { stats, bounds },
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: u64, offset: u64, len: u64) -> IndexEntry {
        IndexEntry {
            label,
            offset,
            len,
            payload_sum: 0x1234_5678_9abc_def0,
            zone: ZoneMap {
                stats: ChunkStats {
                    count: 64,
                    sum: 1.5,
                    sum_sq: 2.5,
                    min_bound: -0.25,
                    max_bound: 0.75,
                },
                bounds: ErrorBounds {
                    linf: 1e-4,
                    l2: 1e-3,
                },
            },
        }
    }

    #[test]
    fn footer_roundtrips_bit_exactly() {
        let entries = vec![entry(0, 8, 100), entry(10, 108, 50), entry(11, 158, 1)];
        let footer = encode_footer(&entries);
        assert_eq!(footer.len(), 8 + 3 * ENTRY_LEN);
        let back = decode_footer(&footer, 159).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_footer_roundtrips() {
        let footer = encode_footer(&[]);
        assert_eq!(decode_footer(&footer, 8).unwrap(), vec![]);
    }

    #[test]
    fn label_order_and_offsets_are_validated() {
        // Non-increasing labels.
        let footer = encode_footer(&[entry(5, 8, 10), entry(5, 18, 10)]);
        assert!(matches!(
            decode_footer(&footer, 28),
            Err(StoreError::Corrupt(_))
        ));
        // Payload reaching past the footer start.
        let footer = encode_footer(&[entry(0, 8, 100)]);
        assert!(decode_footer(&footer, 50).is_err());
        // Payload under the header.
        let footer = encode_footer(&[entry(0, 0, 4)]);
        assert!(decode_footer(&footer, 50).is_err());
        // Overlapping payloads.
        let footer = encode_footer(&[entry(0, 8, 10), entry(1, 12, 10)]);
        assert!(decode_footer(&footer, 50).is_err());
        // Truncated / padded footers.
        let good = encode_footer(&[entry(0, 8, 10)]);
        assert!(decode_footer(&good[..good.len() - 1], 50).is_err());
        assert!(decode_footer(&[], 50).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let footer = encode_footer(&[entry(0, 8, 10)]);
        let h = fnv1a64(&footer);
        for byte in [0, 10, footer.len() - 1] {
            let mut bad = footer.clone();
            bad[byte] ^= 0x01;
            assert_ne!(fnv1a64(&bad), h, "flip at {byte} not detected");
        }
    }

    #[test]
    fn trailer_layout() {
        let footer = encode_footer(&[]);
        let t = encode_trailer(&footer);
        assert_eq!(t.len(), TRAILER_LEN);
        assert_eq!(&t[16..], TRAILER_MAGIC);
        assert_eq!(u64::from_le_bytes(t[..8].try_into().unwrap()), 8);
    }
}
