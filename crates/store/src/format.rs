//! The single-file on-disk format.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ "BLZSTOR3"                               header magic, 8 B   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ chunk 0 preamble (32 B):                                     │
//! │   "BLZCHNK1" │ u64 label │ u64 len │ u64 fnv1a64(payload)    │
//! │ chunk 0 payload          §IV-C stream (core::serialize)      │
//! │ (zero padding to the next 8-byte boundary)                   │
//! │ chunk 1 preamble │ chunk 1 payload                           │
//! │ …                                                            │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer:                                                      │
//! │   u64 chunk_count                                            │
//! │   per chunk (96 B):                                          │
//! │     u64 label │ u64 offset │ u64 len │ u64 fnv1a64(payload)  │
//! │     u64 coder tag                                            │
//! │     u64 count │ f64 sum │ f64 sum_sq                         │
//! │     f64 min_bound │ f64 max_bound │ f64 linf │ f64 l2        │
//! ├──────────────────────────────────────────────────────────────┤
//! │ trailer (24 B):                                              │
//! │   u64 footer_len │ u64 fnv1a64(footer) │ "BLZSIDX1"          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything is little-endian and fixed-width, so the footer is seekable
//! from the end of the file without touching any payload: read the
//! trailer, verify the checksum, decode `chunk_count` index entries.
//! Appending is a pure forward write; the index is written once at
//! `finish()` (the append-only, footer-indexed shape of TSM/Parquet
//! files). Floats are stored via `to_bits`, so zone maps round-trip
//! bit-exactly and a store written twice from the same data is
//! byte-identical at any thread count.
//!
//! **Alignment.** v2 writers pad the gap before each chunk payload with
//! zero bytes so every payload starts on a [`CHUNK_ALIGN`]-byte boundary
//! (the header is 8 bytes, so chunk 0 is aligned for free). The footer's
//! `offset`/`len` describe only the payload — never the padding — and
//! [`decode_footer`] accepts such forward gaps (offsets may jump ahead of
//! the previous payload's end, just never behind it), so padded and
//! legacy back-to-back files read identically. Aligned payloads let the
//! mmap-backed read path hand out naturally aligned borrowed slices.
//!
//! **Version history.** Format v1 (`"BLZSTOR1"`) held 88-byte entries with
//! no coder tag, its chunk payloads use the v1 stream layout (no coder
//! byte, fixed-width indices), and payloads are packed back-to-back. v2
//! (`"BLZSTOR2"`) adds a per-chunk entropy coder tag to the footer,
//! stores v2 streams, and 8-byte-aligns payloads. v3 (`"BLZSTOR3"`)
//! keeps the v2 footer and stream layouts but writes a 32-byte
//! **chunk preamble** immediately before each payload, making every
//! chunk self-describing on disk. The header magic is the version
//! switch: [`crate::Store::open`] reads all three, new files are always
//! written v3.
//!
//! **Salvage scan invariants.** The preamble is what makes a v3 store
//! recoverable when its footer or trailer is damaged
//! ([`crate::Store::open_salvage`]): [`scan_salvage`] walks the file and
//! rebuilds an index from preambles alone. The scan relies on exactly
//! these invariants, which the writer maintains:
//!
//! 1. **Alignment** — every preamble starts on a [`CHUNK_ALIGN`]-byte
//!    boundary (the writer zero-pads after each payload), so the scan
//!    only probes aligned offsets and resynchronizes after damage by
//!    stepping [`CHUNK_ALIGN`] bytes at a time.
//! 2. **Chunk magic** — a preamble begins with [`CHUNK_MAGIC`]
//!    (`"BLZCHNK1"`), which the payload encoding cannot emit at an
//!    aligned position by construction of the scan (a match inside a
//!    payload is additionally rejected by the checksum test below).
//! 3. **Self-describing headers** — the preamble carries the chunk
//!    label, payload length, and payload FNV-1a64 checksum. A candidate
//!    is accepted only if the length lands inside the file, the checksum
//!    over those bytes matches, and the label extends the
//!    strictly-increasing label sequence; everything else is skipped as
//!    damage. Footer `offset`/`len` continue to describe only the
//!    payload, so preambles live in the forward gaps that
//!    [`decode_footer`] already tolerates, and v1/v2 readers of the
//!    footer path need no changes.

use crate::error::StoreError;
use crate::zonemap::ZoneMap;
use blazr::ops::{ChunkStats, ErrorBounds};
use blazr::Coder;

/// Leading file magic of the current (v3) format.
pub const HEADER_MAGIC: &[u8; 8] = b"BLZSTOR3";
/// Leading file magic of the v2 format (still readable).
pub const HEADER_MAGIC_V2: &[u8; 8] = b"BLZSTOR2";
/// Leading file magic of the legacy v1 format (still readable).
pub const HEADER_MAGIC_V1: &[u8; 8] = b"BLZSTOR1";
/// Magic leading every v3 chunk preamble.
pub const CHUNK_MAGIC: &[u8; 8] = b"BLZCHNK1";
/// Bytes of a v3 chunk preamble: magic, label, payload len, payload
/// checksum. A multiple of [`CHUNK_ALIGN`], so payloads stay aligned.
pub const PREAMBLE_LEN: usize = 32;
/// Trailing file magic (unchanged across versions).
pub const TRAILER_MAGIC: &[u8; 8] = b"BLZSIDX1";
/// Bytes of the fixed-size trailer: footer length, checksum, magic.
pub const TRAILER_LEN: usize = 24;
/// Bytes per index entry in a v2 footer.
pub const ENTRY_LEN: usize = 96;
/// Bytes per index entry in a v1 footer (no coder tag).
pub const ENTRY_LEN_V1: usize = 88;
/// Smallest possible store file: header + empty footer + trailer.
pub const MIN_FILE_LEN: usize = HEADER_MAGIC.len() + 8 + TRAILER_LEN;
/// Alignment (bytes) of every chunk payload in a v2 file. The writer
/// pads with zeros up to this boundary before each payload; the pad
/// bytes are invisible to the footer (offsets/lengths cover payloads
/// only) and tolerated by [`decode_footer`] as forward gaps.
pub const CHUNK_ALIGN: u64 = 8;

/// On-disk format version, decided by the header magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatVersion {
    /// `"BLZSTOR1"`: 88-byte entries, v1 chunk streams, fixed-width only.
    V1,
    /// `"BLZSTOR2"`: 96-byte entries with a coder tag, v2 chunk streams.
    V2,
    /// `"BLZSTOR3"`: v2 footer and streams plus per-chunk preambles.
    V3,
}

impl FormatVersion {
    /// The version a header magic denotes, if it is one we read.
    pub fn from_magic(magic: &[u8]) -> Option<Self> {
        match magic {
            m if m == HEADER_MAGIC => Some(FormatVersion::V3),
            m if m == HEADER_MAGIC_V2 => Some(FormatVersion::V2),
            m if m == HEADER_MAGIC_V1 => Some(FormatVersion::V1),
            _ => None,
        }
    }

    /// Bytes per footer index entry in this version.
    pub fn entry_len(self) -> usize {
        match self {
            FormatVersion::V1 => ENTRY_LEN_V1,
            FormatVersion::V2 | FormatVersion::V3 => ENTRY_LEN,
        }
    }
}

/// One chunk's footer record: where its payload lives and its zone map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    /// Caller-chosen chunk label (time step, row offset, …); strictly
    /// increasing across the store.
    pub label: u64,
    /// Absolute file offset of the chunk payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a64 checksum of the payload bytes, verified on every chunk
    /// read — footer corruption is caught by the trailer checksum,
    /// payload corruption by this one.
    pub payload_sum: u64,
    /// The entropy coder of the chunk's index payload (v2 footers echo
    /// the stream's own coder tag so `store stat` can report per-coder
    /// counts without reading payloads; always fixed-width in v1 files).
    pub coder: Coder,
    /// The chunk's compressed-space summary.
    pub zone: ZoneMap,
}

/// FNV-1a 64-bit checksum (the footer is small; this is corruption
/// detection, not cryptography).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_entry_common(out: &mut Vec<u8>, e: &IndexEntry) {
    push_u64(out, e.zone.stats.count);
    push_f64(out, e.zone.stats.sum);
    push_f64(out, e.zone.stats.sum_sq);
    push_f64(out, e.zone.stats.min_bound);
    push_f64(out, e.zone.stats.max_bound);
    push_f64(out, e.zone.bounds.linf);
    push_f64(out, e.zone.bounds.l2);
}

/// Encodes a v2 footer (chunk count + index entries), without the trailer.
pub fn encode_footer(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * ENTRY_LEN);
    push_u64(&mut out, entries.len() as u64);
    for e in entries {
        push_u64(&mut out, e.label);
        push_u64(&mut out, e.offset);
        push_u64(&mut out, e.len);
        push_u64(&mut out, e.payload_sum);
        push_u64(&mut out, e.coder.tag() as u64);
        push_entry_common(&mut out, e);
    }
    out
}

/// Encodes a legacy v1 footer (no coder tags). Kept public so the
/// durability suite can fabricate v1 files; the writer never uses it.
pub fn encode_footer_v1(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * ENTRY_LEN_V1);
    push_u64(&mut out, entries.len() as u64);
    for e in entries {
        push_u64(&mut out, e.label);
        push_u64(&mut out, e.offset);
        push_u64(&mut out, e.len);
        push_u64(&mut out, e.payload_sum);
        push_entry_common(&mut out, e);
    }
    out
}

/// Encodes the trailer for a footer of the given bytes.
pub fn encode_trailer(footer: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRAILER_LEN);
    push_u64(&mut out, footer.len() as u64);
    push_u64(&mut out, fnv1a64(footer));
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

/// Encodes a v3 chunk preamble for `payload` (checksum computed here).
pub fn encode_preamble(label: u64, payload: &[u8]) -> [u8; PREAMBLE_LEN] {
    let mut out = [0u8; PREAMBLE_LEN];
    out[..8].copy_from_slice(CHUNK_MAGIC);
    out[8..16].copy_from_slice(&label.to_le_bytes());
    out[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    out[24..32].copy_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Decodes a v3 chunk preamble: `(label, payload_len, payload_sum)`.
/// `None` when the bytes are too short or the magic is wrong — a
/// checksum over the payload is the caller's job ([`scan_salvage`] does
/// it against the file).
pub fn decode_preamble(bytes: &[u8]) -> Option<(u64, u64, u64)> {
    if bytes.len() < PREAMBLE_LEN || &bytes[..8] != CHUNK_MAGIC {
        return None;
    }
    let u = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 B"));
    Some((u(8), u(16), u(24)))
}

/// One chunk recovered by [`scan_salvage`]: the slice of the scanned
/// bytes holding a payload whose preamble and checksum both verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageHit {
    /// The chunk label from its preamble.
    pub label: u64,
    /// Absolute offset of the payload in the scanned bytes.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a64 of the payload, re-verified against the bytes.
    pub payload_sum: u64,
}

/// Scans a (possibly damaged) v3 file for salvageable chunks, ignoring
/// footer and trailer entirely. Returns the verified hits in file order
/// plus the number of *damaged candidates* — aligned positions that
/// carried [`CHUNK_MAGIC`] but failed validation (bad length, checksum
/// mismatch, or out-of-order label). See the module docs for the
/// invariants the scan relies on.
pub fn scan_salvage(bytes: &[u8]) -> (Vec<SalvageHit>, u64) {
    let mut hits = Vec::new();
    let mut damaged = 0u64;
    let mut last_label = None;
    let align = CHUNK_ALIGN as usize;
    let mut pos = HEADER_MAGIC.len();
    while pos + PREAMBLE_LEN <= bytes.len() {
        let Some((label, len, sum)) = decode_preamble(&bytes[pos..]) else {
            pos += align;
            continue;
        };
        let payload_at = pos + PREAMBLE_LEN;
        let valid = usize::try_from(len)
            .ok()
            .and_then(|len| len.checked_add(payload_at))
            .filter(|&end| end <= bytes.len())
            .map(|end| fnv1a64(&bytes[payload_at..end]) == sum)
            .unwrap_or(false)
            && last_label.is_none_or(|last| label > last);
        if !valid {
            damaged += 1;
            pos += align;
            continue;
        }
        last_label = Some(label);
        hits.push(SalvageHit {
            label,
            offset: payload_at as u64,
            len,
            payload_sum: sum,
        });
        // Jump past the payload and its zero padding to the next
        // aligned position — the only place the next preamble can be.
        let end = payload_at + len as usize;
        pos = end + (align - end % align) % align;
    }
    (hits, damaged)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().expect("8 B"));
        self.pos += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

/// Decodes and validates a footer produced by [`encode_footer`] (or, for
/// [`FormatVersion::V1`], by [`encode_footer_v1`]). `payload_end` is the
/// file offset where chunk payloads must end (the footer's own start);
/// offsets and lengths are checked against it.
pub fn decode_footer(
    footer: &[u8],
    payload_end: u64,
    version: FormatVersion,
) -> Result<Vec<IndexEntry>, StoreError> {
    let corrupt = |msg: String| StoreError::Corrupt(msg);
    if footer.len() < 8 {
        return Err(corrupt("footer shorter than its chunk count".into()));
    }
    let mut c = Cursor {
        bytes: footer,
        pos: 0,
    };
    let count = c.u64();
    let expect = 8 + (count as usize).saturating_mul(version.entry_len());
    if footer.len() != expect {
        return Err(corrupt(format!(
            "footer holds {} bytes but {count} chunks need {expect}",
            footer.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut watermark = HEADER_MAGIC.len() as u64;
    let mut last_label = None;
    for i in 0..count {
        let label = c.u64();
        let offset = c.u64();
        let len = c.u64();
        let payload_sum = c.u64();
        let coder = match version {
            FormatVersion::V1 => Coder::FixedWidth,
            FormatVersion::V2 | FormatVersion::V3 => {
                let tag = c.u64();
                u8::try_from(tag)
                    .ok()
                    .and_then(Coder::from_tag)
                    .ok_or_else(|| corrupt(format!("chunk {i}: unknown coder tag {tag}")))?
            }
        };
        if let Some(last) = last_label {
            if label <= last {
                return Err(corrupt(format!(
                    "chunk {i}: label {label} not after {last}"
                )));
            }
        }
        last_label = Some(label);
        if offset < watermark || offset.checked_add(len).is_none_or(|end| end > payload_end) {
            return Err(corrupt(format!(
                "chunk {i}: payload [{offset}, {offset}+{len}) outside [{watermark}, {payload_end})"
            )));
        }
        watermark = offset + len;
        let stats = ChunkStats {
            count: c.u64(),
            sum: c.f64(),
            sum_sq: c.f64(),
            min_bound: c.f64(),
            max_bound: c.f64(),
        };
        let bounds = ErrorBounds {
            linf: c.f64(),
            l2: c.f64(),
        };
        entries.push(IndexEntry {
            label,
            offset,
            len,
            payload_sum,
            coder,
            zone: ZoneMap { stats, bounds },
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: u64, offset: u64, len: u64) -> IndexEntry {
        IndexEntry {
            label,
            offset,
            len,
            payload_sum: 0x1234_5678_9abc_def0,
            coder: Coder::Rans,
            zone: ZoneMap {
                stats: ChunkStats {
                    count: 64,
                    sum: 1.5,
                    sum_sq: 2.5,
                    min_bound: -0.25,
                    max_bound: 0.75,
                },
                bounds: ErrorBounds {
                    linf: 1e-4,
                    l2: 1e-3,
                },
            },
        }
    }

    #[test]
    fn footer_roundtrips_bit_exactly() {
        let entries = vec![entry(0, 8, 100), entry(10, 108, 50), entry(11, 158, 1)];
        let footer = encode_footer(&entries);
        assert_eq!(footer.len(), 8 + 3 * ENTRY_LEN);
        let back = decode_footer(&footer, 159, FormatVersion::V2).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn v1_footer_roundtrips_with_fixed_width_coder() {
        let entries = vec![entry(0, 8, 100), entry(10, 108, 50)];
        let footer = encode_footer_v1(&entries);
        assert_eq!(footer.len(), 8 + 2 * ENTRY_LEN_V1);
        let back = decode_footer(&footer, 158, FormatVersion::V1).unwrap();
        // Everything but the coder (which v1 cannot record) survives.
        for (b, e) in back.iter().zip(&entries) {
            assert_eq!(b.coder, Coder::FixedWidth);
            assert_eq!((b.label, b.offset, b.len), (e.label, e.offset, e.len));
            assert_eq!(b.zone, e.zone);
        }
        // A v1 footer is not a valid v2 footer (size mismatch).
        assert!(decode_footer(&footer, 158, FormatVersion::V2).is_err());
    }

    #[test]
    fn unknown_coder_tag_rejected() {
        let mut footer = encode_footer(&[entry(0, 8, 10)]);
        // The coder tag is the fifth u64 of the entry.
        footer[8 + 4 * 8] = 0x77;
        assert!(matches!(
            decode_footer(&footer, 50, FormatVersion::V2),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_footer_roundtrips() {
        let footer = encode_footer(&[]);
        assert_eq!(
            decode_footer(&footer, 8, FormatVersion::V2).unwrap(),
            vec![]
        );
    }

    #[test]
    fn format_version_from_magic() {
        assert_eq!(
            FormatVersion::from_magic(HEADER_MAGIC),
            Some(FormatVersion::V3)
        );
        assert_eq!(
            FormatVersion::from_magic(HEADER_MAGIC_V2),
            Some(FormatVersion::V2)
        );
        assert_eq!(
            FormatVersion::from_magic(HEADER_MAGIC_V1),
            Some(FormatVersion::V1)
        );
        assert_eq!(FormatVersion::from_magic(b"BLZSTOR9"), None);
    }

    #[test]
    fn preamble_roundtrips() {
        let payload = b"some chunk payload bytes";
        let p = encode_preamble(42, payload);
        assert_eq!(p.len(), PREAMBLE_LEN);
        let (label, len, sum) = decode_preamble(&p).unwrap();
        assert_eq!(label, 42);
        assert_eq!(len, payload.len() as u64);
        assert_eq!(sum, fnv1a64(payload));
        let mut bad = p;
        bad[0] ^= 1;
        assert!(decode_preamble(&bad).is_none());
        assert!(decode_preamble(&p[..PREAMBLE_LEN - 1]).is_none());
    }

    /// Header + preambled payloads (with alignment padding), no footer.
    fn fabricate_v3_body(chunks: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(HEADER_MAGIC);
        for &(label, payload) in chunks {
            out.extend_from_slice(&encode_preamble(label, payload));
            out.extend_from_slice(payload);
            while out.len() % CHUNK_ALIGN as usize != 0 {
                out.push(0);
            }
        }
        out
    }

    #[test]
    fn salvage_scan_recovers_all_intact_chunks() {
        let chunks: Vec<(u64, &[u8])> = vec![(0, b"first"), (3, b"second chunk"), (9, b"x")];
        let mut bytes = fabricate_v3_body(&chunks);
        // Garbage where the footer would be must not confuse the scan.
        bytes.extend_from_slice(&[0xAA; 40]);
        let (hits, damaged) = scan_salvage(&bytes);
        assert_eq!(damaged, 0);
        assert_eq!(hits.len(), 3);
        for (hit, (label, payload)) in hits.iter().zip(&chunks) {
            assert_eq!(hit.label, *label);
            assert_eq!(hit.len, payload.len() as u64);
            let at = hit.offset as usize;
            assert_eq!(&bytes[at..at + payload.len()], *payload);
        }
    }

    #[test]
    fn salvage_scan_skips_damaged_chunks_and_resyncs() {
        let chunks: Vec<(u64, &[u8])> =
            vec![(0, b"first payload"), (1, b"second payload"), (2, b"third")];
        let mut bytes = fabricate_v3_body(&chunks);
        // Flip one byte inside the second payload: its checksum fails,
        // but the scan must resynchronize and still find the third.
        let (clean, _) = scan_salvage(&bytes);
        bytes[clean[1].offset as usize + 3] ^= 0x40;
        let (hits, damaged) = scan_salvage(&bytes);
        assert_eq!(damaged, 1);
        assert_eq!(hits.iter().map(|h| h.label).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn salvage_scan_rejects_out_of_order_labels() {
        let bytes = fabricate_v3_body(&[(5, b"later"), (5, b"duplicate label")]);
        let (hits, damaged) = scan_salvage(&bytes);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].label, 5);
        assert_eq!(damaged, 1);
    }

    #[test]
    fn salvage_scan_ignores_unaligned_magic() {
        // CHUNK_MAGIC appearing *inside* a payload at an unaligned
        // offset is never probed.
        let mut payload = Vec::from(&b"abc"[..]);
        payload.extend_from_slice(CHUNK_MAGIC);
        payload.extend_from_slice(b"tail");
        let bytes = fabricate_v3_body(&[(1, &payload)]);
        let (hits, damaged) = scan_salvage(&bytes);
        assert_eq!(hits.len(), 1);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn label_order_and_offsets_are_validated() {
        let dec = |footer: &[u8], end| decode_footer(footer, end, FormatVersion::V2);
        // Non-increasing labels.
        let footer = encode_footer(&[entry(5, 8, 10), entry(5, 18, 10)]);
        assert!(matches!(dec(&footer, 28), Err(StoreError::Corrupt(_))));
        // Payload reaching past the footer start.
        let footer = encode_footer(&[entry(0, 8, 100)]);
        assert!(dec(&footer, 50).is_err());
        // Payload under the header.
        let footer = encode_footer(&[entry(0, 0, 4)]);
        assert!(dec(&footer, 50).is_err());
        // Overlapping payloads.
        let footer = encode_footer(&[entry(0, 8, 10), entry(1, 12, 10)]);
        assert!(dec(&footer, 50).is_err());
        // Truncated / padded footers.
        let good = encode_footer(&[entry(0, 8, 10)]);
        assert!(dec(&good[..good.len() - 1], 50).is_err());
        assert!(dec(&[], 50).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let footer = encode_footer(&[entry(0, 8, 10)]);
        let h = fnv1a64(&footer);
        for byte in [0, 10, footer.len() - 1] {
            let mut bad = footer.clone();
            bad[byte] ^= 0x01;
            assert_ne!(fnv1a64(&bad), h, "flip at {byte} not detected");
        }
    }

    #[test]
    fn trailer_layout() {
        let footer = encode_footer(&[]);
        let t = encode_trailer(&footer);
        assert_eq!(t.len(), TRAILER_LEN);
        assert_eq!(&t[16..], TRAILER_MAGIC);
        assert_eq!(u64::from_le_bytes(t[..8].try_into().unwrap()), 8);
    }
}
