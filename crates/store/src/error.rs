//! Error type for the chunked store.

use blazr::BlazError;
use std::fmt;

/// Everything that can go wrong creating, reading, or querying a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The file is not a store, is truncated, or fails its checksum.
    Corrupt(String),
    /// A caller-supplied argument was rejected (out-of-order label,
    /// mismatched settings, empty query range, …).
    InvalidArgument(String),
    /// The caller's cancellation check fired mid-query (a server
    /// deadline, typically). Not evidence of data damage: degraded
    /// queries propagate it instead of quarantining chunks.
    Cancelled(String),
    /// A codec-level operation on a chunk failed.
    Blaz(BlazError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
            StoreError::Blaz(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<BlazError> for StoreError {
    fn from(e: BlazError) -> Self {
        StoreError::Blaz(e)
    }
}

/// Attaches a path context to an `io::Error`.
pub(crate) fn io_err(what: &str, path: &std::path::Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("cannot {what} {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StoreError::Corrupt("bad trailer".into())
            .to_string()
            .contains("bad trailer"));
        assert!(StoreError::InvalidArgument("label 3 after 5".into())
            .to_string()
            .contains("label 3"));
        let wrapped = StoreError::from(BlazError::SettingsMismatch);
        assert!(wrapped.to_string().contains("settings"));
    }
}
