//! Read-only store handle: the index in memory, chunk decode on demand,
//! and the paper's §VI series analyses running against on-disk data.
//!
//! # Zero-copy reads
//!
//! [`Store::open`] memory-maps the file when the platform supports it
//! (see [`blazr_util::mmap`]), so chunk accesses borrow payload bytes
//! straight out of the page cache — no per-query copies. The map stays
//! valid for the handle's lifetime because ingest is atomic-rename (see
//! [`crate::StoreWriter`]): a re-ingest replaces the *directory entry*,
//! never the mapped inode's bytes. Platforms without the mmap shim, and
//! [`Store::open_unmapped`], fall back to positional reads into a
//! per-thread scratch buffer.
//!
//! # Panics vs errors
//!
//! Every way bytes can be wrong — truncation, bit rot, hostile footers,
//! type mismatches — is a [`StoreError`], never a panic. Accessors that
//! take a chunk index come in two flavors: the bare ones
//! ([`Store::chunk_coder`], [`Store::zone_map`]) index like slices and
//! panic on out-of-range (a caller bug), while the `try_` variants
//! ([`Store::try_chunk_coder`], [`Store::try_zone_map`]) return
//! [`StoreError::InvalidArgument`] for callers holding untrusted indices
//! (the CLI uses these).

use crate::error::{io_err, StoreError};
use crate::format::{
    decode_footer, fnv1a64, scan_salvage, FormatVersion, IndexEntry, HEADER_MAGIC, HEADER_MAGIC_V1,
    HEADER_MAGIC_V2, MIN_FILE_LEN, TRAILER_LEN, TRAILER_MAGIC,
};
use crate::writer::StoreWriter;
use crate::zonemap::ZoneMap;
use blazr::dynamic::{from_bytes_dyn_into, from_bytes_dyn_v1_into, DynCompressed};
use blazr::serialize::{StreamInfo, StreamVersion};
use blazr::series::CompressedSeries;
use blazr::{BinIndex, Coder, CompressedArray, IndexType, ScalarType};
use blazr_precision::StorableReal;
use blazr_telemetry as tel;
use blazr_util::mmap::Mmap;
use blazr_util::vfs::{OsVfs, Vfs, VfsFile};
use rayon::prelude::*;
use std::cell::Cell;
use std::io;
use std::ops::Range;
use std::path::Path;
use std::sync::OnceLock;

std::thread_local! {
    /// Reusable read buffer for the positional-read backing, so repeated
    /// chunk fetches on one thread do not allocate per access. `Cell`
    /// (take/put-back), not `RefCell`: the buffer is out of the slot for
    /// the duration of one read, which stays correct even if the access
    /// callback re-enters the store (the re-entrant read just takes a
    /// fresh buffer).
    static READ_SCRATCH: Cell<Vec<u8>> = const { Cell::new(Vec::new()) };
}

/// Where an open store's bytes live.
#[derive(Debug)]
enum Backing {
    /// The whole file in a caller-provided buffer ([`Store::from_bytes`]).
    Mem(Vec<u8>),
    /// Read-only memory map: chunk accesses borrow the mapped pages
    /// directly. Safe against concurrent re-ingest because the writer
    /// replaces the path by rename — the mapped inode is never truncated
    /// or rewritten.
    Map(Mmap),
    /// Positional-read fallback ([`Store::open_unmapped`], or platforms
    /// without the mmap shim). Reads share no cursor, so parallel chunk
    /// scans are race-free. The handle is whatever [`Vfs`] opened the
    /// store, so fault injection reaches every read on this path.
    File(Box<dyn VfsFile>, u64),
}

/// The transient-read retry policy, shared with the serve crate's
/// transport path so both sides of the system classify transient vs
/// permanent I/O errors identically (see [`blazr_util::retry`]). Reads
/// on the positional backing run under this policy; telemetry counts
/// the retries (`store.io.retries`) and exhausted budgets
/// (`store.io.giveups`).
pub use blazr_util::retry::RetryPolicy;

/// `read_exact_at` under `retry`'s budget, feeding the retry accounting
/// into the store's metric namespace.
fn read_exact_at_retry(
    retry: &RetryPolicy,
    file: &dyn VfsFile,
    buf: &mut [u8],
    offset: u64,
) -> io::Result<()> {
    let out = retry.run(|| file.read_exact_at(buf, offset));
    if out.retries > 0 {
        tel::count!("store.io.retries", u64::from(out.retries));
    }
    if out.gave_up {
        tel::count!("store.io.giveups", 1);
    }
    out.result
}

/// Checked sub-slice of `bytes`: `offset as usize + len` can wrap on a
/// hostile offset (a debug-profile overflow panic was a real bug here),
/// so the range is built with checked arithmetic and any failure is
/// reported as corruption.
fn slice_range(bytes: &[u8], offset: u64, len: usize) -> Result<&[u8], StoreError> {
    usize::try_from(offset)
        .ok()
        .and_then(|start| Some(start..start.checked_add(len)?))
        .and_then(|range| bytes.get(range))
        .ok_or_else(|| {
            StoreError::Corrupt(format!(
                "read [{offset}, {offset}+{len}) beyond {} bytes",
                bytes.len()
            ))
        })
}

impl Backing {
    fn len(&self) -> u64 {
        match self {
            Backing::Mem(v) => v.len() as u64,
            Backing::Map(m) => m.len() as u64,
            Backing::File(_, len) => *len,
        }
    }

    /// The whole backing as one addressable slice — the zero-copy path.
    /// `None` for the positional-read backing.
    fn as_slice(&self) -> Option<&[u8]> {
        match self {
            Backing::Mem(v) => Some(v),
            Backing::Map(m) => Some(m),
            Backing::File(..) => None,
        }
    }

    /// Reads exactly `len` bytes at `offset` into a fresh buffer — used
    /// for the O(index) open-time reads, where allocation is fine.
    fn read_at(&self, offset: u64, len: usize, retry: &RetryPolicy) -> Result<Vec<u8>, StoreError> {
        match self {
            Backing::Mem(_) | Backing::Map(_) => {
                let all = self.as_slice().expect("Mem/Map backings are addressable");
                slice_range(all, offset, len).map(<[u8]>::to_vec)
            }
            Backing::File(f, _) => {
                let mut buf = vec![0u8; len];
                read_exact_at_retry(retry, f.as_ref(), &mut buf, offset).map_err(|e| {
                    StoreError::Io(format!("cannot read [{offset}, {offset}+{len}): {e}"))
                })?;
                Ok(buf)
            }
        }
    }
}

/// An open store: the decoded footer index plus a handle to the payload
/// bytes. Only the footer is read at open time — O(index), not O(file) —
/// and chunk payloads are fetched, checksum-verified (lazily, once per
/// chunk), and decoded per access, so queries that prune on zone maps
/// never touch the pruned payloads' bytes at all.
#[derive(Debug)]
pub struct Store {
    backing: Backing,
    entries: Vec<IndexEntry>,
    /// Lazy checksum latches, one per chunk: `None` until the chunk's
    /// first byte access computes the FNV sum, then the latched verdict.
    /// A failed verdict is permanent — every later access keeps erroring.
    checks: Vec<OnceLock<bool>>,
    version: FormatVersion,
    retry: RetryPolicy,
    /// True when [`Store::open`] asked for a memory map and the platform
    /// refused with an error (not merely "unsupported") — the store then
    /// runs on positional reads. Surfaced by `store stat`.
    mmap_fell_back: bool,
}

/// What [`Store::open_salvage`] managed to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageReport {
    /// True when the footer and trailer validated and no scan was needed
    /// (the salvage open degenerated to a normal open).
    pub footer_intact: bool,
    /// Chunks recovered into the rebuilt index.
    pub recovered: usize,
    /// Damaged candidates: aligned chunk preambles that failed
    /// validation (bad length, checksum mismatch, out-of-order label),
    /// plus salvage hits whose payloads would not decode.
    pub damaged: u64,
    /// Bytes the salvage scan walked (0 when the footer was intact).
    pub scanned_bytes: u64,
}

impl Store {
    /// Opens and validates a store file. Reads the header, trailer, and
    /// footer only — O(index), not O(file). The payload region is
    /// memory-mapped where the platform supports it, so subsequent chunk
    /// accesses are zero-copy; otherwise (and whenever the kernel refuses
    /// the mapping) the store falls back to positional reads, exactly as
    /// [`Store::open_unmapped`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(&OsVfs, path)
    }

    /// [`Store::open`] through an explicit [`Vfs`] (fault injection,
    /// alternative backends). When the map attempt *errors* — as opposed
    /// to the platform not supporting maps — the open falls back to
    /// positional reads instead of failing, counts
    /// `store.open.mmap_fallback`, and flags the handle
    /// ([`Store::mmap_fell_back`]).
    pub fn open_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let _span = tel::span!("store.open");
        let path = path.as_ref();
        let file = vfs.open(path).map_err(|e| io_err("open", path, e))?;
        match file.mmap() {
            Ok(Some(map)) => Self::load(Backing::Map(map), false),
            Ok(None) => Self::positional(file, path, false),
            Err(_) => {
                tel::count!("store.open.mmap_fallback", 1);
                Self::positional(file, path, true)
            }
        }
    }

    /// Opens a store with positional reads instead of a memory map: each
    /// chunk access reads its payload into a per-thread scratch buffer.
    /// This is [`Store::open`]'s fallback path, exposed for callers that
    /// must not map the file (and for testing both paths).
    pub fn open_unmapped(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_unmapped_with(&OsVfs, path)
    }

    /// [`Store::open_unmapped`] through an explicit [`Vfs`].
    pub fn open_unmapped_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let _span = tel::span!("store.open");
        let path = path.as_ref();
        let file = vfs.open(path).map_err(|e| io_err("open", path, e))?;
        Self::positional(file, path, false)
    }

    fn positional(
        file: Box<dyn VfsFile>,
        path: &Path,
        fell_back: bool,
    ) -> Result<Self, StoreError> {
        let len = file.len().map_err(|e| io_err("stat", path, e))?;
        Self::load(Backing::File(file, len), fell_back)
    }

    /// Opens a store from its raw bytes (validates header, trailer,
    /// checksum, and index geometry — never panics on corrupt input).
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, StoreError> {
        let _span = tel::span!("store.open");
        Self::load(Backing::Mem(data), false)
    }

    /// Reads and validates header magic, trailer, and footer — the
    /// normal open path, borrowed out of `load` so the salvage path can
    /// try it first and keep the backing when it fails.
    fn read_index(
        backing: &Backing,
        retry: &RetryPolicy,
    ) -> Result<(FormatVersion, Vec<IndexEntry>), StoreError> {
        let corrupt = |msg: String| StoreError::Corrupt(msg);
        let file_len = backing.len();
        if file_len < MIN_FILE_LEN as u64 {
            return Err(corrupt(format!(
                "file holds {file_len} bytes; a store needs at least {MIN_FILE_LEN}"
            )));
        }
        let magic = backing.read_at(0, HEADER_MAGIC.len(), retry)?;
        let Some(version) = FormatVersion::from_magic(&magic) else {
            return Err(corrupt("missing BLZSTOR header magic".into()));
        };
        let trailer = backing.read_at(file_len - TRAILER_LEN as u64, TRAILER_LEN, retry)?;
        if &trailer[16..] != TRAILER_MAGIC {
            return Err(corrupt(
                "missing BLZSIDX1 trailer magic (truncated or unfinished store?)".into(),
            ));
        }
        let footer_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 B"));
        let stored_sum = u64::from_le_bytes(trailer[8..16].try_into().expect("8 B"));
        let Some(footer_start) = file_len
            .checked_sub(TRAILER_LEN as u64)
            .and_then(|v| v.checked_sub(footer_len))
            .filter(|&v| v >= HEADER_MAGIC.len() as u64)
        else {
            return Err(corrupt(format!(
                "footer length {footer_len} does not fit in a {file_len}-byte file"
            )));
        };
        let footer = backing.read_at(footer_start, footer_len as usize, retry)?;
        let actual_sum = fnv1a64(&footer);
        if actual_sum != stored_sum {
            return Err(corrupt(format!(
                "footer checksum mismatch: stored {stored_sum:#018x}, computed {actual_sum:#018x}"
            )));
        }
        let entries = decode_footer(&footer, footer_start, version)?;
        Ok((version, entries))
    }

    fn load(backing: Backing, mmap_fell_back: bool) -> Result<Self, StoreError> {
        let retry = RetryPolicy::default();
        let (version, entries) = Self::read_index(&backing, &retry)?;
        let checks = entries.iter().map(|_| OnceLock::new()).collect();
        if tel::counters_enabled() {
            match &backing {
                Backing::Mem(_) => tel::counter!("store.open.memory").add(1),
                Backing::Map(_) => tel::counter!("store.open.mmap").add(1),
                Backing::File(..) => tel::counter!("store.open.file").add(1),
            }
        }
        Ok(Self {
            backing,
            entries,
            checks,
            version,
            retry,
            mmap_fell_back,
        })
    }

    /// The on-disk format version this store was written with. New files
    /// are always v3; v1 and v2 files stay readable.
    pub fn format_version(&self) -> FormatVersion {
        self.version
    }

    /// True when [`Store::open`]'s memory-map attempt failed with an
    /// error and the store quietly fell back to positional reads.
    pub fn mmap_fell_back(&self) -> bool {
        self.mmap_fell_back
    }

    /// Replaces the transient-read retry policy (defaults to 3 attempts
    /// with 100 µs base backoff).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Opens a store, rebuilding the index from chunk preambles when the
    /// footer or trailer is damaged. An intact file opens exactly as
    /// [`Store::open`] (with `footer_intact` set in the report); a
    /// damaged v3 file is scanned for aligned, checksum-valid,
    /// self-describing chunk preambles (see the salvage invariants in
    /// [`crate::format`]) and every verified chunk is recovered, in label
    /// order, with its zone map recomputed from the payload. Only
    /// [`StoreError::Corrupt`] triggers the scan — I/O errors propagate —
    /// and a file that yields no salvageable chunk (including any v1/v2
    /// file, which has no preambles) stays `Corrupt`.
    pub fn open_salvage(path: impl AsRef<Path>) -> Result<(Self, SalvageReport), StoreError> {
        Self::open_salvage_with(&OsVfs, path)
    }

    /// [`Store::open_salvage`] through an explicit [`Vfs`].
    pub fn open_salvage_with(
        vfs: &dyn Vfs,
        path: impl AsRef<Path>,
    ) -> Result<(Self, SalvageReport), StoreError> {
        let _span = tel::span!("store.salvage");
        let path = path.as_ref();
        let file = vfs.open(path).map_err(|e| io_err("open", path, e))?;
        let (backing, fell_back) = match file.mmap() {
            Ok(Some(map)) => (Backing::Map(map), false),
            Ok(None) | Err(_) => {
                let len = file.len().map_err(|e| io_err("stat", path, e))?;
                (Backing::File(file, len), false)
            }
        };
        Self::salvage(backing, fell_back)
    }

    /// [`Store::open_salvage`] over raw bytes.
    pub fn salvage_from_bytes(data: Vec<u8>) -> Result<(Self, SalvageReport), StoreError> {
        let _span = tel::span!("store.salvage");
        Self::salvage(Backing::Mem(data), false)
    }

    fn salvage(
        backing: Backing,
        mmap_fell_back: bool,
    ) -> Result<(Self, SalvageReport), StoreError> {
        let retry = RetryPolicy::default();
        match Self::read_index(&backing, &retry) {
            Ok(_) => {
                let store = Self::load(backing, mmap_fell_back)?;
                let report = SalvageReport {
                    footer_intact: true,
                    recovered: store.len(),
                    damaged: 0,
                    scanned_bytes: 0,
                };
                return Ok((store, report));
            }
            // Corruption is what salvage exists for; anything else (I/O
            // failure, bad argument) is not evidence of damage.
            Err(StoreError::Corrupt(_)) => {}
            Err(e) => return Err(e),
        }
        // A v1/v2 file has a valid magic but no preambles: scanning it
        // can only find garbage, so say what is actually wrong.
        let file_len = backing.len();
        if let Ok(magic) = backing.read_at(0, HEADER_MAGIC.len(), &retry) {
            if magic == HEADER_MAGIC_V1 || magic == HEADER_MAGIC_V2 {
                return Err(StoreError::Corrupt(
                    "damaged pre-v3 store: no chunk preambles to salvage from".into(),
                ));
            }
        }
        // Scan the whole file. The addressable backings scan in place;
        // the positional backing reads the file once, with retries.
        let len = usize::try_from(file_len).map_err(|_| {
            StoreError::Corrupt(format!("file length {file_len} exceeds the address space"))
        })?;
        let owned;
        let bytes: &[u8] = match backing.as_slice() {
            Some(all) => all,
            None => {
                owned = backing.read_at(0, len, &retry)?;
                &owned
            }
        };
        let (hits, mut damaged) = scan_salvage(bytes);
        let mut entries = Vec::with_capacity(hits.len());
        let mut slot = None;
        for hit in &hits {
            let len = usize::try_from(hit.len).map_err(|_| {
                StoreError::Corrupt(format!(
                    "salvaged chunk length {} exceeds the address space",
                    hit.len
                ))
            })?;
            let payload = slice_range(bytes, hit.offset, len)?;
            // The checksum already passed; decoding validates the stream
            // itself and recomputes the zone map the footer would have
            // held (bit-identical by the determinism contract).
            let entry = from_bytes_dyn_into(payload, &mut slot)
                .map_err(StoreError::from)
                .and_then(|()| {
                    let c = slot.as_ref().expect("decode fills the slot");
                    let zone = ZoneMap::of_dyn(c)?;
                    let coder = blazr::serialize::peek_coder(payload).ok_or_else(|| {
                        StoreError::Corrupt("salvaged chunk has no readable coder tag".into())
                    })?;
                    Ok(IndexEntry {
                        label: hit.label,
                        offset: hit.offset,
                        len: hit.len,
                        payload_sum: hit.payload_sum,
                        coder,
                        zone,
                    })
                });
            match entry {
                Ok(e) => entries.push(e),
                // Checksum-valid but undecodable: quarantine, keep going.
                Err(_) => damaged += 1,
            }
        }
        if entries.is_empty() {
            return Err(StoreError::Corrupt(format!(
                "no salvageable chunks in {file_len} bytes ({damaged} damaged candidates)"
            )));
        }
        tel::count!("store.salvage.recovered", entries.len() as u64);
        tel::count!("store.salvage.damaged", damaged);
        let report = SalvageReport {
            footer_intact: false,
            recovered: entries.len(),
            damaged,
            scanned_bytes: file_len,
        };
        // Every salvaged payload was just hashed against its preamble:
        // pre-latch the per-chunk checksum verdicts.
        let checks: Vec<OnceLock<bool>> = entries
            .iter()
            .map(|_| {
                let lock = OnceLock::new();
                lock.set(true).expect("freshly created latch");
                lock
            })
            .collect();
        let store = Self {
            backing,
            entries,
            checks,
            version: FormatVersion::V3,
            retry,
            mmap_fell_back,
        };
        Ok((store, report))
    }

    /// How this store's bytes are accessed: `"mmap"` (zero-copy mapped
    /// file), `"memory"` ([`Store::from_bytes`]), or `"file"` (positional
    /// reads).
    pub fn backing_kind(&self) -> &'static str {
        match self.backing {
            Backing::Mem(_) => "memory",
            Backing::Map(_) => "mmap",
            Backing::File(..) => "file",
        }
    }

    /// The stream layout version of this store's chunk payloads.
    fn stream_version(&self) -> StreamVersion {
        match self.version {
            FormatVersion::V1 => StreamVersion::V1,
            FormatVersion::V2 | FormatVersion::V3 => StreamVersion::V2,
        }
    }

    /// The index entry for chunk `i`, or [`StoreError::InvalidArgument`]
    /// when `i` is out of range.
    fn try_entry(&self, i: usize) -> Result<&IndexEntry, StoreError> {
        self.entries.get(i).ok_or_else(|| {
            StoreError::InvalidArgument(format!(
                "chunk index {i} out of range ({} chunks)",
                self.entries.len()
            ))
        })
    }

    /// The entropy coder of chunk `i`'s index payload, from the footer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`, like slice indexing. Callers holding
    /// untrusted indices want [`Store::try_chunk_coder`].
    pub fn chunk_coder(&self, i: usize) -> Coder {
        self.entries[i].coder
    }

    /// Checked [`Store::chunk_coder`]: an out-of-range index is an
    /// [`StoreError::InvalidArgument`], not a panic.
    pub fn try_chunk_coder(&self, i: usize) -> Result<Coder, StoreError> {
        Ok(self.try_entry(i)?.coder)
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a store with no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index entries, in label order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The chunk labels, in order.
    pub fn labels(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.label).collect()
    }

    /// The zone map of chunk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`, like slice indexing. Callers holding
    /// untrusted indices want [`Store::try_zone_map`].
    pub fn zone_map(&self, i: usize) -> &ZoneMap {
        &self.entries[i].zone
    }

    /// Checked [`Store::zone_map`]: an out-of-range index is an
    /// [`StoreError::InvalidArgument`], not a panic.
    pub fn try_zone_map(&self, i: usize) -> Result<&ZoneMap, StoreError> {
        Ok(&self.try_entry(i)?.zone)
    }

    /// Total bytes of chunk payloads (excludes header, footer, trailer,
    /// and any alignment padding between payloads).
    pub fn payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Whole-file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.backing.len()
    }

    /// Lazily verifies chunk `i`'s payload checksum: the FNV sum is
    /// computed on the chunk's first byte access and the verdict latched,
    /// so steady-state reads skip the hash entirely. On the zero-copy
    /// backings every access sees the same bytes, so one verification
    /// covers all of them; the positional-read backing re-reads bytes per
    /// access but still hashes only the first (the file is immutable
    /// under the atomic-rename ingest contract).
    fn verify_payload(&self, i: usize, bytes: &[u8]) -> Result<(), StoreError> {
        let e = &self.entries[i];
        let ok = *self.checks[i].get_or_init(|| {
            // Counts hashes actually computed, not latched re-checks —
            // the metric that shows the lazy latch working.
            tel::count!("store.checksum.verified", 1);
            fnv1a64(bytes) == e.payload_sum
        });
        if ok {
            Ok(())
        } else {
            tel::count!("store.checksum.failed", 1);
            Err(StoreError::Corrupt(format!(
                "chunk {i} (label {}): payload checksum mismatch (stored {:#018x})",
                e.label, e.payload_sum
            )))
        }
    }

    /// Runs `f` over chunk `i`'s raw payload bytes, checksum-verified
    /// (lazily — see the struct docs). On the mmap and in-memory backings
    /// the slice borrows the backing directly: no bytes are copied. On
    /// the positional-read backing the payload lands in a per-thread
    /// scratch buffer that is reused across accesses.
    pub fn with_chunk_bytes<R>(
        &self,
        i: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, StoreError> {
        let e = self.try_entry(i)?;
        let len = usize::try_from(e.len).map_err(|_| {
            StoreError::Corrupt(format!(
                "chunk {i}: length {} exceeds the address space",
                e.len
            ))
        })?;
        tel::count!("store.chunk_reads", 1);
        tel::count!("store.bytes_read", len as u64);
        if let Some(all) = self.backing.as_slice() {
            let bytes = slice_range(all, e.offset, len)?;
            self.verify_payload(i, bytes)?;
            return Ok(f(bytes));
        }
        let Backing::File(file, _) = &self.backing else {
            unreachable!("non-addressable backings are positional-read files")
        };
        let mut buf = READ_SCRATCH.take();
        buf.clear();
        buf.resize(len, 0);
        let read =
            read_exact_at_retry(&self.retry, file.as_ref(), &mut buf, e.offset).map_err(|err| {
                StoreError::Io(format!(
                    "cannot read [{}, {}+{len}): {err}",
                    e.offset, e.offset
                ))
            });
        let out = read
            .and_then(|()| self.verify_payload(i, &buf))
            .map(|()| f(&buf));
        READ_SCRATCH.set(buf);
        out
    }

    /// Raw serialized bytes of chunk `i` as an owned buffer, verified
    /// against the footer's payload checksum. [`Store::with_chunk_bytes`]
    /// serves the same bytes without the copy.
    pub fn chunk_bytes(&self, i: usize) -> Result<Vec<u8>, StoreError> {
        self.with_chunk_bytes(i, <[u8]>::to_vec)
    }

    /// Decodes chunk `i` into `slot`, reusing the previous occupant's
    /// buffers when the stream geometry matches (which it does for every
    /// chunk of a store written through [`StoreWriter`]) — the
    /// steady-state scan path decodes with no per-chunk heap allocation.
    /// On success the slot holds the decoded chunk; only inspect it after
    /// `Ok`.
    pub fn chunk_into(&self, i: usize, slot: &mut Option<DynCompressed>) -> Result<(), StoreError> {
        let version = self.version;
        self.with_chunk_bytes(i, |bytes| match version {
            FormatVersion::V1 => from_bytes_dyn_v1_into(bytes, slot),
            FormatVersion::V2 | FormatVersion::V3 => from_bytes_dyn_into(bytes, slot),
        })??;
        Ok(())
    }

    /// Decodes chunk `i` with runtime types read from its payload (the
    /// store's format version picks the stream parser).
    pub fn chunk(&self, i: usize) -> Result<DynCompressed, StoreError> {
        let mut slot = None;
        self.chunk_into(i, &mut slot)?;
        Ok(slot.expect("chunk_into fills the slot on success"))
    }

    /// Decodes chunk `i` at a statically-known type pair.
    pub fn chunk_typed<P: StorableReal, I: BinIndex>(
        &self,
        i: usize,
    ) -> Result<CompressedArray<P, I>, StoreError> {
        let version = self.version;
        let parsed = self.with_chunk_bytes(i, |bytes| match version {
            FormatVersion::V1 => CompressedArray::<P, I>::from_bytes_v1(bytes),
            FormatVersion::V2 | FormatVersion::V3 => CompressedArray::<P, I>::from_bytes(bytes),
        })?;
        Ok(parsed?)
    }

    /// Header summary of chunk `i` — types, transform, coder, geometry,
    /// and the fixed-width baseline size — parsed from the
    /// checksum-verified payload. The zero-copy backings peek the mapped
    /// bytes in place; the positional-read backing reads the payload into
    /// the per-thread scratch. Either way the bytes are verified before
    /// parsing (lazily, on the chunk's first touch), so a bit-flipped
    /// header yields [`StoreError::Corrupt`] — never a silently wrong
    /// `StreamInfo`. (An earlier revision peeked an *unverified* 64 KiB
    /// prefix, which corruption could turn into confident nonsense.)
    pub fn chunk_info(&self, i: usize) -> Result<StreamInfo, StoreError> {
        let version = self.stream_version();
        let info = self.with_chunk_bytes(i, |bytes| blazr::serialize::peek_info(bytes, version))?;
        info.ok_or_else(|| {
            let e = &self.entries[i];
            StoreError::Corrupt(format!("chunk {i} (label {}): unreadable header", e.label))
        })
    }

    /// The runtime types of the store's chunks, from the first chunk's
    /// §IV-C type tags (`None` for an empty store or an unreadable tag
    /// byte; this is a cheap one-byte diagnostic peek, not a checksummed
    /// read).
    pub fn chunk_types(&self) -> Option<(ScalarType, IndexType)> {
        let first = self.entries.first()?;
        let tag = self.backing.read_at(first.offset, 1, &self.retry).ok()?;
        blazr::serialize::peek_types(&tag)
    }

    /// Indices of the chunks whose labels fall in `[from, to]`
    /// (inclusive). Labels are sorted, so this is two binary searches.
    pub fn select(&self, from: u64, to: u64) -> Range<usize> {
        let lo = self.entries.partition_point(|e| e.label < from);
        let hi = self.entries.partition_point(|e| e.label <= to);
        lo..hi.max(lo)
    }

    /// Checks that `self` and `other` hold the same labels in `range`
    /// and returns the paired indices.
    fn aligned(
        &self,
        other: &Store,
        from: u64,
        to: u64,
    ) -> Result<Vec<(usize, usize)>, StoreError> {
        let a = self.select(from, to);
        let b = other.select(from, to);
        if a.len() != b.len()
            || a.clone()
                .zip(b.clone())
                .any(|(i, j)| self.entries[i].label != other.entries[j].label)
        {
            return Err(StoreError::InvalidArgument(format!(
                "stores hold different labels in [{from}, {to}]"
            )));
        }
        Ok(a.zip(b).collect())
    }

    /// L2 distance between same-label chunks of two stores (the §I "two
    /// movies" comparison, on disk): one `(label, ‖A−B‖₂, error bound)`
    /// per label in `[from, to]`. The bound is the triangle-inequality
    /// widening by both chunks' §IV-D error models. Chunk pairs are
    /// processed in parallel; results are in label order and
    /// bit-deterministic at any thread count.
    pub fn deviation_from(
        &self,
        other: &Store,
        from: u64,
        to: u64,
    ) -> Result<Vec<(u64, f64, f64)>, StoreError> {
        let pairs = self.aligned(other, from, to)?;
        let rows: Vec<Result<(u64, f64, f64), StoreError>> = pairs
            .par_iter()
            .map(|&(i, j)| {
                let a = self.chunk(i)?;
                let b = other.chunk(j)?;
                let d = a.sub(&b)?.l2_norm();
                let bound = self.entries[i].zone.bounds.l2 + other.entries[j].zone.bounds.l2;
                Ok((self.entries[i].label, d, bound))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// Dot product of the concatenation of same-label chunks in
    /// `[from, to]`: `Σ_chunks ⟨A_k, B_k⟩`, combined in label order.
    /// Returns `(value, error bound)`.
    pub fn dot(&self, other: &Store, from: u64, to: u64) -> Result<(f64, f64), StoreError> {
        let pairs = self.aligned(other, from, to)?;
        let parts: Vec<Result<(f64, f64), StoreError>> = pairs
            .par_iter()
            .map(|&(i, j)| {
                let a = self.chunk(i)?;
                let b = other.chunk(j)?;
                let d = a.dot(&b)?;
                // |⟨â,b̂⟩ − ⟨a,b⟩| ≤ ‖â‖δ_b + ‖b̂‖δ_a + δ_a·δ_b.
                let (ea, eb) = (
                    self.entries[i].zone.bounds.l2,
                    other.entries[j].zone.bounds.l2,
                );
                let (na, nb) = (
                    self.entries[i].zone.stats.l2_norm(),
                    other.entries[j].zone.stats.l2_norm(),
                );
                Ok((d, na * eb + nb * ea + ea * eb))
            })
            .collect();
        let mut value = 0.0;
        let mut bound = 0.0;
        for p in parts {
            let (v, b) = p?;
            value += v;
            bound += b;
        }
        Ok((value, bound))
    }

    /// Decodes every chunk once, in parallel (adjacent-pair analyses
    /// would otherwise decode each interior chunk twice).
    fn decoded_chunks(&self) -> Result<Vec<DynCompressed>, StoreError> {
        let rows: Vec<Result<DynCompressed, StoreError>> = (0..self.len())
            .into_par_iter()
            .map(|i| self.chunk(i))
            .collect();
        rows.into_iter().collect()
    }

    /// L2 distance between adjacent chunks — the Fig. 6(a) scission
    /// analysis, against on-disk data.
    pub fn adjacent_l2(&self) -> Result<Vec<(u64, u64, f64)>, StoreError> {
        let chunks = self.decoded_chunks()?;
        let rows: Vec<Result<(u64, u64, f64), StoreError>> = (0..self.len().saturating_sub(1))
            .into_par_iter()
            .map(|w| {
                let d = chunks[w].sub(&chunks[w + 1])?.l2_norm();
                Ok((self.entries[w].label, self.entries[w + 1].label, d))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// Approximate Wasserstein distance between adjacent chunks — the
    /// Fig. 6(b) analysis, against on-disk data.
    pub fn adjacent_wasserstein(&self, p: f64) -> Result<Vec<(u64, u64, f64)>, StoreError> {
        let chunks = self.decoded_chunks()?;
        let rows: Vec<Result<(u64, u64, f64), StoreError>> = (0..self.len().saturating_sub(1))
            .into_par_iter()
            .map(|w| {
                let d = chunks[w].wasserstein(&chunks[w + 1], p)?;
                Ok((self.entries[w].label, self.entries[w + 1].label, d))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// The adjacent pair with the largest L2 jump (event detection).
    /// Distances compare under `f64::total_cmp`, so non-finite data (a
    /// chunk of infinities subtracts to NaN distances) surfaces the NaN
    /// pair in the result instead of panicking mid-scan.
    pub fn largest_jump(&self) -> Result<Option<(u64, u64, f64)>, StoreError> {
        Ok(self
            .adjacent_l2()?
            .into_iter()
            .max_by(|a, b| a.2.total_cmp(&b.2)))
    }

    /// First label at which this store deviates from `other` by more than
    /// `threshold` in relative L2 — [`CompressedSeries::first_divergence`]
    /// against on-disk data. Scans label order sequentially and stops at
    /// the first divergence, so the cost is bounded by where the runs
    /// split, not by the store size.
    pub fn first_divergence(
        &self,
        other: &Store,
        threshold: f64,
    ) -> Result<Option<u64>, StoreError> {
        if self.labels() != other.labels() {
            return Err(StoreError::InvalidArgument(
                "stores hold different labels".into(),
            ));
        }
        for i in 0..self.len() {
            let diff = self.chunk(i)?.sub(&other.chunk(i)?)?.l2_norm();
            let scale = self.entries[i].zone.stats.l2_norm().max(f64::MIN_POSITIVE);
            if diff / scale > threshold {
                return Ok(Some(self.entries[i].label));
            }
        }
        Ok(None)
    }

    /// Loads the whole store as an in-memory [`CompressedSeries`] (the
    /// store is the durable form of a series; this is the bridge back).
    /// Fails if chunks differ in type, settings, or shape.
    pub fn to_series<P: StorableReal, I: BinIndex>(
        &self,
    ) -> Result<CompressedSeries<P, I>, StoreError> {
        let mut frames = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            frames.push(self.chunk_typed::<P, I>(i)?);
        }
        let settings = match frames.first() {
            Some(f) => f.settings().clone(),
            None => {
                return Err(StoreError::InvalidArgument(
                    "cannot build a series from an empty store (settings unknown)".into(),
                ))
            }
        };
        Ok(CompressedSeries::from_parts(
            settings,
            self.labels(),
            frames,
        )?)
    }
}

/// Persists a [`CompressedSeries`] as a store file (each frame becomes a
/// chunk; zone maps are computed in compressed space — no frame is
/// decompressed).
pub fn write_series<P: StorableReal, I: BinIndex>(
    path: impl AsRef<Path>,
    series: &CompressedSeries<P, I>,
) -> Result<(), StoreError> {
    let mut w = StoreWriter::create(path, series.settings().clone(), P::TYPE, I::TYPE)?;
    for (i, &label) in series.labels().iter().enumerate() {
        w.append_compressed(label, series.frame(i))?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_range_rejects_hostile_offsets_without_overflow() {
        // Regression: `offset as usize + len` wrapped (a panic under
        // debug-profile overflow checks) before the checked rewrite.
        let bytes = [0u8; 16];
        assert!(matches!(
            slice_range(&bytes, u64::MAX, 16),
            Err(StoreError::Corrupt(_))
        ));
        assert!(slice_range(&bytes, u64::MAX - 7, 16).is_err());
        assert!(slice_range(&bytes, 8, usize::MAX).is_err());
        assert!(slice_range(&bytes, 17, 0).is_err());
        assert_eq!(slice_range(&bytes, 8, 8).unwrap().len(), 8);
        assert_eq!(slice_range(&bytes, 16, 0).unwrap().len(), 0);
    }
}
