//! Read-only store handle: the index in memory, chunk decode on demand,
//! and the paper's §VI series analyses running against on-disk data.

use crate::error::{io_err, StoreError};
use crate::format::{
    decode_footer, fnv1a64, FormatVersion, IndexEntry, HEADER_MAGIC, MIN_FILE_LEN, TRAILER_LEN,
    TRAILER_MAGIC,
};
use crate::writer::StoreWriter;
use crate::zonemap::ZoneMap;
use blazr::dynamic::{from_bytes_dyn, from_bytes_dyn_v1, DynCompressed};
use blazr::serialize::{StreamInfo, StreamVersion};
use blazr::series::CompressedSeries;
use blazr::{BinIndex, Coder, CompressedArray, IndexType, ScalarType};
use blazr_precision::StorableReal;
use rayon::prelude::*;
use std::ops::Range;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Where an open store's bytes live. [`Store::open`] keeps the file
/// handle and fetches byte ranges on demand with positional reads (no
/// shared cursor, so parallel chunk scans are race-free);
/// [`Store::from_bytes`] serves reads from a memory buffer.
#[derive(Debug)]
enum Backing {
    Mem(Vec<u8>),
    File(std::fs::File, u64),
}

impl Backing {
    fn len(&self) -> u64 {
        match self {
            Backing::Mem(v) => v.len() as u64,
            Backing::File(_, len) => *len,
        }
    }

    /// Reads exactly `len` bytes at `offset`. Callers validate ranges
    /// against [`Backing::len`] up front (the footer decoder does), so a
    /// short read here means the file changed underneath us.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        match self {
            Backing::Mem(v) => v
                .get(offset as usize..offset as usize + len)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "read [{offset}, {offset}+{len}) beyond {} bytes",
                        v.len()
                    ))
                }),
            Backing::File(f, _) => {
                let mut buf = vec![0u8; len];
                f.read_exact_at(&mut buf, offset).map_err(|e| {
                    StoreError::Io(format!("cannot read [{offset}, {offset}+{len}): {e}"))
                })?;
                Ok(buf)
            }
        }
    }
}

/// An open store: the decoded footer index plus a handle to the payload
/// bytes. Only the footer is read at open time; chunk payloads are
/// fetched and decoded lazily, per access, so queries that prune on zone
/// maps never read the pruned payloads' bytes at all.
#[derive(Debug)]
pub struct Store {
    backing: Backing,
    entries: Vec<IndexEntry>,
    version: FormatVersion,
}

impl Store {
    /// Opens and validates a store file. Reads the header, trailer, and
    /// footer only — O(index), not O(file).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
        let len = file.metadata().map_err(|e| io_err("stat", path, e))?.len();
        Self::load(Backing::File(file, len))
    }

    /// Opens a store from its raw bytes (validates header, trailer,
    /// checksum, and index geometry — never panics on corrupt input).
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, StoreError> {
        Self::load(Backing::Mem(data))
    }

    fn load(backing: Backing) -> Result<Self, StoreError> {
        let corrupt = |msg: String| StoreError::Corrupt(msg);
        let file_len = backing.len();
        if file_len < MIN_FILE_LEN as u64 {
            return Err(corrupt(format!(
                "file holds {file_len} bytes; a store needs at least {MIN_FILE_LEN}"
            )));
        }
        let magic = backing.read_at(0, HEADER_MAGIC.len())?;
        let Some(version) = FormatVersion::from_magic(&magic) else {
            return Err(corrupt("missing BLZSTOR header magic".into()));
        };
        let trailer = backing.read_at(file_len - TRAILER_LEN as u64, TRAILER_LEN)?;
        if &trailer[16..] != TRAILER_MAGIC {
            return Err(corrupt(
                "missing BLZSIDX1 trailer magic (truncated or unfinished store?)".into(),
            ));
        }
        let footer_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 B"));
        let stored_sum = u64::from_le_bytes(trailer[8..16].try_into().expect("8 B"));
        let Some(footer_start) = file_len
            .checked_sub(TRAILER_LEN as u64)
            .and_then(|v| v.checked_sub(footer_len))
            .filter(|&v| v >= HEADER_MAGIC.len() as u64)
        else {
            return Err(corrupt(format!(
                "footer length {footer_len} does not fit in a {file_len}-byte file"
            )));
        };
        let footer = backing.read_at(footer_start, footer_len as usize)?;
        let actual_sum = fnv1a64(&footer);
        if actual_sum != stored_sum {
            return Err(corrupt(format!(
                "footer checksum mismatch: stored {stored_sum:#018x}, computed {actual_sum:#018x}"
            )));
        }
        let entries = decode_footer(&footer, footer_start, version)?;
        Ok(Self {
            backing,
            entries,
            version,
        })
    }

    /// The on-disk format version this store was written with. New files
    /// are always v2; v1 files stay readable.
    pub fn format_version(&self) -> FormatVersion {
        self.version
    }

    /// The stream layout version of this store's chunk payloads.
    fn stream_version(&self) -> StreamVersion {
        match self.version {
            FormatVersion::V1 => StreamVersion::V1,
            FormatVersion::V2 => StreamVersion::V2,
        }
    }

    /// The entropy coder of chunk `i`'s index payload, from the footer.
    pub fn chunk_coder(&self, i: usize) -> Coder {
        self.entries[i].coder
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a store with no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index entries, in label order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The chunk labels, in order.
    pub fn labels(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.label).collect()
    }

    /// The zone map of chunk `i`.
    pub fn zone_map(&self, i: usize) -> &ZoneMap {
        &self.entries[i].zone
    }

    /// Total bytes of chunk payloads (excludes header, footer, trailer).
    pub fn payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Whole-file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.backing.len()
    }

    /// Raw serialized bytes of chunk `i`, verified against the footer's
    /// payload checksum (bit rot in a payload is caught here, on read —
    /// the trailer checksum only covers the footer).
    pub fn chunk_bytes(&self, i: usize) -> Result<Vec<u8>, StoreError> {
        let e = &self.entries[i];
        let bytes = self.backing.read_at(e.offset, e.len as usize)?;
        let actual = fnv1a64(&bytes);
        if actual != e.payload_sum {
            return Err(StoreError::Corrupt(format!(
                "chunk {i} (label {}): payload checksum mismatch: stored {:#018x}, computed {actual:#018x}",
                e.label, e.payload_sum
            )));
        }
        Ok(bytes)
    }

    /// Decodes chunk `i` with runtime types read from its payload (the
    /// store's format version picks the stream parser).
    pub fn chunk(&self, i: usize) -> Result<DynCompressed, StoreError> {
        let bytes = self.chunk_bytes(i)?;
        Ok(match self.version {
            FormatVersion::V1 => from_bytes_dyn_v1(&bytes)?,
            FormatVersion::V2 => from_bytes_dyn(&bytes)?,
        })
    }

    /// Decodes chunk `i` at a statically-known type pair.
    pub fn chunk_typed<P: StorableReal, I: BinIndex>(
        &self,
        i: usize,
    ) -> Result<CompressedArray<P, I>, StoreError> {
        let bytes = self.chunk_bytes(i)?;
        Ok(match self.version {
            FormatVersion::V1 => CompressedArray::<P, I>::from_bytes_v1(&bytes)?,
            FormatVersion::V2 => CompressedArray::<P, I>::from_bytes(&bytes)?,
        })
    }

    /// Header summary of chunk `i` from a bounded prefix read — types,
    /// transform, coder, geometry, and the fixed-width baseline size —
    /// without reading or verifying the whole payload. `store stat` uses
    /// this to report entropy-coding ratios on arbitrarily large chunks.
    pub fn chunk_info(&self, i: usize) -> Result<StreamInfo, StoreError> {
        let e = &self.entries[i];
        // The header (prologue + shape + mask) is far smaller than this
        // for any realistic geometry; fall back to the full payload only
        // if a giant mask defeats the prefix.
        let prefix_len = (e.len as usize).min(64 * 1024);
        let prefix = self.backing.read_at(e.offset, prefix_len)?;
        let version = self.stream_version();
        if let Some(info) = blazr::serialize::peek_info(&prefix, version) {
            return Ok(info);
        }
        blazr::serialize::peek_info(&self.chunk_bytes(i)?, version).ok_or_else(|| {
            StoreError::Corrupt(format!("chunk {i} (label {}): unreadable header", e.label))
        })
    }

    /// The runtime types of the store's chunks, from the first chunk's
    /// §IV-C type tags (`None` for an empty store or an unreadable tag
    /// byte; this is a cheap one-byte diagnostic peek, not a checksummed
    /// read).
    pub fn chunk_types(&self) -> Option<(ScalarType, IndexType)> {
        let first = self.entries.first()?;
        let tag = self.backing.read_at(first.offset, 1).ok()?;
        blazr::serialize::peek_types(&tag)
    }

    /// Indices of the chunks whose labels fall in `[from, to]`
    /// (inclusive). Labels are sorted, so this is two binary searches.
    pub fn select(&self, from: u64, to: u64) -> Range<usize> {
        let lo = self.entries.partition_point(|e| e.label < from);
        let hi = self.entries.partition_point(|e| e.label <= to);
        lo..hi.max(lo)
    }

    /// Checks that `self` and `other` hold the same labels in `range`
    /// and returns the paired indices.
    fn aligned(
        &self,
        other: &Store,
        from: u64,
        to: u64,
    ) -> Result<Vec<(usize, usize)>, StoreError> {
        let a = self.select(from, to);
        let b = other.select(from, to);
        if a.len() != b.len()
            || a.clone()
                .zip(b.clone())
                .any(|(i, j)| self.entries[i].label != other.entries[j].label)
        {
            return Err(StoreError::InvalidArgument(format!(
                "stores hold different labels in [{from}, {to}]"
            )));
        }
        Ok(a.zip(b).collect())
    }

    /// L2 distance between same-label chunks of two stores (the §I "two
    /// movies" comparison, on disk): one `(label, ‖A−B‖₂, error bound)`
    /// per label in `[from, to]`. The bound is the triangle-inequality
    /// widening by both chunks' §IV-D error models. Chunk pairs are
    /// processed in parallel; results are in label order and
    /// bit-deterministic at any thread count.
    pub fn deviation_from(
        &self,
        other: &Store,
        from: u64,
        to: u64,
    ) -> Result<Vec<(u64, f64, f64)>, StoreError> {
        let pairs = self.aligned(other, from, to)?;
        let rows: Vec<Result<(u64, f64, f64), StoreError>> = pairs
            .par_iter()
            .map(|&(i, j)| {
                let a = self.chunk(i)?;
                let b = other.chunk(j)?;
                let d = a.sub(&b)?.l2_norm();
                let bound = self.entries[i].zone.bounds.l2 + other.entries[j].zone.bounds.l2;
                Ok((self.entries[i].label, d, bound))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// Dot product of the concatenation of same-label chunks in
    /// `[from, to]`: `Σ_chunks ⟨A_k, B_k⟩`, combined in label order.
    /// Returns `(value, error bound)`.
    pub fn dot(&self, other: &Store, from: u64, to: u64) -> Result<(f64, f64), StoreError> {
        let pairs = self.aligned(other, from, to)?;
        let parts: Vec<Result<(f64, f64), StoreError>> = pairs
            .par_iter()
            .map(|&(i, j)| {
                let a = self.chunk(i)?;
                let b = other.chunk(j)?;
                let d = a.dot(&b)?;
                // |⟨â,b̂⟩ − ⟨a,b⟩| ≤ ‖â‖δ_b + ‖b̂‖δ_a + δ_a·δ_b.
                let (ea, eb) = (
                    self.entries[i].zone.bounds.l2,
                    other.entries[j].zone.bounds.l2,
                );
                let (na, nb) = (
                    self.entries[i].zone.stats.l2_norm(),
                    other.entries[j].zone.stats.l2_norm(),
                );
                Ok((d, na * eb + nb * ea + ea * eb))
            })
            .collect();
        let mut value = 0.0;
        let mut bound = 0.0;
        for p in parts {
            let (v, b) = p?;
            value += v;
            bound += b;
        }
        Ok((value, bound))
    }

    /// Decodes every chunk once, in parallel (adjacent-pair analyses
    /// would otherwise decode each interior chunk twice).
    fn decoded_chunks(&self) -> Result<Vec<DynCompressed>, StoreError> {
        let rows: Vec<Result<DynCompressed, StoreError>> = (0..self.len())
            .into_par_iter()
            .map(|i| self.chunk(i))
            .collect();
        rows.into_iter().collect()
    }

    /// L2 distance between adjacent chunks — the Fig. 6(a) scission
    /// analysis, against on-disk data.
    pub fn adjacent_l2(&self) -> Result<Vec<(u64, u64, f64)>, StoreError> {
        let chunks = self.decoded_chunks()?;
        let rows: Vec<Result<(u64, u64, f64), StoreError>> = (0..self.len().saturating_sub(1))
            .into_par_iter()
            .map(|w| {
                let d = chunks[w].sub(&chunks[w + 1])?.l2_norm();
                Ok((self.entries[w].label, self.entries[w + 1].label, d))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// Approximate Wasserstein distance between adjacent chunks — the
    /// Fig. 6(b) analysis, against on-disk data.
    pub fn adjacent_wasserstein(&self, p: f64) -> Result<Vec<(u64, u64, f64)>, StoreError> {
        let chunks = self.decoded_chunks()?;
        let rows: Vec<Result<(u64, u64, f64), StoreError>> = (0..self.len().saturating_sub(1))
            .into_par_iter()
            .map(|w| {
                let d = chunks[w].wasserstein(&chunks[w + 1], p)?;
                Ok((self.entries[w].label, self.entries[w + 1].label, d))
            })
            .collect();
        rows.into_iter().collect()
    }

    /// The adjacent pair with the largest L2 jump (event detection).
    pub fn largest_jump(&self) -> Result<Option<(u64, u64, f64)>, StoreError> {
        Ok(self
            .adjacent_l2()?
            .into_iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances")))
    }

    /// First label at which this store deviates from `other` by more than
    /// `threshold` in relative L2 — [`CompressedSeries::first_divergence`]
    /// against on-disk data. Scans label order sequentially and stops at
    /// the first divergence, so the cost is bounded by where the runs
    /// split, not by the store size.
    pub fn first_divergence(
        &self,
        other: &Store,
        threshold: f64,
    ) -> Result<Option<u64>, StoreError> {
        if self.labels() != other.labels() {
            return Err(StoreError::InvalidArgument(
                "stores hold different labels".into(),
            ));
        }
        for i in 0..self.len() {
            let diff = self.chunk(i)?.sub(&other.chunk(i)?)?.l2_norm();
            let scale = self.entries[i].zone.stats.l2_norm().max(f64::MIN_POSITIVE);
            if diff / scale > threshold {
                return Ok(Some(self.entries[i].label));
            }
        }
        Ok(None)
    }

    /// Loads the whole store as an in-memory [`CompressedSeries`] (the
    /// store is the durable form of a series; this is the bridge back).
    /// Fails if chunks differ in type, settings, or shape.
    pub fn to_series<P: StorableReal, I: BinIndex>(
        &self,
    ) -> Result<CompressedSeries<P, I>, StoreError> {
        let mut frames = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            frames.push(self.chunk_typed::<P, I>(i)?);
        }
        let settings = match frames.first() {
            Some(f) => f.settings().clone(),
            None => {
                return Err(StoreError::InvalidArgument(
                    "cannot build a series from an empty store (settings unknown)".into(),
                ))
            }
        };
        Ok(CompressedSeries::from_parts(
            settings,
            self.labels(),
            frames,
        )?)
    }
}

/// Persists a [`CompressedSeries`] as a store file (each frame becomes a
/// chunk; zone maps are computed in compressed space — no frame is
/// decompressed).
pub fn write_series<P: StorableReal, I: BinIndex>(
    path: impl AsRef<Path>,
    series: &CompressedSeries<P, I>,
) -> Result<(), StoreError> {
    let mut w = StoreWriter::create(path, series.settings().clone(), P::TYPE, I::TYPE)?;
    for (i, &label) in series.labels().iter().enumerate() {
        w.append_compressed(label, series.frame(i))?;
    }
    w.finish()
}
