//! Append-only store writer.

use crate::error::{io_err, StoreError};
use crate::format::{
    encode_footer, encode_preamble, encode_trailer, fnv1a64, IndexEntry, CHUNK_ALIGN, HEADER_MAGIC,
    PREAMBLE_LEN,
};
use crate::zonemap::ZoneMap;
use blazr::dynamic::{compress_dyn, DynCompressed};
use blazr::{BinIndex, CompressedArray, IndexType, ScalarType, Settings};
use blazr_precision::StorableReal;
use blazr_tensor::NdArray;
use blazr_util::vfs::{OsVfs, Vfs, VfsFile};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-process counter making concurrent writers' temp names unique.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// Writes a store file chunk by chunk: payloads stream to disk as they
/// are appended; the zone-map index accumulates in memory and lands in
/// the footer at [`StoreWriter::finish`].
///
/// Ingest is atomic: chunks stream into a uniquely-named
/// `<path>.<pid>.<nonce>.tmp`, and only `finish()` — after the footer is
/// written and synced, and before the parent directory is synced —
/// renames the temp file onto `path`. A crashed or dropped writer
/// removes its temp file and leaves any pre-existing store at `path`
/// untouched, so re-ingesting over a good store can never destroy it,
/// and concurrent ingests to the same destination cannot interleave
/// (last `finish()` wins whole).
///
/// All I/O goes through a [`Vfs`] ([`StoreWriter::create_with`]), and
/// each logical unit — header, padding, chunk preamble, chunk payload,
/// footer, trailer — is one `append_all` call. That makes every write a
/// crash boundary the fault-injection suite can kill at, and it is why
/// the writer is deliberately unbuffered: a userspace buffer would
/// coalesce boundaries and hide torn-write states the format must
/// survive.
pub struct StoreWriter {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    tmp_path: PathBuf,
    offset: u64,
    entries: Vec<IndexEntry>,
    settings: Settings,
    float_type: ScalarType,
    index_type: IndexType,
    finished: bool,
}

impl StoreWriter {
    /// Creates (truncating) a store at `path`. Every chunk appended
    /// through [`StoreWriter::append`] is compressed with `settings` and
    /// the given runtime types; pre-compressed chunks must match them.
    /// The settings must keep the DC coefficient — zone maps need block
    /// means.
    pub fn create(
        path: impl AsRef<Path>,
        settings: Settings,
        float_type: ScalarType,
        index_type: IndexType,
    ) -> Result<Self, StoreError> {
        Self::create_with(Arc::new(OsVfs), path, settings, float_type, index_type)
    }

    /// [`StoreWriter::create`] through an explicit [`Vfs`] (fault
    /// injection, alternative backends).
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        settings: Settings,
        float_type: ScalarType,
        index_type: IndexType,
    ) -> Result<Self, StoreError> {
        if !settings.dc_available() {
            return Err(StoreError::InvalidArgument(
                "store settings must keep the DC coefficient (zone maps need block means)".into(),
            ));
        }
        let path = path.as_ref().to_path_buf();
        let mut tmp_os = path.clone().into_os_string();
        tmp_os.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TMP_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp_path = PathBuf::from(tmp_os);
        let mut file = vfs
            .create(&tmp_path)
            .map_err(|e| io_err("create", &tmp_path, e))?;
        if let Err(e) = file.append_all(HEADER_MAGIC) {
            // The temp file exists but no Self owns it yet, so Drop
            // cannot clean it up — do it here.
            drop(file);
            let _ = vfs.remove_file(&tmp_path);
            return Err(io_err("write", &tmp_path, e));
        }
        Ok(Self {
            vfs,
            file,
            path,
            tmp_path,
            offset: HEADER_MAGIC.len() as u64,
            entries: Vec::new(),
            settings,
            float_type,
            index_type,
            finished: false,
        })
    }

    /// The settings every chunk is compressed with.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// Chunks appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before the first append.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn check_label(&self, label: u64) -> Result<(), StoreError> {
        if let Some(last) = self.entries.last() {
            if label <= last.label {
                return Err(StoreError::InvalidArgument(format!(
                    "labels must increase: {label} after {}",
                    last.label
                )));
            }
        }
        Ok(())
    }

    fn check_chunk(
        &self,
        float_type: ScalarType,
        index_type: IndexType,
        settings: &Settings,
    ) -> Result<(), StoreError> {
        if float_type != self.float_type || index_type != self.index_type {
            return Err(StoreError::InvalidArgument(format!(
                "chunk types {float_type}/{index_type} do not match store types {}/{}",
                self.float_type, self.index_type
            )));
        }
        if *settings != self.settings {
            return Err(StoreError::InvalidArgument(
                "chunk settings do not match store settings".into(),
            ));
        }
        Ok(())
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .append_all(bytes)
            .map_err(|e| io_err("write", &self.tmp_path, e))?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    fn write_chunk(&mut self, label: u64, bytes: &[u8], zone: ZoneMap) -> Result<(), StoreError> {
        // Echo the stream's own coder tag into the footer so diagnostics
        // can count coders without reading payloads.
        let coder = blazr::serialize::peek_coder(bytes).ok_or_else(|| {
            StoreError::Corrupt("serialized chunk has no readable coder tag".into())
        })?;
        // v3 files 8-byte-align every chunk so a mapped store hands out
        // aligned payload slices and the salvage scan only has to probe
        // aligned offsets. The zero pad bytes and the 32-byte preamble
        // live in the gap *before* the payload: the footer's offset/len
        // never cover them, and the footer decoder tolerates forward
        // gaps (offsets may never run backwards). See
        // `format::CHUNK_ALIGN` and the salvage invariants in `format`.
        let pad = self.offset.next_multiple_of(CHUNK_ALIGN) - self.offset;
        if pad != 0 {
            self.write_all(&[0u8; CHUNK_ALIGN as usize][..pad as usize])?;
        }
        self.write_all(&encode_preamble(label, bytes))?;
        debug_assert_eq!(PREAMBLE_LEN as u64 % CHUNK_ALIGN, 0);
        let offset = self.offset;
        self.write_all(bytes)?;
        self.entries.push(IndexEntry {
            label,
            offset,
            len: bytes.len() as u64,
            payload_sum: fnv1a64(bytes),
            coder,
            zone,
        });
        Ok(())
    }

    /// Compresses `frame` with the store's settings and appends it under
    /// `label`. Returns the chunk's zone map.
    pub fn append(&mut self, label: u64, frame: &NdArray<f64>) -> Result<ZoneMap, StoreError> {
        self.check_label(label)?;
        let c = compress_dyn(frame, &self.settings, self.float_type, self.index_type)?;
        let zone = ZoneMap::of_dyn(&c)?;
        self.write_chunk(label, &c.to_bytes(), zone)?;
        Ok(zone)
    }

    /// Appends an already-compressed chunk (no decompression, no
    /// recompression — the zone map too is computed in compressed space).
    /// Its settings and runtime types must match the store's.
    pub fn append_dyn(&mut self, label: u64, c: &DynCompressed) -> Result<ZoneMap, StoreError> {
        self.check_label(label)?;
        self.check_chunk(c.float_type(), c.index_type(), c.settings())?;
        let zone = ZoneMap::of_dyn(c)?;
        self.write_chunk(label, &c.to_bytes(), zone)?;
        Ok(zone)
    }

    /// Typed variant of [`StoreWriter::append_dyn`].
    pub fn append_compressed<P: StorableReal, I: BinIndex>(
        &mut self,
        label: u64,
        c: &CompressedArray<P, I>,
    ) -> Result<ZoneMap, StoreError> {
        self.check_label(label)?;
        self.check_chunk(P::TYPE, I::TYPE, c.settings())?;
        let zone = ZoneMap::of(c)?;
        self.write_chunk(label, &c.to_bytes(), zone)?;
        Ok(zone)
    }

    /// Writes the zone-map footer and trailer, syncs, and atomically
    /// renames the temp file onto the destination. Only after this
    /// returns does `path` hold (or change to) the new store.
    pub fn finish(mut self) -> Result<(), StoreError> {
        let footer = encode_footer(&self.entries);
        let trailer = encode_trailer(&footer);
        self.write_all(&footer)?;
        self.write_all(&trailer)?;
        self.file
            .sync_all()
            .map_err(|e| io_err("sync", &self.tmp_path, e))?;
        self.vfs
            .rename(&self.tmp_path, &self.path)
            .map_err(|e| io_err("rename into place", &self.path, e))?;
        // The temp file no longer exists under its old name; nothing to
        // clean up from here on, even if the directory sync fails.
        self.finished = true;
        // Make the rename itself durable: sync the directory entry, or a
        // power cut after this return could roll the path back.
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        self.vfs
            .sync_dir(&parent)
            .map_err(|e| io_err("sync directory", &parent, e))?;
        Ok(())
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort cleanup: an abandoned ingest leaves no debris
            // (and never touched the destination path).
            let _ = self.vfs.remove_file(&self.tmp_path);
        }
    }
}
