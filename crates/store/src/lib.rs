//! # blazr-store — a chunked, persistent store of compressed arrays
//!
//! The paper shows that reductions, arithmetic, and comparisons run
//! *directly* on compressed arrays with bounded error. This crate gives
//! that result its production shape — the one time-series engines
//! (InfluxDB's TSM files) and columnar formats (Parquet) converge on:
//! many compressed chunks in one append-only file, behind a footer index
//! that holds per-chunk **zone maps**, so queries touch only the bytes
//! they must.
//!
//! * [`StoreWriter`] appends chunks (raw arrays compressed on the way
//!   in, or already-compressed payloads passed through untouched) and
//!   finishes with a checksummed index footer.
//! * [`Store`] opens the file, reads the footer, and answers queries:
//!   label-range selection, zone-map predicate pushdown, and
//!   sum/mean/variance/L2 aggregation — all executed **in compressed
//!   space**, chunk by chunk, with §IV-D error bounds propagated across
//!   chunks and combined in chunk order (bit-deterministic at any thread
//!   count).
//! * [`write_series`]/[`Store::to_series`] bridge the in-memory
//!   [`blazr::series::CompressedSeries`] to disk, so the paper's §VI
//!   deviation and scission analyses ([`Store::largest_jump`],
//!   [`Store::first_divergence`], …) run against on-disk data.
//! * The store survives storage faults: transient read errors retry
//!   with bounded backoff ([`RetryPolicy`]), a damaged footer salvages
//!   from self-describing chunk preambles ([`Store::open_salvage`]),
//!   and queries over a store with bad chunks can proceed in degraded
//!   mode ([`Store::query_degraded`]) with a [`DegradationReport`]
//!   instead of an error. All I/O goes through the
//!   [`blazr_util::vfs`] seam, so every failure mode is testable with
//!   deterministic fault injection.
//!
//! ```
//! use blazr::{IndexType, ScalarType, Settings};
//! use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
//! use blazr_tensor::NdArray;
//!
//! let path = std::env::temp_dir().join("blazr-store-doc.blzs");
//! let mut w = StoreWriter::create(
//!     &path,
//!     Settings::new(vec![4, 4]).unwrap(),
//!     ScalarType::F32,
//!     IndexType::I16,
//! )
//! .unwrap();
//! for t in 0..4u64 {
//!     let frame = NdArray::from_fn(vec![8, 8], |i| (i[0] + i[1]) as f64 + t as f64);
//!     w.append(t, &frame).unwrap();
//! }
//! w.finish().unwrap();
//!
//! let store = Store::open(&path).unwrap();
//! let result = store
//!     .query(&Query {
//!         from_label: 1,
//!         to_label: 3,
//!         predicate: Some(Predicate::ValueInRange { lo: 10.0, hi: 20.0 }),
//!         aggregate: Aggregate::Mean,
//!     })
//!     .unwrap();
//! assert!(result.value.is_finite());
//! # std::fs::remove_file(&path).ok();
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod format;
mod query;
mod store;
mod writer;
mod zonemap;

pub use error::StoreError;
pub use format::{FormatVersion, IndexEntry};
pub use query::{Aggregate, DegradationReport, Predicate, Query, QueryResult, SkippedChunk};
pub use store::{write_series, RetryPolicy, SalvageReport, Store};
pub use writer::StoreWriter;
pub use zonemap::ZoneMap;
