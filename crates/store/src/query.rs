//! Query execution: label-range selection, zone-map predicate pushdown,
//! and chunk-by-chunk compressed-space aggregation.
//!
//! A query runs in three stages:
//!
//! 1. **Select** — binary-search the sorted labels for `[from, to]`.
//! 2. **Prune** — drop chunks whose zone map, widened by its error
//!    bound, cannot satisfy the predicate. Pruned chunks' payload bytes
//!    are never read.
//! 3. **Scan** — decode the survivors in parallel, re-evaluate the
//!    predicate *exactly* (per-block, still in compressed space), and
//!    combine the matching chunks' [`ChunkStats`]/[`ErrorBounds`]
//!    partials **in chunk order**.
//!
//! Stage 3's exact re-evaluation is what makes pruning transparent: the
//! zone map is a superset filter (its chunk-level hull covers every
//! block envelope), so a pruned run and a full scan admit exactly the
//! same chunks and — because partials combine in chunk order, per the
//! PR-2 determinism contract — produce **bit-identical** aggregates at
//! any thread count.

use crate::error::StoreError;
use crate::store::Store;
use crate::zonemap::ZoneMap;
use blazr::dynamic::DynCompressed;
use blazr::ops::{ChunkStats, ErrorBounds};
use blazr_telemetry as tel;
use rayon::prelude::*;
use std::cell::RefCell;

std::thread_local! {
    /// Per-thread decode scratch for the scan stage. Chunks of one store
    /// share geometry and settings, so after the first chunk a thread
    /// decodes, every later [`Store::chunk_into`] takes the header-match
    /// fast path and reuses these buffers — on a mapped store the
    /// steady-state scan performs no per-chunk heap allocation (payload
    /// bytes are borrowed, decode output lands here).
    static SCAN_SCRATCH: RefCell<Option<DynCompressed>> = const { RefCell::new(None) };
}

/// One scanned chunk's outcome.
enum Scanned {
    /// The chunk matched: label and partials for the chunk-order fold.
    Match(u64, ChunkStats, ErrorBounds),
    /// The exact predicate rejected the chunk.
    NoMatch,
    /// Degraded mode quarantined the chunk: it failed to read, verify,
    /// or decode, and the query is proceeding without it.
    Skipped {
        label: u64,
        rows: u64,
        reason: String,
    },
}

/// A chunk-level predicate on the data values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Keep chunks that may hold an element in `[lo, hi]` (each side
    /// widened by the chunk's per-element error bound, so no chunk whose
    /// *original* data matches is ever dropped). Exact evaluation tests
    /// each block's value envelope; the zone map tests the chunk hull.
    ValueInRange {
        /// Inclusive lower value bound (`-inf` for "no bound").
        lo: f64,
        /// Inclusive upper value bound (`+inf` for "no bound").
        hi: f64,
    },
    /// Keep chunks whose mean lies in `[lo, hi]`, widened by the chunk's
    /// mean error bound.
    MeanInRange {
        /// Inclusive lower mean bound.
        lo: f64,
        /// Inclusive upper mean bound.
        hi: f64,
    },
}

impl Predicate {
    /// Zone-map test: may this chunk match? `false` is a safe prune.
    pub fn zone_may_match(&self, zone: &ZoneMap) -> bool {
        match *self {
            Predicate::ValueInRange { lo, hi } => zone.may_contain_value(lo, hi),
            Predicate::MeanInRange { lo, hi } => zone.mean_may_be_in(lo, hi),
        }
    }

    /// Exact test on a decoded chunk (still compressed-space: block
    /// envelopes and DC statistics, never element decompression). Always
    /// implies [`Predicate::zone_may_match`] on the chunk's zone map.
    pub fn matches_chunk(&self, c: &DynCompressed, zone: &ZoneMap) -> Result<bool, StoreError> {
        match *self {
            Predicate::ValueInRange { lo, hi } => {
                // Streamed per-block envelope test (identical arithmetic
                // to collecting `block_envelopes()` and scanning, without
                // materializing the envelope vector).
                let slack = zone.bounds.linf;
                Ok(c.any_envelope_overlaps(lo, hi, slack)?)
            }
            Predicate::MeanInRange { lo, hi } => Ok(zone.mean_may_be_in(lo, hi)),
        }
    }
}

/// Which scalar to aggregate over the matching chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of elements covered.
    Count,
    /// Sum of elements.
    Sum,
    /// Mean of elements.
    Mean,
    /// Population variance of elements (across all matching chunks).
    Variance,
    /// L2 norm of the concatenated elements.
    L2Norm,
}

impl Aggregate {
    /// Parses a CLI-style name.
    pub fn parse(s: &str) -> Result<Self, StoreError> {
        Ok(match s {
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "mean" => Aggregate::Mean,
            "variance" | "var" => Aggregate::Variance,
            "l2" | "l2norm" => Aggregate::L2Norm,
            other => {
                return Err(StoreError::InvalidArgument(format!(
                    "unknown aggregate {other:?} (want count|sum|mean|variance|l2)"
                )))
            }
        })
    }
}

/// A store query: label range, optional predicate, aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Inclusive label lower bound.
    pub from_label: u64,
    /// Inclusive label upper bound.
    pub to_label: u64,
    /// Chunk predicate; `None` keeps every chunk in the label range.
    pub predicate: Option<Predicate>,
    /// What to compute over the matching chunks.
    pub aggregate: Aggregate,
}

impl Query {
    /// A query over every label with no predicate.
    pub fn all(aggregate: Aggregate) -> Self {
        Self {
            from_label: 0,
            to_label: u64::MAX,
            predicate: None,
            aggregate,
        }
    }
}

/// The outcome of a query: the aggregate, its error bound against the
/// original (pre-compression) data, and the pruning accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The aggregate value (NaN for mean/variance over zero chunks).
    pub value: f64,
    /// §IV-D error-model bound on `|value − value_on_original_data|`.
    pub error_bound: f64,
    /// Merged statistics of the matching chunks.
    pub stats: ChunkStats,
    /// Merged error bounds of the matching chunks.
    pub bounds: ErrorBounds,
    /// Labels of the chunks that matched the predicate.
    pub matched_labels: Vec<u64>,
    /// Chunks whose labels fell in the query range.
    pub chunks_in_range: usize,
    /// Chunks skipped by zone-map pruning (payload never read).
    pub chunks_pruned: usize,
    /// Chunks decoded and exactly evaluated.
    pub chunks_scanned: usize,
    /// Payload bytes the scan stage read (survivor chunks' serialized
    /// sizes; pruned chunks contribute nothing).
    pub payload_bytes_read: u64,
}

impl QueryResult {
    /// Fraction of the in-range chunks that zone-map pruning skipped
    /// (`0.0` when the range was empty).
    pub fn prune_ratio(&self) -> f64 {
        if self.chunks_in_range == 0 {
            0.0
        } else {
            self.chunks_pruned as f64 / self.chunks_in_range as f64
        }
    }
}

/// One chunk a degraded query proceeded without.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedChunk {
    /// The chunk's label.
    pub label: u64,
    /// Rows (elements) the chunk held, from its zone map.
    pub rows: u64,
    /// Why the chunk was quarantined (checksum mismatch, read error, …).
    pub reason: String,
}

/// How much of the data a degraded query ([`Store::query_degraded`]) had
/// to do without. An empty report (nothing skipped) means the answer is
/// identical to a healthy [`Store::query`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// The quarantined chunks, in chunk order.
    pub skipped: Vec<SkippedChunk>,
    /// Rows in the quarantined chunks (per their zone maps).
    pub rows_unavailable: u64,
    /// Rows in every chunk of the query's label range.
    pub rows_in_range: u64,
    /// True when any chunk was skipped: the result's error bounds cover
    /// only the surviving chunks, not the store's full contents.
    pub bounds_partial: bool,
}

impl DegradationReport {
    /// True when any chunk was quarantined.
    pub fn is_degraded(&self) -> bool {
        !self.skipped.is_empty()
    }

    /// Fraction of the in-range rows that were unavailable (`0.0` for an
    /// empty range).
    pub fn fraction_unavailable(&self) -> f64 {
        if self.rows_in_range == 0 {
            0.0
        } else {
            self.rows_unavailable as f64 / self.rows_in_range as f64
        }
    }
}

/// Bound on `|Var(x̂) − Var(x)|` from the merged bounds and statistics:
/// `E[x²]` shifts by at most `(2‖x̂‖₂ + ε₂)·ε₂/n` and `E[x]²` by at most
/// `(2|m̂| + ε_m)·ε_m`, where `ε₂` bounds `‖x̂ − x‖₂` and `ε_m` the mean
/// error.
fn variance_bound(stats: &ChunkStats, bounds: &ErrorBounds) -> f64 {
    if stats.count == 0 {
        return 0.0;
    }
    let n = stats.count as f64;
    let e2 = bounds.l2;
    let em = bounds.mean_bound(stats.count);
    (2.0 * stats.l2_norm() + e2) * e2 / n + (2.0 * stats.mean().abs() + em) * em
}

impl Store {
    /// Runs `q` with zone-map pruning: only chunks the zone maps cannot
    /// rule out are decoded. The result is bit-identical to
    /// [`Store::query_full_scan`].
    pub fn query(&self, q: &Query) -> Result<QueryResult, StoreError> {
        Ok(self.execute(q, true, false, None)?.0)
    }

    /// Runs `q` decoding every chunk in the label range (the reference
    /// scan the pruned path must reproduce bit-for-bit).
    pub fn query_full_scan(&self, q: &Query) -> Result<QueryResult, StoreError> {
        Ok(self.execute(q, false, false, None)?.0)
    }

    /// Runs `q` tolerating damaged chunks: a chunk that fails to read,
    /// checksum-verify, or decode is **quarantined** — counted in the
    /// [`DegradationReport`] and excluded from the aggregate — instead of
    /// failing the query. The result over the surviving chunks is
    /// bit-identical to [`Store::query`] on a store holding only those
    /// chunks, at any thread count. Caller errors (a bad label range)
    /// still fail: degradation covers data damage, not misuse.
    pub fn query_degraded(
        &self,
        q: &Query,
    ) -> Result<(QueryResult, DegradationReport), StoreError> {
        self.execute(q, true, true, None)
    }

    /// [`Store::query_degraded`] with a cooperative cancellation check,
    /// consulted **between chunks** during the scan stage: the moment
    /// `cancel()` returns true, the query stops decoding further chunks
    /// and fails with [`StoreError::Cancelled`]. This is the seam a
    /// server's per-request deadline reaches the scan through — a query
    /// over many chunks cannot overrun its deadline by more than one
    /// chunk's decode time. A `cancel` that never fires is bit-identical
    /// to [`Store::query_degraded`] (same code path, same chunk-order
    /// fold).
    pub fn query_degraded_with(
        &self,
        q: &Query,
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> Result<(QueryResult, DegradationReport), StoreError> {
        self.execute(q, true, true, Some(cancel))
    }

    fn execute(
        &self,
        q: &Query,
        prune: bool,
        tolerate: bool,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<(QueryResult, DegradationReport), StoreError> {
        let _span = tel::span!("store.query");
        let allocs_before = if tel::counters_enabled() {
            tel::alloc_probe()
        } else {
            None
        };
        if q.from_label > q.to_label {
            return Err(StoreError::InvalidArgument(format!(
                "empty label range: from {} > to {}",
                q.from_label, q.to_label
            )));
        }
        let range = self.select(q.from_label, q.to_label);
        let chunks_in_range = range.len();

        // Stage 2: prune on zone maps alone (footer data, no payload).
        // Pre-sized to the range so the query costs a fixed, small number
        // of allocations (these result vectors) however many chunks it
        // touches.
        let mut survivors: Vec<usize> = Vec::with_capacity(chunks_in_range);
        survivors.extend(range.filter(|&i| match (&q.predicate, prune) {
            (Some(p), true) => p.zone_may_match(&self.entries()[i].zone),
            _ => true,
        }));
        let chunks_pruned = chunks_in_range - survivors.len();
        let payload_bytes_read: u64 = survivors.iter().map(|&i| self.entries()[i].len).sum();

        // Stage 3: decode + exact predicate + partials, in parallel; each
        // element is independent, and the fold below runs in chunk order.
        let scanned: Vec<Result<Scanned, StoreError>> = survivors
            .par_iter()
            .map(|&i| {
                let entry = &self.entries()[i];
                // Cooperative deadline check, between chunks: once the
                // caller cancels, no further chunk is read or decoded.
                if cancel.is_some_and(|c| c()) {
                    return Err(StoreError::Cancelled(format!(
                        "query cancelled before chunk {} (label {})",
                        i, entry.label
                    )));
                }
                let outcome = SCAN_SCRATCH.with(|cell| {
                    let slot = &mut *cell.borrow_mut();
                    self.chunk_into(i, slot)?;
                    let c = slot.as_ref().expect("chunk_into fills the slot");
                    let matched = match &q.predicate {
                        Some(p) => p.matches_chunk(c, &entry.zone)?,
                        None => true,
                    };
                    if !matched {
                        return Ok(Scanned::NoMatch);
                    }
                    // Recompute (not copy) the partials from the payload:
                    // the determinism contract makes them equal the stored
                    // zone map bit-for-bit, and recomputing keeps the full
                    // scan an honest reference for index corruption too.
                    // The sequential fold is bit-identical to the parallel
                    // `stats_partial` (same per-block arithmetic, same
                    // order) and allocation-free — the chunks themselves
                    // already fan out across threads here.
                    let stats = c.stats_partial_seq()?;
                    Ok(Scanned::Match(entry.label, stats, c.error_bounds()))
                });
                match outcome {
                    // A damaged chunk in degraded mode is quarantined, not
                    // fatal. `InvalidArgument` and `Cancelled` stay fatal:
                    // they signal a caller bug or a caller deadline, not
                    // data damage.
                    Err(e)
                        if tolerate
                            && !matches!(
                                e,
                                StoreError::InvalidArgument(_) | StoreError::Cancelled(_)
                            ) =>
                    {
                        Ok(Scanned::Skipped {
                            label: entry.label,
                            rows: entry.zone.stats.count,
                            reason: e.to_string(),
                        })
                    }
                    other => other,
                }
            })
            .collect();

        let rows_in_range: u64 = self
            .select(q.from_label, q.to_label)
            .map(|i| self.entries()[i].zone.stats.count)
            .sum();
        let mut stats = ChunkStats::empty();
        let mut bounds = ErrorBounds::exact();
        let mut matched_labels = Vec::with_capacity(scanned.len());
        let mut skipped = Vec::new();
        for r in scanned {
            match r? {
                Scanned::Match(label, s, b) => {
                    matched_labels.push(label);
                    stats.merge(&s);
                    bounds.merge(&b);
                }
                Scanned::NoMatch => {}
                Scanned::Skipped {
                    label,
                    rows,
                    reason,
                } => skipped.push(SkippedChunk {
                    label,
                    rows,
                    reason,
                }),
            }
        }

        let (value, error_bound) = match q.aggregate {
            Aggregate::Count => (stats.count as f64, 0.0),
            Aggregate::Sum => (stats.sum, bounds.sum_bound(stats.count)),
            Aggregate::Mean => (stats.mean(), bounds.mean_bound(stats.count)),
            Aggregate::Variance => (stats.variance(), variance_bound(&stats, &bounds)),
            Aggregate::L2Norm => (stats.l2_norm(), bounds.l2),
        };
        if tel::counters_enabled() {
            tel::counter!("store.queries").add(1);
            tel::counter!("store.chunks_pruned").add(chunks_pruned as u64);
            tel::counter!("store.chunks_scanned").add(survivors.len() as u64);
            tel::counter!("store.chunks_matched").add(matched_labels.len() as u64);
            tel::counter!("store.chunks_quarantined").add(skipped.len() as u64);
            tel::counter!("store.query.payload_bytes").add(payload_bytes_read);
            // Allocation audit: with a probe registered (the bench's
            // counting allocator), record how many allocations this query
            // performed end to end.
            if let (Some(before), Some(after)) = (allocs_before, tel::alloc_probe()) {
                tel::record!("store.query.allocs", after.saturating_sub(before));
            }
        }
        let report = DegradationReport {
            rows_unavailable: skipped.iter().map(|s| s.rows).sum(),
            rows_in_range,
            bounds_partial: !skipped.is_empty(),
            skipped,
        };
        let result = QueryResult {
            value,
            error_bound,
            stats,
            bounds,
            matched_labels,
            chunks_in_range,
            chunks_pruned,
            chunks_scanned: survivors.len(),
            payload_bytes_read,
        };
        Ok((result, report))
    }
}
