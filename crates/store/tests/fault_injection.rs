//! Deterministic storage-fault tests: the crash-point sweep (kill the
//! ingest at every write boundary; the destination is the intact old
//! store or the intact new one, never garbage), ENOSPC cleanup, bounded
//! retry of transient read faults, mmap fallback, and bit-rot
//! quarantine under degraded queries. All faults are injected through
//! [`blazr_util::vfs::FaultyVfs`], so every scenario is reproducible.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Query, Store, StoreError, StoreWriter};
use blazr_telemetry as tel;
use blazr_tensor::NdArray;
use blazr_util::vfs::{FaultOp, FaultyVfs, OsVfs, Vfs};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-faults").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Telemetry mode is process-global; tests that flip it must not
/// interleave, or one test's `Mode::Off` would stop another's counting.
static TEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tel_lock() -> std::sync::MutexGuard<'static, ()> {
    TEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn frames() -> Vec<(u64, NdArray<f64>)> {
    (0..4u64)
        .map(|t| {
            let f = NdArray::from_fn(vec![12, 12], |i| {
                ((i[0] as f64 + t as f64) / 3.0).sin() + i[1] as f64 * 0.05
            });
            (t * 10, f)
        })
        .collect()
}

/// Runs a full ingest (create, append every frame, finish) through the
/// given [`Vfs`].
fn ingest_through(vfs: Arc<dyn Vfs>, path: &Path) -> Result<(), StoreError> {
    let mut w = StoreWriter::create_with(
        vfs,
        path,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )?;
    for (label, frame) in frames() {
        w.append(label, &frame)?;
    }
    w.finish()
}

/// Temp files the atomic ingest may have left in `dir`.
fn leftover_tmp_files(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        .collect()
}

/// The crash-point sweep: inject a hard or torn failure at **every**
/// write boundary of the ingest (plus every sync, rename, and
/// directory-sync), and assert after each that the destination holds
/// either the intact old store or the intact new one — never garbage —
/// and that no temp file survives.
#[test]
fn crash_point_sweep_never_leaves_garbage() {
    let dir = tmp_dir("sweep");
    let dest = dir.join("store.blzs");

    // Seed an intact "old" store at the destination, then dry-run one
    // clean ingest through a counting VFS to enumerate every boundary.
    ingest_through(Arc::new(OsVfs), &dest).unwrap();
    let old = fs::read(&dest).unwrap();
    let probe = FaultyVfs::os();
    let probe_dest = dir.join("probe.blzs");
    ingest_through(Arc::new(probe.clone()), &probe_dest).unwrap();
    let writes = probe.op_count(FaultOp::Write);
    let syncs = probe.op_count(FaultOp::Sync);
    let renames = probe.op_count(FaultOp::Rename);
    let dir_syncs = probe.op_count(FaultOp::SyncDir);
    assert!(writes >= 10, "expected many write boundaries, got {writes}");
    // The ingest is deterministic, so the probe's output doubles as the
    // expected "new" store image.
    let new = fs::read(&probe_dest).unwrap();
    fs::remove_file(&probe_dest).unwrap();

    let check = |ctx: &str| {
        let bytes = fs::read(&dest).unwrap();
        assert!(
            bytes == old || bytes == new,
            "{ctx}: destination is neither the old store nor the new one \
             ({} bytes)",
            bytes.len()
        );
        Store::open(&dest).unwrap_or_else(|e| panic!("{ctx}: destination unreadable: {e}"));
        let debris = leftover_tmp_files(&dir);
        assert!(
            debris.is_empty(),
            "{ctx}: temp files left behind: {debris:?}"
        );
    };

    let mut points = 0u64;
    for n in 0..writes {
        // A hard ENOSPC, a fully torn write (nothing lands), and a torn
        // write that persists a 33-byte prefix.
        for what in ["enospc", "torn-0", "torn-33"] {
            let vfs = FaultyVfs::os();
            match what {
                "enospc" => vfs.fail_nth(FaultOp::Write, n, std::io::ErrorKind::StorageFull),
                "torn-0" => vfs.torn_write(n, 0),
                _ => vfs.torn_write(n, 33),
            }
            let err = ingest_through(Arc::new(vfs), &dest);
            assert!(err.is_err(), "write {n} ({what}): fault did not surface");
            check(&format!("write {n} ({what})"));
            points += 1;
        }
    }
    for n in 0..syncs {
        let vfs = FaultyVfs::os();
        vfs.fail_nth(FaultOp::Sync, n, std::io::ErrorKind::Other);
        assert!(ingest_through(Arc::new(vfs), &dest).is_err());
        check(&format!("sync {n}"));
        points += 1;
    }
    for n in 0..renames {
        let vfs = FaultyVfs::os();
        vfs.fail_nth(FaultOp::Rename, n, std::io::ErrorKind::Other);
        assert!(ingest_through(Arc::new(vfs), &dest).is_err());
        check(&format!("rename {n}"));
        points += 1;
    }
    for n in 0..dir_syncs {
        // The directory sync happens after the rename: the ingest
        // reports failure, but the destination already holds the new
        // store — which is exactly what `check` permits.
        let vfs = FaultyVfs::os();
        vfs.fail_nth(FaultOp::SyncDir, n, std::io::ErrorKind::Other);
        assert!(ingest_through(Arc::new(vfs), &dest).is_err());
        check(&format!("sync_dir {n}"));
        points += 1;
    }
    println!(
        "fault-sweep: {points} crash points over {writes} writes / {syncs} syncs / \
         {renames} renames / {dir_syncs} dir-syncs: destination always intact"
    );
}

/// ENOSPC (or any fault) aborting an ingest into a directory with no
/// pre-existing store must leave that directory completely empty — the
/// destination never created, the temp file unlinked by `Drop` even
/// though `finish()` never ran. Swept across every write boundary,
/// including index 0 (the header write inside `create`).
#[test]
fn aborted_ingest_leaves_the_directory_clean() {
    let probe_dir = tmp_dir("clean-probe");
    let probe = FaultyVfs::os();
    ingest_through(Arc::new(probe.clone()), &probe_dir.join("probe.blzs")).unwrap();
    let writes = probe.op_count(FaultOp::Write);

    let dir = tmp_dir("clean");
    let dest = dir.join("store.blzs");
    for n in 0..writes {
        let vfs = FaultyVfs::os();
        vfs.fail_nth(FaultOp::Write, n, std::io::ErrorKind::StorageFull);
        let err = ingest_through(Arc::new(vfs), &dest).unwrap_err();
        assert!(
            matches!(err, StoreError::Io(_)),
            "write {n}: expected an I/O error, got {err:?}"
        );
        let entries: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            entries.is_empty(),
            "write {n}: aborted ingest left debris: {entries:?}"
        );
    }
    // A failing `create` itself also leaves nothing behind.
    let vfs = FaultyVfs::os();
    vfs.fail_nth(FaultOp::Create, 0, std::io::ErrorKind::PermissionDenied);
    assert!(ingest_through(Arc::new(vfs), &dest).is_err());
    assert!(fs::read_dir(&dir).unwrap().next().is_none());
    println!("fault-sweep: {writes} aborted ingests left the directory clean");
}

/// Transient (EINTR-style) read faults are retried with bounded backoff
/// and the telemetry counters record both the retries and a give-up.
#[test]
fn transient_read_faults_retry_then_give_up() {
    let dir = tmp_dir("transient");
    let dest = dir.join("store.blzs");
    ingest_through(Arc::new(OsVfs), &dest).unwrap();

    let _serial = tel_lock();
    tel::set_mode(tel::Mode::Counters);
    let vfs = FaultyVfs::os();
    // FaultyVfs never memory-maps, so every read goes through the
    // faultable positional path.
    let store = Store::open_with(&vfs, &dest).unwrap();
    assert_eq!(store.backing_kind(), "file");

    // Two consecutive failures: the default 3-attempt policy absorbs
    // them and the read succeeds.
    vfs.transient_reads(vfs.op_count(FaultOp::Read), 2);
    store.chunk(0).unwrap();

    // More failures than the budget: the read gives up with an I/O
    // error (not a panic, not corruption).
    vfs.transient_reads(vfs.op_count(FaultOp::Read), 16);
    match store.chunk(1) {
        Err(StoreError::Io(msg)) => assert!(msg.contains("injected"), "{msg}"),
        other => panic!("expected an I/O give-up, got {other:?}"),
    }
    vfs.clear();
    store.chunk(1).unwrap();

    let snap = tel::registry().snapshot();
    let retries = snap.counter("store.io.retries").unwrap_or(0);
    let giveups = snap.counter("store.io.giveups").unwrap_or(0);
    assert!(retries >= 4, "expected ≥4 retries, saw {retries}");
    assert!(giveups >= 1, "expected ≥1 give-up, saw {giveups}");
    println!("retry: {retries} transient retries, {giveups} give-ups");
    tel::set_mode(tel::Mode::Off);
}

/// An mmap that *errors* (as opposed to being unsupported) must not fail
/// the open: the store falls back to positional reads, flags the handle,
/// counts the fallback, and answers queries bit-identically.
#[test]
fn mmap_failure_falls_back_to_positional_reads() {
    let dir = tmp_dir("mmap");
    let dest = dir.join("store.blzs");
    ingest_through(Arc::new(OsVfs), &dest).unwrap();
    let reference = Store::open(&dest)
        .unwrap()
        .query(&Query::all(Aggregate::Sum))
        .unwrap();

    let _serial = tel_lock();
    tel::set_mode(tel::Mode::Counters);
    let vfs = FaultyVfs::os();
    vfs.fail_nth(FaultOp::Mmap, 0, std::io::ErrorKind::OutOfMemory);
    let store = Store::open_with(&vfs, &dest).unwrap();
    assert!(store.mmap_fell_back());
    assert_eq!(store.backing_kind(), "file");
    let r = store.query(&Query::all(Aggregate::Sum)).unwrap();
    assert_eq!(r.value.to_bits(), reference.value.to_bits());
    assert_eq!(r.matched_labels, reference.matched_labels);
    let snap = tel::registry().snapshot();
    assert!(snap.counter("store.open.mmap_fallback").unwrap_or(0) >= 1);
    println!(
        "mmap-fallback: open survived a failing map ({} fallbacks recorded)",
        snap.counter("store.open.mmap_fallback").unwrap_or(0)
    );
    tel::set_mode(tel::Mode::Off);
}

/// Bit rot under a live reader: a strict query refuses, a degraded query
/// quarantines exactly the rotten chunk, reports it, and bumps the
/// quarantine counter. The file itself is untouched (the flips live in
/// the VFS), so a clean reopen still sees good data.
#[test]
fn bit_rot_is_quarantined_by_degraded_queries() {
    let dir = tmp_dir("rot");
    let dest = dir.join("store.blzs");
    ingest_through(Arc::new(OsVfs), &dest).unwrap();
    let clean = Store::open(&dest).unwrap();
    let victim = 2usize;
    let victim_label = clean.entries()[victim].label;
    let victim_rows = clean.entries()[victim].zone.stats.count;
    let flip_at = clean.entries()[victim].offset + 7;
    drop(clean);

    let _serial = tel_lock();
    tel::set_mode(tel::Mode::Counters);
    let vfs = FaultyVfs::os();
    vfs.flip_byte(flip_at, 0x20);
    let store = Store::open_with(&vfs, &dest).unwrap();
    let q = Query::all(Aggregate::Sum);
    assert!(matches!(store.query(&q), Err(StoreError::Corrupt(_))));

    // The checksum verdict latched on first touch, so even the degraded
    // pass keeps refusing this chunk.
    let (r, report) = store.query_degraded(&q).unwrap();
    assert!(report.is_degraded());
    assert!(report.bounds_partial);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].label, victim_label);
    assert_eq!(report.rows_unavailable, victim_rows);
    assert!(report.fraction_unavailable() > 0.0);
    assert!(!r.matched_labels.contains(&victim_label));
    assert!(r.value.is_finite());

    let snap = tel::registry().snapshot();
    let quarantined = snap.counter("store.chunks_quarantined").unwrap_or(0);
    assert!(
        quarantined >= 1,
        "expected ≥1 quarantine, saw {quarantined}"
    );
    println!(
        "quarantine: chunk {victim_label} skipped ({} of {} rows unavailable, \
         {quarantined} quarantines recorded)",
        report.rows_unavailable, report.rows_in_range
    );
    tel::set_mode(tel::Mode::Off);

    // The rot lived in the read path, not the file.
    let reopened = Store::open(&dest).unwrap();
    reopened.chunk(victim).unwrap();
    assert!(reopened.query(&q).is_ok());
}
