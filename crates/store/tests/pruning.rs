//! Pruning correctness: a zone-map-pruned query must return results
//! **bit-identical** to a full scan — the zone map, widened by its error
//! bound, may never prune a chunk the exact evaluation would keep.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-pruning");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

/// A store whose chunks ramp upward in value (chunk t holds values near
/// `t`), so range predicates have real pruning power. The chunk shape is
/// a block multiple: zone maps are computed in compressed space, and
/// blocks that straddle the zero-padded tail would widen the value
/// envelope (their AC energy covers the data-to-padding step). Aligned
/// chunks keep the envelopes tight — the same alignment advice column
/// stores give for row-group statistics.
fn ramp_store(name: &str, chunks: u64, noisy: bool) -> Store {
    let p = tmp(name);
    let mut w = StoreWriter::create(
        &p,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    for t in 0..chunks {
        let base = t as f64;
        let frame = NdArray::from_fn(vec![12, 16], |i| {
            let wiggle = ((i[0] * 3 + i[1]) as f64 / 11.0).sin() * 0.25;
            let noise = if noisy {
                rng.uniform_in(-0.05, 0.05)
            } else {
                0.0
            };
            base + wiggle + noise
        });
        w.append(t, &frame).unwrap();
    }
    w.finish().unwrap();
    Store::open(&p).unwrap()
}

fn assert_bit_identical(a: &blazr_store::QueryResult, b: &blazr_store::QueryResult) {
    assert_eq!(a.value.to_bits(), b.value.to_bits(), "aggregate differs");
    assert_eq!(
        a.error_bound.to_bits(),
        b.error_bound.to_bits(),
        "bound differs"
    );
    assert_eq!(a.stats, b.stats, "merged stats differ");
    assert_eq!(a.bounds, b.bounds, "merged bounds differ");
    assert_eq!(a.matched_labels, b.matched_labels, "matched set differs");
}

/// The acceptance-criteria scenario: a range predicate that must prune at
/// least one chunk, with the pruned result bit-identical to the full scan
/// at every thread count.
#[test]
fn pruned_query_is_bit_identical_and_prunes() {
    let store = ramp_store("e2e.blzs", 8, true);
    let q = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::ValueInRange { lo: 5.5, hi: 6.5 }),
        aggregate: Aggregate::Mean,
    };
    let reference = with_threads(1, || store.query_full_scan(&q).unwrap());
    for n in [1usize, 2, 4, 8] {
        let pruned = with_threads(n, || store.query(&q).unwrap());
        let full = with_threads(n, || store.query_full_scan(&q).unwrap());
        assert!(pruned.chunks_pruned >= 1, "no chunk pruned at {n} threads");
        assert_bit_identical(&pruned, &full);
        assert_bit_identical(&pruned, &reference);
    }
    // The ramp makes the matching set predictable: only chunks whose
    // value envelope (base ± wiggle energy) reaches [5.5, 6.5] survive.
    let pruned = store.query(&q).unwrap();
    assert!(pruned.matched_labels.contains(&6));
    assert!(!pruned.matched_labels.contains(&0));
    assert!(pruned.value > 5.0 && pruned.value < 7.5);
    assert!(pruned.error_bound > 0.0 && pruned.error_bound < 1e-2);
}

#[test]
fn pruning_never_drops_chunks_with_matching_original_values() {
    // Every original element sits inside its chunk's widened zone map, so
    // a point query at any original value must keep that chunk.
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let p = tmp("original.blzs");
    let mut w = StoreWriter::create(
        &p,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I8, // coarse bins: large (but bounded) error
    )
    .unwrap();
    let mut originals = Vec::new();
    for t in 0..4u64 {
        let frame = NdArray::from_fn(vec![9, 9], |_| rng.uniform_in(-2.0, 2.0) + t as f64);
        originals.push((t, frame.clone()));
        w.append(t, &frame).unwrap();
    }
    w.finish().unwrap();
    let store = Store::open(&p).unwrap();
    for (i, (label, frame)) in originals.iter().enumerate() {
        for &x in frame.as_slice().iter().step_by(7) {
            let q = Query {
                from_label: 0,
                to_label: u64::MAX,
                predicate: Some(Predicate::ValueInRange { lo: x, hi: x }),
                aggregate: Aggregate::Count,
            };
            let r = store.query(&q).unwrap();
            assert!(
                r.matched_labels.contains(label),
                "chunk {i} dropped though it holds original value {x}"
            );
        }
    }
}

#[test]
fn mean_predicate_prunes_and_matches_full_scan() {
    let store = ramp_store("meanpred.blzs", 8, false);
    let q = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::MeanInRange { lo: 2.5, hi: 4.5 }),
        aggregate: Aggregate::Sum,
    };
    let pruned = store.query(&q).unwrap();
    let full = store.query_full_scan(&q).unwrap();
    assert_bit_identical(&pruned, &full);
    assert!(pruned.chunks_pruned >= 1);
    assert_eq!(pruned.matched_labels, vec![3, 4]);
}

#[test]
fn label_range_and_predicate_compose() {
    let store = ramp_store("compose.blzs", 10, true);
    let q = Query {
        from_label: 2,
        to_label: 8,
        predicate: Some(Predicate::ValueInRange {
            lo: 7.5,
            hi: f64::INFINITY,
        }),
        aggregate: Aggregate::Count,
    };
    let r = store.query(&q).unwrap();
    assert_eq!(r.chunks_in_range, 7); // labels 2..=8
    assert!(r.matched_labels.iter().all(|&l| (2..=8).contains(&l)));
    assert!(r.matched_labels.contains(&8));
    assert!(!r.matched_labels.contains(&2));
    assert_bit_identical(&r, &store.query_full_scan(&q).unwrap());
    // Inverted ranges are rejected, not silently empty.
    assert!(store
        .query(&Query {
            from_label: 9,
            to_label: 3,
            predicate: None,
            aggregate: Aggregate::Count,
        })
        .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary chunked data, arbitrary predicate intervals, and
    /// arbitrary label windows, the pruned query equals the full scan
    /// bit-for-bit on every aggregate.
    #[test]
    fn pruned_equals_full_scan(
        seed in 0u64..1000,
        chunks in 2usize..7,
        rows in 4usize..12,
        cols in 4usize..12,
        spread in 0.5f64..4.0,
        lo_frac in -0.2f64..1.2,
        width in 0.0f64..0.8,
        from in 0u64..3,
        span in 0u64..8,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let p = tmp(&format!("prop-{seed}-{chunks}-{rows}x{cols}.blzs"));
        let mut w = StoreWriter::create(
            &p,
            Settings::new(vec![4, 4]).unwrap(),
            ScalarType::F32,
            IndexType::I16,
        )
        .unwrap();
        let mut lo_val = f64::INFINITY;
        let mut hi_val = f64::NEG_INFINITY;
        for t in 0..chunks as u64 {
            let center = rng.uniform_in(-spread, spread);
            let frame = NdArray::from_fn(vec![rows, cols], |_| {
                center + rng.uniform_in(-0.5, 0.5)
            });
            for &x in frame.as_slice() {
                lo_val = lo_val.min(x);
                hi_val = hi_val.max(x);
            }
            w.append(t, &frame).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&p).unwrap();

        // Predicate interval placed relative to the data's value range so
        // it sometimes prunes everything, sometimes nothing.
        let lo = lo_val + lo_frac * (hi_val - lo_val);
        let hi = lo + width * (hi_val - lo_val);
        let q_base = Query {
            from_label: from,
            to_label: from + span,
            predicate: Some(Predicate::ValueInRange { lo, hi }),
            aggregate: Aggregate::Count,
        };
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Mean,
            Aggregate::Variance,
            Aggregate::L2Norm,
        ] {
            let q = Query { aggregate: agg, ..q_base };
            let pruned = store.query(&q).unwrap();
            let full = store.query_full_scan(&q).unwrap();
            assert_bit_identical(&pruned, &full);
            prop_assert!(pruned.chunks_pruned + pruned.chunks_scanned == pruned.chunks_in_range);
            prop_assert!(full.chunks_pruned == 0);
        }
        fs::remove_file(&p).ok();
    }
}
