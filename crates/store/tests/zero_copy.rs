//! The zero-copy read path: every backing (mmap, positional-read file,
//! in-memory buffer) serves bit-identical answers on v1 and v2 files at
//! any thread count; lazy checksums still fail loudly (and permanently)
//! on corruption; the panic-path sweep regressions stay fixed.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreError, StoreWriter};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-zero-copy");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

/// A ramp dataset with real pruning power (chunk `t` holds values near
/// `t`) and a non-trivial payload mix.
fn frames(chunks: u64) -> Vec<(u64, NdArray<f64>)> {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    (0..chunks)
        .map(|t| {
            let f = NdArray::from_fn(vec![12, 16], |i| {
                t as f64
                    + ((i[0] * 5 + i[1]) as f64 / 9.0).sin() * 0.3
                    + rng.uniform_in(-0.05, 0.05)
            });
            (t, f)
        })
        .collect()
}

fn write_store(path: &PathBuf, data: &[(u64, NdArray<f64>)]) {
    let mut w = StoreWriter::create(
        path,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    for (label, frame) in data {
        w.append(*label, frame).unwrap();
    }
    w.finish().unwrap();
}

/// Builds a legacy v1 file by hand (packed payloads, 88-byte entries) —
/// same fabrication as the durability suite.
fn fabricate_v1_file(data: &[(u64, NdArray<f64>)]) -> Vec<u8> {
    use blazr_store::format::{encode_footer_v1, encode_trailer, fnv1a64, HEADER_MAGIC_V1};
    use blazr_store::{IndexEntry, ZoneMap};
    let settings = Settings::new(vec![4, 4]).unwrap();
    let mut file: Vec<u8> = HEADER_MAGIC_V1.to_vec();
    let mut entries = Vec::new();
    for (label, frame) in data {
        let c = blazr::compress::<f32, i16>(frame, &settings).unwrap();
        let zone = ZoneMap::of(&c).unwrap();
        let bytes = c.to_bytes_v1();
        entries.push(IndexEntry {
            label: *label,
            offset: file.len() as u64,
            len: bytes.len() as u64,
            payload_sum: fnv1a64(&bytes),
            coder: blazr::Coder::FixedWidth,
            zone,
        });
        file.extend_from_slice(&bytes);
    }
    let footer = encode_footer_v1(&entries);
    let trailer = encode_trailer(&footer);
    file.extend_from_slice(&footer);
    file.extend_from_slice(&trailer);
    file
}

fn assert_bit_identical(a: &blazr_store::QueryResult, b: &blazr_store::QueryResult, what: &str) {
    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{what}: value");
    assert_eq!(
        a.error_bound.to_bits(),
        b.error_bound.to_bits(),
        "{what}: bound"
    );
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.bounds, b.bounds, "{what}: bounds");
    assert_eq!(a.matched_labels, b.matched_labels, "{what}: matched set");
}

/// The acceptance-criteria matrix: mmap, positional-read, and in-memory
/// backings produce bit-identical pruned and full-scan answers on both
/// format versions at 1/2/4/8 threads.
#[test]
fn all_backings_agree_bit_identically_across_threads_and_versions() {
    let data = frames(8);
    let v2_path = tmp("backings-v2.blzs");
    write_store(&v2_path, &data);
    let v1_path = tmp("backings-v1.blzs");
    fs::write(&v1_path, fabricate_v1_file(&data)).unwrap();

    let q = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::ValueInRange { lo: 4.5, hi: 5.5 }),
        aggregate: Aggregate::Mean,
    };
    for path in [&v2_path, &v1_path] {
        let mapped = Store::open(path).unwrap();
        let unmapped = Store::open_unmapped(path).unwrap();
        let mem = Store::from_bytes(fs::read(path).unwrap()).unwrap();
        assert_eq!(unmapped.backing_kind(), "file");
        assert_eq!(mem.backing_kind(), "memory");
        let reference = with_threads(1, || mapped.query_full_scan(&q).unwrap());
        assert!(reference.chunks_scanned >= 1);
        for n in [1usize, 2, 4, 8] {
            for store in [&mapped, &unmapped, &mem] {
                let kind = store.backing_kind();
                let pruned = with_threads(n, || store.query(&q).unwrap());
                let full = with_threads(n, || store.query_full_scan(&q).unwrap());
                assert!(pruned.chunks_pruned >= 1, "{kind}@{n}: nothing pruned");
                assert_bit_identical(&pruned, &reference, &format!("{kind}@{n} pruned"));
                assert_bit_identical(&full, &reference, &format!("{kind}@{n} full"));
            }
        }
        // Raw chunk bytes and header peeks agree across backings too.
        for i in 0..mapped.len() {
            let bytes = mapped.chunk_bytes(i).unwrap();
            assert_eq!(bytes, unmapped.chunk_bytes(i).unwrap());
            assert_eq!(bytes, mem.chunk_bytes(i).unwrap());
            mapped
                .with_chunk_bytes(i, |b| assert_eq!(b, &bytes[..]))
                .unwrap();
            assert_eq!(
                mapped.chunk_info(i).unwrap().shape,
                unmapped.chunk_info(i).unwrap().shape
            );
        }
    }
}

/// v3 writers align every chunk to an 8-byte boundary; the gap before a
/// payload holds zero padding plus the 32-byte chunk preamble, both
/// invisible to the index and to readers.
#[test]
fn payloads_are_aligned_and_the_preamble_gap_is_transparent() {
    use blazr_store::format::{decode_preamble, fnv1a64, PREAMBLE_LEN};
    let data = frames(6);
    let p = tmp("aligned.blzs");
    write_store(&p, &data);
    let store = Store::open(&p).unwrap();
    let mut padding = 0;
    let mut watermark = 8u64; // header magic
    for e in store.entries() {
        assert_eq!(
            e.offset % blazr_store::format::CHUNK_ALIGN,
            0,
            "chunk at offset {} is unaligned",
            e.offset
        );
        assert!(e.offset >= watermark);
        padding += e.offset - watermark;
        watermark = e.offset + e.len;
    }
    // Each gap holds zero padding then the chunk's self-describing
    // preamble, ending exactly at the payload (none of it counted as
    // payload by the index).
    let bytes = fs::read(&p).unwrap();
    let mut prev_end = 8usize;
    for e in store.entries() {
        let pre_at = e.offset as usize - PREAMBLE_LEN;
        assert!(bytes[prev_end..pre_at].iter().all(|&b| b == 0));
        let (label, len, sum) = decode_preamble(&bytes[pre_at..]).expect("preamble before payload");
        assert_eq!(label, e.label);
        assert_eq!(len, e.len);
        assert_eq!(sum, e.payload_sum);
        let payload = &bytes[e.offset as usize..(e.offset + e.len) as usize];
        assert_eq!(fnv1a64(payload), sum);
        prev_end = (e.offset + e.len) as usize;
    }
    assert_eq!(
        store.file_bytes(),
        bytes.len() as u64,
        "file length bookkeeping"
    );
    assert!(store.payload_bytes() + padding <= store.file_bytes());
    // Padded files still roundtrip chunk-for-chunk.
    for (i, (_, frame)) in data.iter().enumerate() {
        assert_eq!(store.chunk(i).unwrap().shape(), frame.shape());
    }
}

/// Regression: out-of-range chunk indices used to panic via direct
/// indexing; the checked accessors (and every payload accessor) now
/// return `InvalidArgument`.
#[test]
fn out_of_range_chunk_indices_error_instead_of_panicking() {
    let p = tmp("range.blzs");
    write_store(&p, &frames(3));
    let store = Store::open(&p).unwrap();
    let n = store.len();
    assert!(matches!(
        store.try_chunk_coder(n),
        Err(StoreError::InvalidArgument(_))
    ));
    assert!(matches!(
        store.try_zone_map(n),
        Err(StoreError::InvalidArgument(_))
    ));
    assert!(matches!(
        store.chunk(n),
        Err(StoreError::InvalidArgument(_))
    ));
    assert!(matches!(
        store.chunk_bytes(usize::MAX),
        Err(StoreError::InvalidArgument(_))
    ));
    assert!(matches!(
        store.chunk_info(n),
        Err(StoreError::InvalidArgument(_))
    ));
    // In-range still works, through both flavors.
    assert_eq!(store.try_chunk_coder(0).unwrap(), store.chunk_coder(0));
    assert_eq!(store.try_zone_map(0).unwrap(), store.zone_map(0));
}

/// Regression: `largest_jump` panicked on NaN distances
/// (`partial_cmp(..).expect("finite distances")`). Overflowing f16
/// chunks decode to non-finite values whose adjacent-L2 distances are
/// NaN; the total-order comparison now surfaces the NaN pair instead.
#[test]
fn largest_jump_survives_nan_distances() {
    let p = tmp("nan-jump.blzs");
    let mut w = StoreWriter::create(
        &p,
        Settings::new(vec![8, 8]).unwrap(),
        ScalarType::F16,
        IndexType::I16,
    )
    .unwrap();
    // Each chunk compresses cleanly (DC ≈ ±8·5000 = ±40000, inside the
    // f16 range), but the adjacent difference doubles that past the f16
    // max — the paper's f16-vs-bf16 overflow observation — so the
    // combined block's scale is infinite, its rebinned coefficients
    // reconstruct as `0·inf = NaN`, and the L2 distance is NaN.
    for t in 0..3u64 {
        let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
        let f = NdArray::from_fn(vec![8, 8], |_| 5000.0 * sign);
        w.append(t, &f).unwrap();
    }
    w.finish().unwrap();
    let store = Store::open(&p).unwrap();
    let dists = store.adjacent_l2().unwrap();
    assert!(
        dists.iter().any(|d| d.2.is_nan()),
        "premise: overflowing f16 chunks should produce NaN distances, got {dists:?}"
    );
    let jump = store.largest_jump().unwrap().expect("adjacent pairs exist");
    // f64 total order ranks NaN above every finite distance.
    assert!(jump.2.is_nan());
}

/// A bit-flipped payload header can never produce a silently wrong
/// `chunk_info`: the payload is checksum-verified before the peek, on
/// the zero-copy backings and the positional-read backing alike.
#[test]
fn chunk_info_on_corrupt_payload_errors_on_every_backing() {
    let data = frames(4);
    let p = tmp("info-corrupt.blzs");
    write_store(&p, &data);
    let clean = Store::open(&p).unwrap();
    let victim = 1usize;
    let mut bytes = fs::read(&p).unwrap();
    // Flip a bit inside the victim's header region (first payload byte
    // after the type tags — shape/coder territory).
    bytes[clean.entries()[victim].offset as usize + 2] ^= 0x04;
    let corrupt_path = tmp("info-corrupt-flipped.blzs");
    fs::write(&corrupt_path, &bytes).unwrap();
    for store in [
        Store::open(&corrupt_path).unwrap(),
        Store::open_unmapped(&corrupt_path).unwrap(),
        Store::from_bytes(bytes).unwrap(),
    ] {
        let kind = store.backing_kind();
        match store.chunk_info(victim) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("checksum"), "{kind}: {msg}")
            }
            other => panic!("{kind}: expected Corrupt, got {other:?}"),
        }
        // Untouched chunks still peek fine.
        assert_eq!(store.chunk_info(0).unwrap().shape, vec![12, 16]);
    }
}

/// The checksum verdict is latched once per chunk: a corrupt chunk keeps
/// erroring on every later access (no flip-flop), and a clean chunk is
/// hashed only on first touch (repeat reads stay consistent).
#[test]
fn lazy_checksum_verdict_is_latched() {
    let data = frames(4);
    let p = tmp("latch.blzs");
    write_store(&p, &data);
    let clean = Store::open(&p).unwrap();
    let victim = 2usize;
    let mut bytes = fs::read(&p).unwrap();
    let mid = clean.entries()[victim].offset + clean.entries()[victim].len / 2;
    bytes[mid as usize] ^= 0x10;
    let store = Store::from_bytes(bytes).unwrap(); // footer intact: opens
    for round in 0..3 {
        assert!(
            matches!(store.chunk(victim), Err(StoreError::Corrupt(_))),
            "round {round}: the latched failure must persist"
        );
        assert!(store.chunk(0).is_ok(), "round {round}");
        assert!(
            store.query(&Query::all(Aggregate::Sum)).is_err(),
            "round {round}: scans over the damaged chunk keep failing"
        );
    }
}
