//! Store durability: files are byte-identical at any thread count,
//! damaged files fail loudly instead of panicking, and the degenerate
//! (empty) store round-trips.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Query, Store, StoreError, StoreWriter};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-durability");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

/// A deterministic multi-chunk dataset with a padded (non-block-multiple)
/// shape, so the parallel seams all get exercised.
fn frames() -> Vec<(u64, NdArray<f64>)> {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    (0..6u64)
        .map(|t| {
            let f = NdArray::from_fn(vec![13, 18], |i| {
                ((i[0] as f64 + t as f64) / 3.0).sin() + rng.uniform_in(-0.1, 0.1)
            });
            (t * 10, f)
        })
        .collect()
}

fn write_store(path: &PathBuf, data: &[(u64, NdArray<f64>)]) {
    let mut w = StoreWriter::create(
        path,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    for (label, frame) in data {
        w.append(*label, frame).unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn file_bytes_identical_across_thread_counts() {
    let data = frames();
    let reference = {
        let p = tmp("ref.blzs");
        with_threads(1, || write_store(&p, &data));
        fs::read(&p).unwrap()
    };
    for n in [2usize, 4, 8] {
        let p = tmp(&format!("threads{n}.blzs"));
        with_threads(n, || write_store(&p, &data));
        let bytes = fs::read(&p).unwrap();
        assert_eq!(bytes, reference, "store bytes differ at {n} threads");
    }
}

#[test]
fn roundtrip_preserves_chunks_and_zone_maps() {
    let data = frames();
    let p = tmp("roundtrip.blzs");
    write_store(&p, &data);
    let store = Store::open(&p).unwrap();
    assert_eq!(store.len(), data.len());
    assert_eq!(
        store.labels(),
        data.iter().map(|(l, _)| *l).collect::<Vec<_>>()
    );
    assert_eq!(store.chunk_types(), Some((ScalarType::F32, IndexType::I16)));
    for (i, (_, frame)) in data.iter().enumerate() {
        let c = store.chunk(i).unwrap();
        assert_eq!(c.shape(), frame.shape());
        // The stored zone map equals one recomputed from the payload.
        assert_eq!(
            *store.zone_map(i),
            blazr_store::ZoneMap::of_dyn(&c).unwrap()
        );
        // And the decompressed chunk approximates the original frame.
        let d = c.decompress();
        let err = blazr_util::stats::max_abs_diff(frame.as_slice(), d.as_slice());
        assert!(err < 1e-2, "chunk {i} roundtrip err {err}");
    }
}

#[test]
fn truncated_files_fail_with_clear_errors() {
    let data = frames();
    let p = tmp("truncate.blzs");
    write_store(&p, &data);
    let bytes = fs::read(&p).unwrap();
    // Every truncation point: a few interesting prefixes plus a sweep.
    let mut cuts = vec![0, 1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1];
    cuts.extend((0..32).map(|i| bytes.len() * i / 32));
    for cut in cuts {
        let err = Store::from_bytes(bytes[..cut].to_vec());
        match err {
            Err(StoreError::Corrupt(msg)) => assert!(!msg.is_empty()),
            other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_footer_fails_checksum() {
    let data = frames();
    let p = tmp("corrupt.blzs");
    write_store(&p, &data);
    let bytes = fs::read(&p).unwrap();
    let trailer_start = bytes.len() - 24;
    let footer_len =
        u64::from_le_bytes(bytes[trailer_start..trailer_start + 8].try_into().unwrap()) as usize;
    let footer_start = trailer_start - footer_len;
    // Flip one bit in several footer positions: checksum must catch each.
    for delta in [0, footer_len / 3, footer_len - 1] {
        let mut bad = bytes.clone();
        bad[footer_start + delta] ^= 0x40;
        match Store::from_bytes(bad) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("checksum"), "unexpected message: {msg}")
            }
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }
    // A corrupted trailer length field fails geometry validation.
    let mut bad = bytes.clone();
    bad[trailer_start] ^= 0xFF;
    assert!(matches!(
        Store::from_bytes(bad),
        Err(StoreError::Corrupt(_))
    ));
    // Corrupted header magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0x01;
    assert!(matches!(
        Store::from_bytes(bad),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn garbage_and_unfinished_files_are_rejected() {
    assert!(Store::from_bytes(vec![]).is_err());
    assert!(Store::from_bytes(vec![0xAB; 200]).is_err());
    // Ingest is atomic: an unfinished writer never creates the
    // destination, removes its temp file, and leaves any pre-existing
    // store untouched.
    let p = tmp("unfinished.blzs");
    write_store(&p, &frames()); // a good store already at the path
    let good_bytes = fs::read(&p).unwrap();
    let mut w = StoreWriter::create(
        &p,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    w.append(0, &NdArray::from_fn(vec![8, 8], |i| i[0] as f64))
        .unwrap();
    let temp_files = |dir: &std::path::Path| -> Vec<PathBuf> {
        fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|f| {
                let name = f.file_name().unwrap().to_string_lossy().into_owned();
                name.starts_with("unfinished.blzs.") && name.ends_with(".tmp")
            })
            .collect()
    };
    let dir = p.parent().unwrap().to_path_buf();
    assert_eq!(
        temp_files(&dir).len(),
        1,
        "writer streams into a unique <path>.<pid>.<nonce>.tmp"
    );
    drop(w);
    assert!(
        temp_files(&dir).is_empty(),
        "abandoned ingest cleans up its temp file"
    );
    assert_eq!(
        fs::read(&p).unwrap(),
        good_bytes,
        "abandoned ingest must not clobber the existing store"
    );
    // A file that is a truncated torso (simulating a crash that somehow
    // landed on the destination) is still rejected.
    let torso = &good_bytes[..good_bytes.len() / 2];
    assert!(matches!(
        Store::from_bytes(torso.to_vec()),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn corrupted_payload_fails_on_chunk_read_not_open() {
    // The trailer checksum covers the footer; payload bit rot is caught
    // by the per-chunk checksum when (and only when) that chunk is read.
    let data = frames();
    let p = tmp("payload.blzs");
    write_store(&p, &data);
    let store = Store::open(&p).unwrap();
    let victim = 2;
    let offset = store.entries()[victim].offset + 5;
    let mut bytes = fs::read(&p).unwrap();
    bytes[offset as usize] ^= 0x10;
    let store = Store::from_bytes(bytes).unwrap(); // footer intact: opens
                                                   // Footer-only operations still work…
    assert_eq!(store.len(), data.len());
    assert!(store.zone_map(victim).stats.count > 0);
    // …but reading the damaged chunk fails loudly,
    match store.chunk(victim) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("expected payload checksum failure, got {other:?}"),
    }
    // undamaged chunks still decode,
    assert!(store.chunk(0).is_ok());
    // and any scan that would consume the damaged chunk surfaces the
    // error instead of aggregating garbage.
    assert!(store.query(&Query::all(Aggregate::Sum)).is_err());
}

#[test]
fn empty_store_roundtrips() {
    let p = tmp("empty.blzs");
    let w = StoreWriter::create(
        &p,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F64,
        IndexType::I8,
    )
    .unwrap();
    assert!(w.is_empty());
    w.finish().unwrap();
    let store = Store::open(&p).unwrap();
    assert!(store.is_empty());
    assert_eq!(store.len(), 0);
    assert_eq!(store.chunk_types(), None);
    assert_eq!(store.payload_bytes(), 0);
    assert!(store.labels().is_empty());
    assert_eq!(store.largest_jump().unwrap(), None);
    assert!(store.adjacent_l2().unwrap().is_empty());
    // Queries over an empty store return the empty aggregate.
    let r = store.query(&Query::all(Aggregate::Count)).unwrap();
    assert_eq!(r.value, 0.0);
    assert_eq!(r.chunks_in_range, 0);
    assert!(r.matched_labels.is_empty());
    // And a series cannot be built from it (settings unknown).
    assert!(store.to_series::<f64, i8>().is_err());
}

#[test]
fn out_of_order_labels_rejected_at_append() {
    let p = tmp("order.blzs");
    let mut w = StoreWriter::create(
        &p,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    let f = NdArray::from_fn(vec![8, 8], |i| i[1] as f64);
    w.append(5, &f).unwrap();
    assert!(matches!(
        w.append(5, &f),
        Err(StoreError::InvalidArgument(_))
    ));
    assert!(matches!(
        w.append(4, &f),
        Err(StoreError::InvalidArgument(_))
    ));
    w.append(6, &f).unwrap();
}

#[test]
fn dc_less_settings_rejected_at_create() {
    let p = tmp("nodc.blzs");
    let settings = Settings::new(vec![4, 4])
        .unwrap()
        .with_transform(blazr::TransformKind::Identity);
    assert!(matches!(
        StoreWriter::create(&p, settings, ScalarType::F32, IndexType::I16),
        Err(StoreError::InvalidArgument(_))
    ));
}

#[test]
fn series_bridge_roundtrips_on_disk() {
    use blazr::series::CompressedSeries;
    let mut series = CompressedSeries::<f32, i16>::new(Settings::new(vec![4, 4]).unwrap());
    for (label, frame) in frames() {
        series.push(label, &frame).unwrap();
    }
    let p = tmp("series.blzs");
    blazr_store::write_series(&p, &series).unwrap();
    let store = Store::open(&p).unwrap();
    // §VI analyses on disk match the in-memory series.
    let disk_jump = store.largest_jump().unwrap().unwrap();
    let mem_jump = series.largest_jump().unwrap().unwrap();
    assert_eq!((disk_jump.0, disk_jump.1), (mem_jump.0, mem_jump.1));
    assert!((disk_jump.2 - mem_jump.2).abs() < 1e-3);
    // And the series read back is frame-for-frame identical.
    let back = store.to_series::<f32, i16>().unwrap();
    assert_eq!(back.len(), series.len());
    assert_eq!(back.labels(), series.labels());
    for i in 0..series.len() {
        assert_eq!(back.frame(i), series.frame(i));
    }
    // Reading at the wrong type pair fails cleanly.
    assert!(store.to_series::<f64, i16>().is_err());
}

// ---- format v1/v2 coexistence (PR-6 entropy coding) -----------------

/// Builds a legacy v1 store file by hand: v1 magic, v1 chunk streams
/// (no coder tag), 88-byte footer entries. This is byte-compatible with
/// what the pre-entropy-coding writer produced.
fn fabricate_v1_file(data: &[(u64, NdArray<f64>)]) -> Vec<u8> {
    use blazr_store::format::{encode_footer_v1, encode_trailer, fnv1a64, HEADER_MAGIC_V1};
    use blazr_store::{IndexEntry, ZoneMap};
    let settings = Settings::new(vec![4, 4]).unwrap();
    let mut file: Vec<u8> = HEADER_MAGIC_V1.to_vec();
    let mut entries = Vec::new();
    for (label, frame) in data {
        let c = blazr::compress::<f32, i16>(frame, &settings).unwrap();
        let zone = ZoneMap::of(&c).unwrap();
        let bytes = c.to_bytes_v1();
        entries.push(IndexEntry {
            label: *label,
            offset: file.len() as u64,
            len: bytes.len() as u64,
            payload_sum: fnv1a64(&bytes),
            coder: blazr::Coder::FixedWidth,
            zone,
        });
        file.extend_from_slice(&bytes);
    }
    let footer = encode_footer_v1(&entries);
    let trailer = encode_trailer(&footer);
    file.extend_from_slice(&footer);
    file.extend_from_slice(&trailer);
    file
}

#[test]
fn v1_files_stay_readable() {
    use blazr_store::FormatVersion;
    let data = frames();
    let store = Store::from_bytes(fabricate_v1_file(&data)).unwrap();
    assert_eq!(store.format_version(), FormatVersion::V1);
    assert_eq!(store.len(), data.len());
    for (i, (label, frame)) in data.iter().enumerate() {
        assert_eq!(store.entries()[i].label, *label);
        assert_eq!(store.chunk_coder(i), blazr::Coder::FixedWidth);
        // v1 chunks decode through the v1 stream parser and match a
        // fresh compression of the same frame exactly.
        let settings = Settings::new(vec![4, 4]).unwrap();
        let expect = blazr::compress::<f32, i16>(frame, &settings).unwrap();
        assert_eq!(store.chunk_typed::<f32, i16>(i).unwrap(), expect);
        // Header peeks work on the v1 layout too.
        let info = store.chunk_info(i).unwrap();
        assert_eq!(info.coder, blazr::Coder::FixedWidth);
        assert_eq!(info.shape, vec![13, 18]);
    }
    // Zone-map queries never touch payloads, so they are version-blind.
    let r = store.query(&Query::all(Aggregate::Mean)).unwrap();
    assert!(r.value.is_finite());
}

#[test]
fn fresh_files_record_per_chunk_coders() {
    use blazr_store::FormatVersion;
    let data = frames();
    let p = tmp("coder-tags.blzs");
    write_store(&p, &data);
    let store = Store::open(&p).unwrap();
    assert_eq!(store.format_version(), FormatVersion::V3);
    for i in 0..store.len() {
        // The footer's coder tag must echo the stream's own prologue.
        let bytes = store.chunk_bytes(i).unwrap();
        assert_eq!(
            blazr::serialize::peek_coder(&bytes),
            Some(store.chunk_coder(i)),
            "chunk {i}"
        );
        assert_eq!(store.chunk_info(i).unwrap().coder, store.chunk_coder(i));
    }
}

#[test]
fn corrupted_rans_payload_fails_on_chunk_read() {
    // Smooth frames so the writer actually picks the rANS coder.
    let data: Vec<(u64, NdArray<f64>)> = (0..3u64)
        .map(|t| {
            let f = NdArray::from_fn(vec![16, 16], |i| {
                ((i[0] + i[1]) as f64 * 0.07 + t as f64).sin()
            });
            (t, f)
        })
        .collect();
    let p = tmp("rans-corrupt.blzs");
    write_store(&p, &data);
    let clean = Store::open(&p).unwrap();
    let victim = (0..clean.len())
        .find(|&i| clean.chunk_coder(i) == blazr::Coder::Rans)
        .expect("smooth data should entropy-code");
    let e_offset = clean.entries()[victim].offset as usize;
    let e_len = clean.entries()[victim].len as usize;
    let mut bytes = fs::read(&p).unwrap();
    bytes[e_offset + e_len / 2] ^= 0x20;
    let store = Store::from_bytes(bytes).unwrap(); // footer is intact
                                                   // The payload checksum catches the flip before the rANS decoder
                                                   // even runs; other chunks stay readable.
    assert!(matches!(store.chunk(victim), Err(StoreError::Corrupt(_))));
    for i in 0..store.len() {
        if i != victim {
            store.chunk(i).unwrap();
        }
    }
}
