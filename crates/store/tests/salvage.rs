//! Salvage correctness: `open_salvage` rebuilds the index from chunk
//! preambles when the footer is damaged, recovering **exactly** the
//! chunks whose payload checksums pass, and degraded queries over a
//! partially-rotted store match a full scan restricted to the surviving
//! chunks bit-for-bit at any thread count.

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Query, Store, StoreError, StoreWriter};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use blazr_util::vfs::seeded_bit_rot;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("blazr-store-salvage");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

/// Seeded multi-chunk frames; chunk `i` is labeled `i * 5`.
fn seeded_frames(seed: u64, chunks: usize, rows: usize, cols: usize) -> Vec<(u64, NdArray<f64>)> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..chunks)
        .map(|i| {
            let f = NdArray::from_fn(vec![rows, cols], |ix| {
                ((ix[0] + i) as f64 / 4.0).sin() + rng.uniform_in(-0.2, 0.2)
            });
            (i as u64 * 5, f)
        })
        .collect()
}

fn write_store(path: &PathBuf, data: &[(u64, NdArray<f64>)]) {
    let mut w = StoreWriter::create(
        path,
        Settings::new(vec![4, 4]).unwrap(),
        ScalarType::F32,
        IndexType::I16,
    )
    .unwrap();
    for (label, frame) in data {
        w.append(*label, frame).unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn salvage_of_an_intact_store_is_a_normal_open() {
    let data = seeded_frames(1, 4, 12, 12);
    let p = tmp("intact.blzs");
    write_store(&p, &data);
    let (store, report) = Store::open_salvage(&p).unwrap();
    assert!(report.footer_intact);
    assert_eq!(report.recovered, data.len());
    assert_eq!(report.damaged, 0);
    assert_eq!(report.scanned_bytes, 0);
    let normal = Store::open(&p).unwrap();
    assert_eq!(store.entries(), normal.entries());
}

#[test]
fn corrupt_trailer_salvages_every_chunk_bit_identically_across_threads() {
    let data = seeded_frames(2, 5, 13, 11);
    let p = tmp("trailer.blzs");
    write_store(&p, &data);
    let clean = Store::open(&p).unwrap();
    let mut bytes = fs::read(&p).unwrap();
    let n = bytes.len();
    bytes[n - 4] ^= 0xFF; // inside the trailer magic

    assert!(matches!(
        Store::from_bytes(bytes.clone()),
        Err(StoreError::Corrupt(_))
    ));
    let (store, report) = Store::salvage_from_bytes(bytes).unwrap();
    assert!(!report.footer_intact);
    assert_eq!(report.recovered, data.len());
    assert_eq!(report.damaged, 0);
    assert_eq!(report.scanned_bytes, n as u64);
    // Chunk payloads, labels, and recomputed zone maps all round-trip.
    assert_eq!(store.entries(), clean.entries());
    for i in 0..clean.len() {
        assert_eq!(store.chunk_bytes(i).unwrap(), clean.chunk_bytes(i).unwrap());
    }
    // Queries over the salvaged index are bit-identical to the clean
    // store at every thread count.
    let q = Query::all(Aggregate::Mean);
    let want = clean.query_full_scan(&q).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let got = with_threads(threads, || store.query_full_scan(&q)).unwrap();
        assert_eq!(
            got.value.to_bits(),
            want.value.to_bits(),
            "{threads} threads"
        );
        assert_eq!(got.matched_labels, want.matched_labels);
    }
    println!(
        "salvage: recovered {}/{} chunks from a trailer-smashed store",
        report.recovered,
        data.len()
    );
}

#[test]
fn damaged_pre_v3_files_cannot_salvage() {
    use blazr_store::format::{HEADER_MAGIC, HEADER_MAGIC_V2};
    let data = seeded_frames(3, 3, 12, 12);
    let p = tmp("prev3.blzs");
    write_store(&p, &data);
    let mut bytes = fs::read(&p).unwrap();
    // Rewrite the magic to v2 and smash the trailer: the file now claims
    // a format with no preambles, so salvage refuses with a clear reason
    // instead of scanning for structure that cannot exist.
    assert_eq!(&bytes[..8], HEADER_MAGIC);
    bytes[..8].copy_from_slice(HEADER_MAGIC_V2);
    let n = bytes.len();
    bytes[n - 4] ^= 0xFF;
    match Store::salvage_from_bytes(bytes) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("pre-v3"), "{msg}"),
        other => panic!("expected pre-v3 refusal, got {other:?}"),
    }
}

#[test]
fn fully_rotted_store_is_unsalvageable() {
    let data = seeded_frames(4, 3, 12, 12);
    let p = tmp("hopeless.blzs");
    write_store(&p, &data);
    let clean = Store::open(&p).unwrap();
    let mut bytes = fs::read(&p).unwrap();
    // Rot every payload and the trailer: nothing passes its checksum.
    for e in clean.entries() {
        for (at, mask) in seeded_bit_rot(99, e.offset, e.offset + e.len, 2) {
            bytes[at as usize] ^= mask;
        }
    }
    let n = bytes.len();
    bytes[n - 4] ^= 0xFF;
    match Store::salvage_from_bytes(bytes) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("no salvageable chunks"), "{msg}")
        }
        other => panic!("expected unsalvageable verdict, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomly corrupt the footer (always) and a random subset of chunk
    /// payloads. Salvage must recover exactly the chunks whose checksums
    /// still pass, and both the salvaged store and a degraded query over
    /// the footer-intact-but-rotted variant must produce aggregates
    /// bit-identical to a full scan over only the surviving chunks — at
    /// 1, 2, 4, and 8 threads.
    #[test]
    fn salvage_recovers_exactly_the_checksum_valid_chunks(
        seed in 0u64..10_000,
        chunks in 4usize..7,
        rows in 8usize..14,
        cols in 8usize..14,
        victims in 0usize..3,
    ) {
        let data = seeded_frames(seed, chunks, rows, cols);
        let p = tmp(&format!("prop-{seed}-{chunks}-{rows}x{cols}-{victims}.blzs"));
        write_store(&p, &data);
        let clean = Store::open(&p).unwrap();
        let bytes = fs::read(&p).unwrap();
        let n = bytes.len();

        // Pick `victims` distinct chunks and rot a couple of payload
        // bits in each; rot the footer/trailer region unconditionally.
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xdecaf);
        let mut victim_set: Vec<usize> = Vec::new();
        while victim_set.len() < victims {
            let i = rng.below(chunks as u64) as usize;
            if !victim_set.contains(&i) {
                victim_set.push(i);
            }
        }
        victim_set.sort_unstable();
        let mut rotted = bytes.clone();
        for &i in &victim_set {
            let e = &clean.entries()[i];
            for (at, mask) in seeded_bit_rot(seed ^ i as u64, e.offset, e.offset + e.len, 2) {
                rotted[at as usize] ^= mask;
            }
        }
        let footer_region = clean.entries().last().map_or(8, |e| e.offset + e.len);
        let mut footered = rotted.clone();
        for (at, mask) in seeded_bit_rot(seed ^ 0xf007e4, footer_region, n as u64, 2) {
            footered[at as usize] ^= mask;
        }

        let survivors: Vec<usize> = (0..chunks).filter(|i| !victim_set.contains(i)).collect();
        let survivor_labels: Vec<u64> =
            survivors.iter().map(|&i| clean.entries()[i].label).collect();
        let victim_labels: Vec<u64> =
            victim_set.iter().map(|&i| clean.entries()[i].label).collect();

        // The footer-rotted file must not open normally.
        prop_assert!(matches!(
            Store::from_bytes(footered.clone()),
            Err(StoreError::Corrupt(_))
        ));
        // Salvage recovers exactly the checksum-valid chunks.
        let (salvaged, report) = Store::salvage_from_bytes(footered).unwrap();
        prop_assert!(!report.footer_intact);
        let recovered: Vec<u64> = salvaged.entries().iter().map(|e| e.label).collect();
        prop_assert_eq!(&recovered, &survivor_labels);
        prop_assert!(report.damaged >= victims as u64);

        // A full scan restricted to the survivors is the ground truth.
        let sp = tmp(&format!("prop-surv-{seed}-{chunks}-{rows}x{cols}-{victims}.blzs"));
        let survivor_data: Vec<(u64, NdArray<f64>)> =
            survivors.iter().map(|&i| data[i].clone()).collect();
        write_store(&sp, &survivor_data);
        let expect_store = Store::open(&sp).unwrap();

        // The footer-intact variant opens normally but must quarantine
        // the rotted chunks under a degraded query.
        let intact_footer = Store::from_bytes(rotted).unwrap();

        for agg in [Aggregate::Sum, Aggregate::Mean, Aggregate::Count] {
            let q = Query::all(agg);
            let want = expect_store.query_full_scan(&q).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let got = with_threads(threads, || salvaged.query_full_scan(&q)).unwrap();
                prop_assert_eq!(
                    got.value.to_bits(),
                    want.value.to_bits(),
                    "salvaged {:?} at {} threads",
                    agg,
                    threads
                );
                prop_assert_eq!(&got.matched_labels, &want.matched_labels);

                let (deg, dreport) =
                    with_threads(threads, || intact_footer.query_degraded(&q)).unwrap();
                prop_assert_eq!(
                    deg.value.to_bits(),
                    want.value.to_bits(),
                    "degraded {:?} at {} threads",
                    agg,
                    threads
                );
                prop_assert_eq!(&deg.matched_labels, &want.matched_labels);
                let skipped: Vec<u64> = dreport.skipped.iter().map(|s| s.label).collect();
                prop_assert_eq!(&skipped, &victim_labels);
                prop_assert_eq!(dreport.bounds_partial, !victim_set.is_empty());
            }
        }
    }
}
