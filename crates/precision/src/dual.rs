//! Forward-mode dual numbers: differentiation through the codec.
//!
//! The paper notes (§IV) that every compressed-space operation except the
//! approximate Wasserstein distance is differentiable, enabling use in
//! gradient-based pipelines. PyBlaz gets this from PyTorch autograd; here
//! the same property falls out of genericity: [`Dual`] implements
//! [`crate::Real`], so instantiating the codec at `P = Dual` propagates a
//! directional derivative through compression and every operation.
//!
//! Semantics match autograd's treatment of quantization: `round()` (the
//! binning step) is piecewise constant, so its derivative contribution is
//! zero ("straight-through"); gradients flow through the per-block scales
//! `N` and all the linear algebra, exactly as in the PyTorch
//! implementation.

use crate::Real;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A first-order dual number `value + ε·deriv` with `ε² = 0`.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Dual {
    /// The primal value.
    pub value: f64,
    /// The tangent (directional derivative) carried alongside.
    pub deriv: f64,
}

impl Dual {
    /// A constant (zero derivative).
    pub fn constant(value: f64) -> Self {
        Self { value, deriv: 0.0 }
    }

    /// A seeded variable: derivative 1 in the chosen direction.
    pub fn variable(value: f64) -> Self {
        Self { value, deriv: 1.0 }
    }

    /// A value with an explicit tangent.
    pub fn with_deriv(value: f64, deriv: f64) -> Self {
        Self { value, deriv }
    }
}

impl Add for Dual {
    type Output = Dual;
    fn add(self, o: Dual) -> Dual {
        Dual {
            value: self.value + o.value,
            deriv: self.deriv + o.deriv,
        }
    }
}

impl Sub for Dual {
    type Output = Dual;
    fn sub(self, o: Dual) -> Dual {
        Dual {
            value: self.value - o.value,
            deriv: self.deriv - o.deriv,
        }
    }
}

impl Mul for Dual {
    type Output = Dual;
    fn mul(self, o: Dual) -> Dual {
        Dual {
            value: self.value * o.value,
            deriv: self.deriv * o.value + self.value * o.deriv,
        }
    }
}

impl Div for Dual {
    type Output = Dual;
    fn div(self, o: Dual) -> Dual {
        Dual {
            value: self.value / o.value,
            deriv: (self.deriv * o.value - self.value * o.deriv) / (o.value * o.value),
        }
    }
}

impl Neg for Dual {
    type Output = Dual;
    fn neg(self) -> Dual {
        Dual {
            value: -self.value,
            deriv: -self.deriv,
        }
    }
}

impl PartialOrd for Dual {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.value.partial_cmp(&other.value)
    }
}

impl fmt::Debug for Dual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}ε", self.value, self.deriv)
    }
}

impl fmt::Display for Dual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}ε", self.value, self.deriv)
    }
}

impl Real for Dual {
    fn from_f64(x: f64) -> Self {
        Dual::constant(x)
    }
    fn to_f64(self) -> f64 {
        self.value
    }
    fn abs(self) -> Self {
        if self.value < 0.0 {
            -self
        } else {
            self
        }
    }
    fn sqrt(self) -> Self {
        let s = self.value.sqrt();
        Dual {
            value: s,
            deriv: if s == 0.0 {
                0.0
            } else {
                self.deriv / (2.0 * s)
            },
        }
    }
    fn is_nan(self) -> bool {
        self.value.is_nan()
    }
    fn is_finite(self) -> bool {
        self.value.is_finite()
    }
    fn exp(self) -> Self {
        let e = self.value.exp();
        Dual {
            value: e,
            deriv: self.deriv * e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(x: f64) -> Dual {
        Dual::variable(x)
    }

    #[test]
    fn arithmetic_rules() {
        let x = var(3.0);
        let y = Dual::constant(2.0);
        assert_eq!((x + y).deriv, 1.0);
        assert_eq!((x - y).deriv, 1.0);
        assert_eq!((x * y).deriv, 2.0); // d(2x)/dx
        assert_eq!((y / x).deriv, -2.0 / 9.0); // d(2/x)/dx = −2/x²
        assert_eq!((-x).deriv, -1.0);
    }

    #[test]
    fn product_rule_on_x_squared() {
        let x = var(5.0);
        let sq = x * x;
        assert_eq!(sq.value, 25.0);
        assert_eq!(sq.deriv, 10.0);
    }

    #[test]
    fn sqrt_and_exp_derivatives() {
        let x = var(4.0);
        let s = x.sqrt();
        assert_eq!(s.value, 2.0);
        assert_eq!(s.deriv, 0.25); // 1/(2√x)
        let e = var(0.0).exp();
        assert_eq!(e.value, 1.0);
        assert_eq!(e.deriv, 1.0);
    }

    #[test]
    fn abs_derivative_tracks_sign() {
        assert_eq!(var(-3.0).abs().deriv, -1.0);
        assert_eq!(var(3.0).abs().deriv, 1.0);
    }

    #[test]
    fn matches_finite_differences_on_composite() {
        // f(x) = sqrt(x·x + 2x) compared against central differences.
        let f = |x: Dual| (x * x + Dual::constant(2.0) * x).sqrt();
        let x0 = 1.7f64;
        let analytic = f(var(x0)).deriv;
        let h = 1e-6;
        let fd = (f(Dual::constant(x0 + h)).value - f(Dual::constant(x0 - h)).value) / (2.0 * h);
        assert!((analytic - fd).abs() < 1e-8, "{analytic} vs {fd}");
    }

    #[test]
    fn real_trait_constants() {
        assert_eq!(<Dual as Real>::zero().value, 0.0);
        assert_eq!(<Dual as Real>::one().value, 1.0);
        assert_eq!(<Dual as Real>::one().deriv, 0.0);
        assert!(Dual::constant(f64::NAN).is_nan());
    }
}
