//! Runtime tags for the supported floating-point formats.

use crate::{BF16, F16};

/// The floating-point format used for the compressor's internal
/// representation (paper §III-A(a): `bfloat16`, `float16`, `float32`,
/// `float64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// bfloat16: 8 exponent bits, 7 significand bits.
    BF16,
    /// IEEE binary16: 5 exponent bits, 10 significand bits.
    F16,
    /// IEEE binary32.
    F32,
    /// IEEE binary64.
    F64,
}

impl ScalarType {
    /// All variants, in serialization-tag order.
    pub const ALL: [ScalarType; 4] = [
        ScalarType::BF16,
        ScalarType::F16,
        ScalarType::F32,
        ScalarType::F64,
    ];

    /// Storage width in bits (the `f` of the paper's §IV-C accounting).
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::BF16 | ScalarType::F16 => 16,
            ScalarType::F32 => 32,
            ScalarType::F64 => 64,
        }
    }

    /// Human-readable name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::BF16 => "bfloat16",
            ScalarType::F16 => "float16",
            ScalarType::F32 => "float32",
            ScalarType::F64 => "float64",
        }
    }

    /// 2-bit serialization tag (paper §IV-C: "the floating point and
    /// integer types, specified in 4 bits" — 2 bits each).
    pub fn tag(self) -> u8 {
        match self {
            ScalarType::BF16 => 0,
            ScalarType::F16 => 1,
            ScalarType::F32 => 2,
            ScalarType::F64 => 3,
        }
    }

    /// Inverse of [`ScalarType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ScalarType::BF16),
            1 => Some(ScalarType::F16),
            2 => Some(ScalarType::F32),
            3 => Some(ScalarType::F64),
            _ => None,
        }
    }

    /// Rounds a value through this format and back to `f64` — the "data
    /// type conversion" loss of the compression pipeline's first step.
    pub fn round_f64(self, x: f64) -> f64 {
        match self {
            ScalarType::BF16 => BF16::from_f64(x).to_f64(),
            ScalarType::F16 => F16::from_f64(x).to_f64(),
            ScalarType::F32 => x as f32 as f64,
            ScalarType::F64 => x,
        }
    }

    /// Machine epsilon of the format (ulp of 1.0).
    pub fn epsilon(self) -> f64 {
        match self {
            ScalarType::BF16 => 2f64.powi(-7),
            ScalarType::F16 => 2f64.powi(-10),
            ScalarType::F32 => f32::EPSILON as f64,
            ScalarType::F64 => f64::EPSILON,
        }
    }

    /// Largest finite value of the format.
    pub fn max_finite(self) -> f64 {
        match self {
            ScalarType::BF16 => BF16::MAX.to_f64(),
            ScalarType::F16 => F16::MAX.to_f64(),
            ScalarType::F32 => f32::MAX as f64,
            ScalarType::F64 => f64::MAX,
        }
    }
}

impl std::fmt::Display for ScalarType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for t in ScalarType::ALL {
            assert_eq!(ScalarType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(ScalarType::from_tag(4), None);
    }

    #[test]
    fn bits_match_formats() {
        assert_eq!(ScalarType::BF16.bits(), 16);
        assert_eq!(ScalarType::F16.bits(), 16);
        assert_eq!(ScalarType::F32.bits(), 32);
        assert_eq!(ScalarType::F64.bits(), 64);
    }

    #[test]
    fn round_f64_is_idempotent() {
        for t in ScalarType::ALL {
            for v in [0.1, -3.75, 1234.5, 1e-5] {
                let once = t.round_f64(v);
                assert_eq!(t.round_f64(once), once, "{t} {v}");
            }
        }
    }

    #[test]
    fn rounding_loss_ordering() {
        // Coarser formats lose at least as much as finer ones on this value.
        let v = std::f64::consts::PI;
        let e16 = (ScalarType::F16.round_f64(v) - v).abs();
        let ebf = (ScalarType::BF16.round_f64(v) - v).abs();
        let e32 = (ScalarType::F32.round_f64(v) - v).abs();
        assert!(ebf >= e16); // bf16 has fewer significand bits than f16
        assert!(e16 > e32);
        assert_eq!(ScalarType::F64.round_f64(v), v);
    }

    #[test]
    fn max_finite_ordering() {
        assert!(ScalarType::F16.max_finite() < ScalarType::BF16.max_finite());
        assert!(ScalarType::BF16.max_finite() <= ScalarType::F32.max_finite());
    }
}
