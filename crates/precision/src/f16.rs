//! IEEE-754 binary16 ("half precision") implemented in software.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 16-bit IEEE-754 binary16 floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 significand bits.
/// Largest finite value is 65504; values below 2⁻²⁴ in magnitude underflow
/// to zero; subnormals provide gradual underflow between 2⁻²⁴ and 2⁻¹⁴.
///
/// Conversions from `f32` use round-to-nearest, ties-to-even, matching
/// hardware `F16C`/GPU conversion instructions.
#[derive(Clone, Copy, Default)]
pub struct F16(u16);

const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2⁻²⁴).
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);

    /// Constructs from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Preserve top payload bits; force quiet bit so the result
                // stays a NaN even if the payload truncates to zero.
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        let h_exp = exp - 127 + 15;
        if h_exp >= 0x1F {
            // Overflow. RNE never rounds a finite f32 to a value below the
            // overflow threshold once h_exp ≥ 31, except the boundary case
            // where rounding the mantissa of h_exp == 30 carries — handled
            // in the normal path below. Here the magnitude is already too
            // large: ±Inf.
            return F16(sign | EXP_MASK);
        }
        if h_exp <= 0 {
            // Subnormal or zero.
            if h_exp < -10 {
                // Magnitude < 2⁻²⁵: rounds to zero (ties-to-even sends the
                // exact halfway case 2⁻²⁵ to zero as well).
                return F16(sign);
            }
            let full = man | 0x0080_0000; // add implicit bit (24-bit value)
            let shift = (14 - h_exp) as u32; // 14..=24
            return F16(sign | rne_shift_u32(full, shift) as u16);
        }
        // Normal range: drop 13 mantissa bits with RNE. A mantissa carry
        // propagates into the exponent (possibly producing Inf), which is
        // exactly what integer addition on the packed representation does.
        let base = (h_exp as u32) << 10;
        let rounded = rne_shift_u32(man, 13);
        F16(sign | (base + rounded) as u16)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign_bit = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = (self.0 & EXP_MASK) >> 10;
        let man = (self.0 & MAN_MASK) as u32;
        match exp {
            0x1F => {
                if man == 0 {
                    f32::from_bits(sign_bit | 0x7F80_0000)
                } else {
                    f32::from_bits(sign_bit | 0x7F80_0000 | (man << 13) | 0x0040_0000)
                }
            }
            0 => {
                // Zero or subnormal: man × 2⁻²⁴, exact in f32.
                let v = man as f32 * (1.0 / 16_777_216.0);
                if self.0 & SIGN_MASK != 0 {
                    -v
                } else {
                    v
                }
            }
            _ => {
                let exp32 = ((exp as i32 - 15 + 127) as u32) << 23;
                f32::from_bits(sign_bit | exp32 | (man << 13))
            }
        }
    }

    /// Converts from `f64` (rounds through `f32`; the double rounding can
    /// differ from direct rounding only for values within half an f32 ulp
    /// of an f16 rounding boundary, which no experiment in this repository
    /// is sensitive to).
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if this value is ±Inf.
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True if this value is neither Inf nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Absolute value (clears the sign bit).
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Square root, correctly rounded through f32.
    pub fn sqrt(self) -> Self {
        F16::from_f32(self.to_f32().sqrt())
    }
}

fn rne_shift_u32(v: u32, n: u32) -> u32 {
    debug_assert!((1..=31).contains(&n));
    let kept = v >> n;
    let rem = v & ((1 << n) - 1);
    let half = 1 << (n - 1);
    if rem > half || (rem == half && kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

impl Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(F16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(1.5).to_bits(), 0x3E00);
        assert_eq!(F16::from_f32(0.099976).to_bits(), 0x2E66);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds up past MAX
        assert!(F16::from_f32(1e30).is_infinite());
        assert!(F16::from_f32(-1e30).is_infinite());
        assert!(F16::from_f32(-1e30).to_f32() < 0.0);
        // 65519.99 rounds down to 65504.
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7BFF);
    }

    #[test]
    fn underflow_behaviour() {
        // 2^-24 = smallest subnormal.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        // Half of it rounds to zero (tie to even).
        assert_eq!(F16::from_f32(tiny / 2.0).to_bits(), 0x0000);
        // 0.75 × smallest subnormal rounds up to it.
        assert_eq!(F16::from_f32(tiny * 0.75).to_bits(), 0x0001);
        // 1.5 × smallest subnormal: tie between 1 and 2, even wins → 2.
        assert_eq!(F16::from_f32(tiny * 1.5).to_bits(), 0x0002);
    }

    #[test]
    fn subnormal_roundtrip_exact() {
        for bits in 1u16..0x0400 {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "subnormal {bits:#06x}");
        }
    }

    #[test]
    fn all_finite_values_roundtrip_through_f32() {
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn rne_ties_go_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10;
        // even mantissa (1.0) wins.
        let x = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_bits(), 0x3C00);
        // 1 + 3×2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
        let y = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_bits(), 0x3C02);
        // Slightly above the tie rounds up.
        let z = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(z).to_bits(), 0x3C01);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
    }

    #[test]
    fn arithmetic_small_values() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn addition_loses_precision_as_expected() {
        // 2048 + 1 is unrepresentable in f16 (ulp at 2048 is 2): stays 2048.
        let big = F16::from_f32(2048.0);
        let one = F16::ONE;
        assert_eq!((big + one).to_f32(), 2048.0);
        // but 2048 + 2 = 2050 works.
        let two = F16::from_f32(2.0);
        assert_eq!((big + two).to_f32(), 2050.0);
    }

    #[test]
    fn overflow_in_arithmetic_gives_infinity() {
        let big = F16::from_f32(60000.0);
        assert!((big + big).is_infinite());
        assert!((big * big).is_infinite());
    }

    #[test]
    fn comparison_and_abs() {
        let a = F16::from_f32(-3.0);
        let b = F16::from_f32(2.0);
        assert!(a < b);
        assert_eq!(a.abs().to_f32(), 3.0);
        assert!(F16::NAN.partial_cmp(&b).is_none());
    }

    #[test]
    fn sqrt_is_sane() {
        assert_eq!(F16::from_f32(4.0).sqrt().to_f32(), 2.0);
        assert!(F16::from_f32(-1.0).sqrt().is_nan());
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Largest mantissa at some exponent + rounding up must carry cleanly.
        // 1.9995117... in f32 just below 2.0 rounds to 2.0 in f16.
        let x = f32::from_bits(0x3FFF_FFFF); // ≈ 1.9999999
        assert_eq!(F16::from_f32(x).to_bits(), 0x4000); // 2.0
    }
}
