//! Software number formats for the `blazr` workspace.
//!
//! PyBlaz lets the user pick the floating-point type used for the
//! compressor's internal arithmetic and stored scales: `bfloat16`,
//! `float16`, `float32`, or `float64` (paper §III-A(a)). Rust has no stable
//! 16-bit float primitives, so this crate implements them in software:
//!
//! * [`F16`] — IEEE-754 binary16, with round-to-nearest-even conversions,
//!   gradual underflow (subnormals), and Inf/NaN semantics.
//! * [`BF16`] — bfloat16 (f32 with a truncated significand), same care.
//!
//! Arithmetic on the 16-bit types is performed by converting to `f32`,
//! applying the native operation, and rounding back — exactly correctly
//! rounded for multiplication, correct to within one double rounding for
//! addition/division (documented in DESIGN.md), and matching how GPU tensor
//! libraries evaluate scalar half-precision expressions.
//!
//! The [`Real`] trait abstracts over all four formats so the codec, the
//! transforms, and the shallow-water simulation can be written once and
//! instantiated at any precision — reproducing the paper's Fig. 5 precision
//! sweep and the Fig. 4 FP16-vs-FP32 experiment.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod dual;
mod f16;
mod real;
mod scalar_type;

pub use bf16::BF16;
pub use dual::Dual;
pub use f16::F16;
pub use real::{Real, StorableReal};
pub use scalar_type::ScalarType;
