//! The [`Real`] abstraction over the four supported floating-point formats.

use crate::{ScalarType, BF16, F16};
use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A floating-point scalar the blazr codec can compute in.
///
/// Implemented for [`f64`], [`f32`], [`F16`], and [`BF16`]. All codec
/// arithmetic (orthonormal transforms, binning, compressed-space
/// operations) is generic over `Real`, so the precision chosen in the
/// paper's "data type conversion" step governs *every* subsequent rounding
/// — which is what makes the Fig. 5 precision sweep meaningful.
pub trait Real:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Rounds an `f64` into this format.
    fn from_f64(x: f64) -> Self;
    /// Widens to `f64` (exact for every format here; for dual numbers,
    /// drops the derivative part).
    fn to_f64(self) -> f64;

    /// Additive identity.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }
    /// Multiplicative identity.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// True if NaN.
    fn is_nan(self) -> bool;
    /// True if neither Inf nor NaN.
    fn is_finite(self) -> bool;
    /// The larger of two values (returns `other` on NaN self, like IEEE maxNum).
    fn max_val(self, other: Self) -> Self {
        if self.is_nan() {
            other
        } else if other.is_nan() || self >= other {
            self
        } else {
            other
        }
    }
    /// The smaller of two values.
    fn min_val(self, other: Self) -> Self {
        if self.is_nan() {
            other
        } else if other.is_nan() || self <= other {
            self
        } else {
            other
        }
    }
    /// Natural exponential (used by the softmax in the approximate
    /// Wasserstein distance). Computed through `f64` and rounded back.
    fn exp(self) -> Self {
        Self::from_f64(self.to_f64().exp())
    }
}

/// A [`Real`] with a fixed-width bit representation, usable as the stored
/// scale type of a compressed array.
///
/// Every IEEE-style format implements this; the forward-mode dual numbers
/// in [`crate::Dual`] deliberately do *not* — they exist to differentiate
/// through computations, not to be serialized.
pub trait StorableReal: Real {
    /// The runtime tag for this format.
    const TYPE: ScalarType;
    /// Bit width of the stored representation.
    const BITS: u32;

    /// Raw bits, zero-extended to 64 — used by the bit-exact serializer.
    fn to_bits_u64(self) -> u64;
    /// Reconstructs from raw bits (low `BITS` bits).
    fn from_bits_u64(bits: u64) -> Self;
}

impl Real for f64 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl StorableReal for f64 {
    const TYPE: ScalarType = ScalarType::F64;
    const BITS: u32 = 64;
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Real for f32 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl StorableReal for f32 {
    const TYPE: ScalarType = ScalarType::F32;
    const BITS: u32 = 32;
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Real for F16 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn abs(self) -> Self {
        F16::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        F16::sqrt(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        F16::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        F16::is_finite(self)
    }
}

impl StorableReal for F16 {
    const TYPE: ScalarType = ScalarType::F16;
    const BITS: u32 = 16;
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        F16::from_bits(bits as u16)
    }
}

impl Real for BF16 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        BF16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        BF16::to_f64(self)
    }
    #[inline]
    fn abs(self) -> Self {
        BF16::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        BF16::sqrt(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        BF16::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        BF16::is_finite(self)
    }
}

impl StorableReal for BF16 {
    const TYPE: ScalarType = ScalarType::BF16;
    const BITS: u32 = 16;
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        BF16::from_bits(bits as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arithmetic_sanity<P: Real>() {
        let a = P::from_f64(2.0);
        let b = P::from_f64(0.5);
        assert_eq!((a + b).to_f64(), 2.5);
        assert_eq!((a - b).to_f64(), 1.5);
        assert_eq!((a * b).to_f64(), 1.0);
        assert_eq!((a / b).to_f64(), 4.0);
        assert_eq!((-a).to_f64(), -2.0);
        assert_eq!(a.abs().to_f64(), 2.0);
        assert_eq!((-a).abs().to_f64(), 2.0);
        assert_eq!(P::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(P::zero().to_f64(), 0.0);
        assert_eq!(P::one().to_f64(), 1.0);
        assert!(P::from_f64(f64::NAN).is_nan());
        assert!(a.is_finite());
        assert_eq!(a.max_val(b).to_f64(), 2.0);
        assert_eq!(a.min_val(b).to_f64(), 0.5);
    }

    #[test]
    fn all_formats_are_sane() {
        arithmetic_sanity::<f64>();
        arithmetic_sanity::<f32>();
        arithmetic_sanity::<F16>();
        arithmetic_sanity::<BF16>();
    }

    #[test]
    fn bits_roundtrip() {
        for v in [-1.25, 0.0, 3.5, 1e4] {
            assert_eq!(f64::from_bits_u64(f64::from_f64(v).to_bits_u64()), v);
            assert_eq!(f32::from_bits_u64(f32::from_f64(v).to_bits_u64()), v as f32);
            let h = F16::from_f64(v);
            assert_eq!(F16::from_bits_u64(h.to_bits_u64()).to_bits(), h.to_bits());
            let b = BF16::from_f64(v);
            assert_eq!(BF16::from_bits_u64(b.to_bits_u64()).to_bits(), b.to_bits());
        }
    }

    #[test]
    fn max_val_ignores_nan_lhs() {
        let n = f64::NAN;
        assert_eq!(n.max_val(3.0), 3.0);
        assert_eq!(3.0f64.max_val(n), 3.0);
    }

    #[test]
    fn exp_matches_f64_for_wide_types() {
        assert!((1.0f64.exp() - std::f64::consts::E).abs() < 1e-15);
        let h = F16::from_f64(1.0).exp();
        assert!((h.to_f64() - std::f64::consts::E).abs() < 2e-3);
    }

    #[test]
    fn type_tags_line_up() {
        assert_eq!(<f64 as StorableReal>::TYPE, ScalarType::F64);
        assert_eq!(<f32 as StorableReal>::TYPE, ScalarType::F32);
        assert_eq!(<F16 as StorableReal>::TYPE, ScalarType::F16);
        assert_eq!(<BF16 as StorableReal>::TYPE, ScalarType::BF16);
        assert_eq!(<F16 as StorableReal>::BITS, 16);
        assert_eq!(<BF16 as StorableReal>::BITS, 16);
    }
}
