//! bfloat16 ("brain floating point") implemented in software.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 16-bit bfloat16 floating-point number.
///
/// Layout: 1 sign bit, 8 exponent bits (same range as `f32`), 7 significand
/// bits. Compared to [`crate::F16`] it trades significand precision for
/// dynamic range — which is why the paper observes bfloat16 "avoids NaNs
/// because of its longer exponent" while usually having larger error than
/// binary16 (§V-B).
///
/// Conversion from `f32` rounds to nearest, ties to even.
#[derive(Clone, Copy, Default)]
pub struct BF16(u16);

const EXP_MASK: u16 = 0x7F80;
const MAN_MASK: u16 = 0x007F;
const SIGN_MASK: u16 = 0x8000;

impl BF16 {
    /// Positive zero.
    pub const ZERO: BF16 = BF16(0);
    /// One.
    pub const ONE: BF16 = BF16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: BF16 = BF16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: BF16 = BF16(0xFF80);
    /// A quiet NaN.
    pub const NAN: BF16 = BF16(0x7FC0);
    /// Largest finite value (≈ 3.39 × 10³⁸).
    pub const MAX: BF16 = BF16(0x7F7F);

    /// Constructs from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        BF16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep sign and top payload bits, force the quiet bit.
            return BF16(((bits >> 16) as u16) | 0x0040);
        }
        let lower = bits & 0xFFFF;
        let mut upper = bits >> 16;
        let half = 0x8000u32;
        if lower > half || (lower == half && (upper & 1) == 1) {
            upper += 1; // may carry into the exponent, including to Inf — correct
        }
        BF16(upper as u16)
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Converts from `f64` (rounds through `f32`).
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if this value is ±Inf.
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True if this value is neither Inf nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Absolute value (clears the sign bit).
    pub fn abs(self) -> Self {
        BF16(self.0 & !SIGN_MASK)
    }

    /// Square root through f32.
    pub fn sqrt(self) -> Self {
        BF16::from_f32(self.to_f32().sqrt())
    }
}

impl Add for BF16 {
    type Output = BF16;
    fn add(self, rhs: BF16) -> BF16 {
        BF16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for BF16 {
    type Output = BF16;
    fn sub(self, rhs: BF16) -> BF16 {
        BF16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for BF16 {
    type Output = BF16;
    fn mul(self, rhs: BF16) -> BF16 {
        BF16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for BF16 {
    type Output = BF16;
    fn div(self, rhs: BF16) -> BF16 {
        BF16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for BF16 {
    type Output = BF16;
    fn neg(self) -> BF16 {
        BF16(self.0 ^ SIGN_MASK)
    }
}

impl PartialEq for BF16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for BF16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BF16({})", self.to_f32())
    }
}

impl fmt::Display for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for BF16 {
    fn from(x: f32) -> Self {
        BF16::from_f32(x)
    }
}

impl From<BF16> for f32 {
    fn from(x: BF16) -> f32 {
        x.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(BF16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(BF16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(BF16::from_f32(1.0).to_bits(), 0x3F80);
        assert_eq!(BF16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(BF16::from_f32(3.140625).to_bits(), 0x4049);
    }

    #[test]
    fn all_finite_values_roundtrip_through_f32() {
        for bits in 0u16..=0xFFFF {
            let h = BF16::from_bits(bits);
            if h.is_nan() {
                assert!(BF16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            assert_eq!(BF16::from_f32(h.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn wider_range_than_f16() {
        // 1e20 overflows f16 but is finite in bf16.
        let v = BF16::from_f32(1e20);
        assert!(v.is_finite());
        let rel = (v.to_f32() - 1e20).abs() / 1e20;
        assert!(rel < 0.01, "rel err {rel}");
    }

    #[test]
    fn coarser_precision_than_f16() {
        // 1 + 2^-8 rounds away in bf16 (7 mantissa bits).
        let x = 1.0f32 + 2.0f32.powi(-9);
        assert_eq!(BF16::from_f32(x).to_f32(), 1.0);
        // 1 + 2^-7 is representable.
        let y = 1.0f32 + 2.0f32.powi(-7);
        assert_eq!(BF16::from_f32(y).to_f32(), y);
    }

    #[test]
    fn ties_to_even() {
        // 1 + 2^-8 is exactly halfway between 1.0 and 1+2^-7; even wins.
        let x = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(BF16::from_f32(x).to_bits(), 0x3F80);
        // 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6; even (1+2^-6) wins.
        let y = 1.0f32 + 3.0 * 2.0f32.powi(-8);
        assert_eq!(BF16::from_f32(y).to_bits(), 0x3F82);
    }

    #[test]
    fn rounding_to_infinity() {
        // Above the bf16 max but below f32 max: rounds to Inf.
        let over = f32::from_bits(0x7F7F_FFFF); // just below f32 max... still > bf16 max midpoint
        assert!(BF16::from_f32(over).is_infinite());
    }

    #[test]
    fn nan_stays_nan() {
        assert!(BF16::from_f32(f32::NAN).is_nan());
        assert!((BF16::INFINITY - BF16::INFINITY).is_nan());
        assert!((BF16::NAN * BF16::ONE).is_nan());
    }

    #[test]
    fn arithmetic_behaviour() {
        let a = BF16::from_f32(1.5);
        let b = BF16::from_f32(2.5);
        assert_eq!((a + b).to_f32(), 4.0);
        assert_eq!((a * b).to_f32(), 3.75);
        assert_eq!((-b).to_f32(), -2.5);
        // 256 + 1 drops in bf16 (ulp at 256 is 2).
        let big = BF16::from_f32(256.0);
        assert_eq!((big + BF16::ONE).to_f32(), 256.0);
    }
}
