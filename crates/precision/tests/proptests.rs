//! Property-based tests for the software float formats: ordering,
//! rounding, and error bounds that must hold for arbitrary inputs.

use blazr_precision::{Dual, Real, BF16, F16};
use proptest::prelude::*;

/// Finite f32 values across the f16-relevant range.
fn f16_range() -> impl Strategy<Value = f32> {
    prop_oneof![
        -70000.0f32..70000.0,
        -1.0f32..1.0,
        -1e-6f32..1e-6,
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Conversion is monotone: a ≤ b ⇒ f16(a) ≤ f16(b).
    #[test]
    fn f16_conversion_is_monotone(a in f16_range(), b in f16_range()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (flo, fhi) = (F16::from_f32(lo), F16::from_f32(hi));
        prop_assert!(flo <= fhi, "{lo} -> {flo}, {hi} -> {fhi}");
    }

    /// Rounding error is at most half a ulp for in-range normal values.
    #[test]
    fn f16_rounding_error_is_half_ulp(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x);
        prop_assume!(h.is_finite());
        let back = h.to_f32();
        // ulp at |x|: exponent of x, minus 10 significand bits.
        let mag = x.abs().max(f32::from_bits(0x0400 << 13)); // min normal f16
        let exp = mag.log2().floor() as i32;
        let ulp = 2f32.powi(exp - 10);
        prop_assert!((back - x).abs() <= ulp / 2.0 * 1.0001,
            "x={x} back={back} ulp={ulp}");
    }

    /// Roundtrip through f64 is the identity on f16 values.
    #[test]
    fn f16_f64_roundtrip_identity(bits in 0u16..0x7C00) {
        let h = F16::from_bits(bits);
        prop_assert_eq!(F16::from_f64(h.to_f64()).to_bits(), bits);
    }

    /// bf16 conversion is monotone.
    #[test]
    fn bf16_conversion_is_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(BF16::from_f32(lo) <= BF16::from_f32(hi));
    }

    /// bf16 relative rounding error is bounded by 2^-8 for normal values.
    #[test]
    fn bf16_relative_error_bound(x in 1e-30f32..1e30) {
        let b = BF16::from_f32(x);
        prop_assume!(b.is_finite());
        let rel = ((b.to_f32() - x) / x).abs();
        prop_assert!(rel <= 2f32.powi(-8), "x={x} rel={rel}");
    }

    /// Negation is exact (sign-bit flip) in both 16-bit formats.
    #[test]
    fn negation_is_exact(x in f16_range()) {
        prop_assert_eq!((-F16::from_f32(x)).to_f32(), -(F16::from_f32(x).to_f32()));
        prop_assert_eq!((-BF16::from_f32(x)).to_f32(), -(BF16::from_f32(x).to_f32()));
    }

    /// f16 addition is commutative and has 0 as identity.
    #[test]
    fn f16_addition_algebra(a in f16_range(), b in f16_range()) {
        let (fa, fb) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((fa + fb).to_bits(), (fb + fa).to_bits());
        let z = F16::from_f32(0.0);
        prop_assert_eq!((fa + z).to_f32(), fa.to_f32());
    }

    /// f16 has strictly coarser granularity than f32: converting can only
    /// reduce the number of distinct values.
    #[test]
    fn f16_is_a_projection(x in f16_range()) {
        let once = F16::from_f32(x);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// Dual-number arithmetic satisfies the linearity of differentiation:
    /// d(a·f + b·g) = a·df + b·dg.
    #[test]
    fn dual_linearity(v in -100.0f64..100.0, df in -10.0f64..10.0,
                      dg in -10.0f64..10.0, a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let f = Dual::with_deriv(v, df);
        let g = Dual::with_deriv(v * 0.5, dg);
        let lhs = Dual::constant(a) * f + Dual::constant(b) * g;
        prop_assert!((lhs.deriv - (a * df + b * dg)).abs() < 1e-9);
    }

    /// Dual product rule against the analytic formula.
    #[test]
    fn dual_product_rule(v in -50.0f64..50.0, w in -50.0f64..50.0,
                         dv in -4.0f64..4.0, dw in -4.0f64..4.0) {
        let f = Dual::with_deriv(v, dv);
        let g = Dual::with_deriv(w, dw);
        let p = f * g;
        prop_assert!((p.deriv - (dv * w + v * dw)).abs() < 1e-9 * (1.0 + v.abs() + w.abs()));
    }

    /// `Real::max_val`/`min_val` bracket their arguments for all formats.
    #[test]
    fn min_max_bracket(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        fn check<P: Real>(a: f64, b: f64) {
            let (pa, pb) = (P::from_f64(a), P::from_f64(b));
            let hi = pa.max_val(pb);
            let lo = pa.min_val(pb);
            assert!(hi >= pa && hi >= pb || hi.to_f64() >= pa.to_f64().max(pb.to_f64()) - 1e-9);
            assert!(lo <= pa && lo <= pb || lo.to_f64() <= pa.to_f64().min(pb.to_f64()) + 1e-9);
        }
        check::<f64>(a, b);
        check::<f32>(a, b);
        check::<F16>(a, b);
        check::<BF16>(a, b);
    }
}
