//! Orthonormal transforms for the blazr codec (paper §III-A(c)).
//!
//! PyBlaz transforms each block into coefficients of an orthonormal basis —
//! DCT by default, optionally the Haar wavelet — applied separably along
//! every dimension (the Einstein-summation contraction of §VI-A). Because
//! the basis is orthonormal, dot products are preserved, which is the
//! property every compressed-space operation in `blazr::ops` relies on.
//!
//! A note on the paper's formula: §VI-A writes the DCT matrix as
//! `H_ij = √((1+(j>1))/s)·cos(πi(2j+1)/2s)`, which is *not* orthonormal and
//! whose first basis vector is not constant (that would break the paper's
//! own mean extraction, Algorithm 7). We implement the standard orthonormal
//! DCT-II the formula clearly intends:
//! `H[n][k] = √((1+[k>0])/s)·cos(π(2n+1)k/(2s))` (0-indexed); see DESIGN.md
//! "Paper errata handled".
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod kind;
mod matrix;

pub use block::BlockTransform;
pub use kind::TransformKind;
pub use matrix::Matrix;
